//! The staged-code IR: generating extensions as flat bytecode.
//!
//! A [`GenProgram`] is the *second Futamura projection* artifact of this
//! system: the specializer's actions over one annotated program — unfold,
//! memo-probe, lift, residual-emit — staged into a flat instruction array
//! with operands resolved ahead of time. `two4one-pe` stages annotated
//! programs into this IR and ships two consumers: the classical
//! interpretive walker, and a gen-ext machine that executes the IR like
//! bytecode (threaded instruction pointers, slot-addressed environments,
//! explicit continuation frames) and emits the residual object image
//! directly through `two4one-compiler`'s `ObjectBuilder`.
//!
//! The IR lives in `two4one-vm` because it is a program format of the
//! virtual machine layer: it has the same obligations as [`Image`] — a
//! versioned, CRC-checked on-disk encoding (`.t4og`, see [`encode`] /
//! [`decode`]) so a serving process can warm-start gen-exts across
//! processes, next to its `.t4os` residual snapshots.
//!
//! # Shape
//!
//! Code is one flat `Vec<GenInstr>`. Tree structure is threaded through
//! instruction pointers: composite instructions carry the ips of their
//! children, and by convention the *first* child of `Lift`, `IfS`/`IfD`,
//! `Let`, `App`/`AppD` sits at `ip + 1` (the stager emits it immediately
//! after its parent), so the hot "evaluate the operand" step is an
//! increment. Variables carry both their source name (for the walker and
//! for residual naming) and a `(up, idx)` lexical address (for the
//! machine); global references are pre-resolved to definition indices.
//!
//! [`Image`]: crate::Image

use crate::objfile::{self, ObjError, Reader};
use std::collections::HashMap;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// One staged instruction. "Deliver" below means: produce a
/// specialization-time value and hand it to the current continuation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenInstr {
    /// Deliver the constant `consts[i]` as static data.
    Const(u32),
    /// Deliver the value of the lexical variable `name`, which lives
    /// `up` frames out at slot `idx`.
    Var {
        /// Source name (keys the walker's environment and residual
        /// naming; the machine ignores it).
        name: Symbol,
        /// Frames outward from the innermost.
        up: u16,
        /// Slot within that frame.
        idx: u16,
    },
    /// Deliver a reference to the top-level definition `defs[i]`.
    Global(u32),
    /// A variable that is neither lexically bound nor a top-level
    /// definition. Faults *if executed* — unreachable annotated code may
    /// legally contain unbound names, so staging must not reject them.
    Unbound(Symbol),
    /// Evaluate the operand at `ip + 1`, then coerce it to residual code.
    Lift,
    /// Deliver a specialization-time closure over `lams[i]`, capturing
    /// the current environment.
    Clo(u32),
    /// Emit a residual lambda for `lams[i]`: freshen its parameters,
    /// specialize its body (at `lams[i].body`) as a new body boundary,
    /// deliver the compiled lambda.
    LamD(u32),
    /// Static conditional: test at `ip + 1`, branches at the given ips.
    IfS {
        /// Then-branch ip.
        then_: u32,
        /// Else-branch ip.
        els: u32,
    },
    /// Dynamic conditional: residualizes (with a join point when it sits
    /// in non-tail position). Test at `ip + 1`.
    IfD {
        /// Then-branch ip.
        then_: u32,
        /// Else-branch ip.
        els: u32,
    },
    /// `let`: right-hand side at `ip + 1`, body at `body`, binding
    /// `name` in a one-slot frame.
    Let {
        /// The bound name.
        name: Symbol,
        /// Body ip.
        body: u32,
    },
    /// Static application: operator at `ip + 1`, arguments at `args`.
    App {
        /// Argument ips, in order.
        args: Box<[u32]>,
    },
    /// Dynamic application: residualizes a call.
    AppD {
        /// Argument ips, in order.
        args: Box<[u32]>,
    },
    /// Static primitive application.
    Prim {
        /// The primitive.
        prim: Prim,
        /// Argument ips, in order.
        args: Box<[u32]>,
    },
    /// Dynamic primitive application: residualizes.
    PrimD {
        /// The primitive.
        prim: Prim,
        /// Argument ips, in order.
        args: Box<[u32]>,
    },
}

/// A staged lambda (static or dynamic use decided by the instruction
/// referencing it).
#[derive(Debug, Clone, PartialEq)]
pub struct GenLam {
    /// Name hint for residual templates.
    pub name: Symbol,
    /// Parameters, in binding order (one environment frame, or none when
    /// empty).
    pub params: Vec<Symbol>,
    /// Body ip.
    pub body: u32,
}

/// A parameter of a staged definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParam {
    /// The name.
    pub name: Symbol,
    /// True for run-time (dynamic) parameters.
    pub dynamic: bool,
}

/// A staged top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GenDef {
    /// The source-level name.
    pub name: Symbol,
    /// Parameters with binding times, in order.
    pub params: Vec<GenParam>,
    /// True when calls are residualized per static tuple (memoized);
    /// false when they are unfolded.
    pub memoize: bool,
    /// Body ip.
    pub body: u32,
    /// Ip of the *generic* (all-dynamic) body: the same source with every
    /// annotation stripped to its dynamic form, staged ahead of time so
    /// graceful fallback needs no re-staging.
    pub generic: u32,
}

/// A staged generating extension: the complete specializer program for
/// one annotated source program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenProgram {
    /// Constant pool.
    pub consts: Vec<Datum>,
    /// Flat instruction array.
    pub code: Vec<GenInstr>,
    /// Lambda table.
    pub lams: Vec<GenLam>,
    /// Definition table.
    pub defs: Vec<GenDef>,
    index: HashMap<Symbol, u32>,
}

impl GenProgram {
    /// Assembles a program and builds the name index (first definition of
    /// a name wins, mirroring `AProgram::def`).
    pub fn new(
        consts: Vec<Datum>,
        code: Vec<GenInstr>,
        lams: Vec<GenLam>,
        defs: Vec<GenDef>,
    ) -> Self {
        let mut index = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            index.entry(d.name).or_insert(i as u32);
        }
        GenProgram {
            consts,
            code,
            lams,
            defs,
            index,
        }
    }

    /// Resolves a definition name to its index.
    pub fn lookup(&self, name: &Symbol) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The instruction at `ip`, if in range.
    pub fn at(&self, ip: u32) -> Option<&GenInstr> {
        self.code.get(ip as usize)
    }
}

// ----- serialization (`.t4og`) ----------------------------------------

const MAGIC: &[u8; 8] = b"t4ogenx\0";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 16;

/// Serializes a gen-ext program and its entry name to `.t4og` bytes:
/// magic, version, CRC-32 of the payload, then the tables.
pub fn encode_genext(prog: &GenProgram, entry: &Symbol) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    objfile::put_u32(&mut out, VERSION);
    objfile::put_u32(&mut out, 0); // checksum placeholder, patched below
    objfile::put_sym(&mut out, entry);
    objfile::put_u32(&mut out, prog.consts.len() as u32);
    for d in &prog.consts {
        objfile::put_datum(&mut out, d);
    }
    objfile::put_u32(&mut out, prog.code.len() as u32);
    for i in &prog.code {
        put_geninstr(&mut out, i);
    }
    objfile::put_u32(&mut out, prog.lams.len() as u32);
    for l in &prog.lams {
        objfile::put_sym(&mut out, &l.name);
        objfile::put_u32(&mut out, l.params.len() as u32);
        for p in &l.params {
            objfile::put_sym(&mut out, p);
        }
        objfile::put_u32(&mut out, l.body);
    }
    objfile::put_u32(&mut out, prog.defs.len() as u32);
    for d in &prog.defs {
        objfile::put_sym(&mut out, &d.name);
        objfile::put_u32(&mut out, d.params.len() as u32);
        for p in &d.params {
            objfile::put_sym(&mut out, &p.name);
            out.push(u8::from(p.dynamic));
        }
        out.push(u8::from(d.memoize));
        objfile::put_u32(&mut out, d.body);
        objfile::put_u32(&mut out, d.generic);
    }
    let crc = objfile::crc32(&out[HEADER_LEN..]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    out
}

fn put_ips(out: &mut Vec<u8>, args: &[u32]) {
    objfile::put_u32(out, args.len() as u32);
    for a in args {
        objfile::put_u32(out, *a);
    }
}

fn put_geninstr(out: &mut Vec<u8>, i: &GenInstr) {
    match i {
        GenInstr::Const(k) => {
            out.push(0);
            objfile::put_u32(out, *k);
        }
        GenInstr::Var { name, up, idx } => {
            out.push(1);
            objfile::put_sym(out, name);
            objfile::put_u16(out, *up);
            objfile::put_u16(out, *idx);
        }
        GenInstr::Global(g) => {
            out.push(2);
            objfile::put_u32(out, *g);
        }
        GenInstr::Unbound(x) => {
            out.push(3);
            objfile::put_sym(out, x);
        }
        GenInstr::Lift => out.push(4),
        GenInstr::Clo(l) => {
            out.push(5);
            objfile::put_u32(out, *l);
        }
        GenInstr::LamD(l) => {
            out.push(6);
            objfile::put_u32(out, *l);
        }
        GenInstr::IfS { then_, els } => {
            out.push(7);
            objfile::put_u32(out, *then_);
            objfile::put_u32(out, *els);
        }
        GenInstr::IfD { then_, els } => {
            out.push(8);
            objfile::put_u32(out, *then_);
            objfile::put_u32(out, *els);
        }
        GenInstr::Let { name, body } => {
            out.push(9);
            objfile::put_sym(out, name);
            objfile::put_u32(out, *body);
        }
        GenInstr::App { args } => {
            out.push(10);
            put_ips(out, args);
        }
        GenInstr::AppD { args } => {
            out.push(11);
            put_ips(out, args);
        }
        GenInstr::Prim { prim, args } => {
            out.push(12);
            objfile::put_str(out, prim.name());
            put_ips(out, args);
        }
        GenInstr::PrimD { prim, args } => {
            out.push(13);
            objfile::put_str(out, prim.name());
            put_ips(out, args);
        }
    }
}

fn read_ips(r: &mut Reader<'_>) -> Result<Box<[u32]>, ObjError> {
    let n = r.vec_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out.into_boxed_slice())
}

fn read_prim(r: &mut Reader<'_>) -> Result<Prim, ObjError> {
    let name = r.str()?;
    Prim::from_name(&name).ok_or(ObjError::BadPrim(name))
}

fn read_geninstr(r: &mut Reader<'_>) -> Result<GenInstr, ObjError> {
    Ok(match r.u8()? {
        0 => GenInstr::Const(r.u32()?),
        1 => GenInstr::Var {
            name: r.sym()?,
            up: r.u16()?,
            idx: r.u16()?,
        },
        2 => GenInstr::Global(r.u32()?),
        3 => GenInstr::Unbound(r.sym()?),
        4 => GenInstr::Lift,
        5 => GenInstr::Clo(r.u32()?),
        6 => GenInstr::LamD(r.u32()?),
        7 => GenInstr::IfS {
            then_: r.u32()?,
            els: r.u32()?,
        },
        8 => GenInstr::IfD {
            then_: r.u32()?,
            els: r.u32()?,
        },
        9 => GenInstr::Let {
            name: r.sym()?,
            body: r.u32()?,
        },
        10 => GenInstr::App { args: read_ips(r)? },
        11 => GenInstr::AppD { args: read_ips(r)? },
        12 => GenInstr::Prim {
            prim: read_prim(r)?,
            args: read_ips(r)?,
        },
        13 => GenInstr::PrimD {
            prim: read_prim(r)?,
            args: read_ips(r)?,
        },
        t => return Err(ObjError::BadTag("geninstr", t)),
    })
}

/// Deserializes a `.t4og` gen-ext file into the program and its entry
/// name. Validates the CRC and that every instruction pointer, constant
/// index, lambda index, and definition index is in range, so a corrupt
/// file is rejected before anything executes it.
///
/// # Errors
///
/// Returns an [`ObjError`] on malformed input.
pub fn decode_genext(bytes: &[u8]) -> Result<(Arc<GenProgram>, Symbol), ObjError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(ObjError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(ObjError::BadVersion(version));
    }
    let stored = r.u32()?;
    if bytes.len() < HEADER_LEN {
        return Err(ObjError::Truncated);
    }
    let computed = objfile::crc32(&bytes[HEADER_LEN..]);
    if stored != computed {
        return Err(ObjError::BadChecksum { stored, computed });
    }
    let entry = r.sym()?;
    let nconsts = r.vec_len()?;
    let mut consts = Vec::with_capacity(nconsts);
    for _ in 0..nconsts {
        consts.push(r.datum()?);
    }
    let ncode = r.vec_len()?;
    let mut code = Vec::with_capacity(ncode);
    for _ in 0..ncode {
        code.push(read_geninstr(&mut r)?);
    }
    let nlams = r.vec_len()?;
    let mut lams = Vec::with_capacity(nlams);
    for _ in 0..nlams {
        let name = r.sym()?;
        let nparams = r.vec_len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(r.sym()?);
        }
        let body = r.u32()?;
        lams.push(GenLam { name, params, body });
    }
    let ndefs = r.vec_len()?;
    let mut defs = Vec::with_capacity(ndefs);
    for _ in 0..ndefs {
        let name = r.sym()?;
        let nparams = r.vec_len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            let name = r.sym()?;
            let dynamic = r.u8()? != 0;
            params.push(GenParam { name, dynamic });
        }
        let memoize = r.u8()? != 0;
        let body = r.u32()?;
        let generic = r.u32()?;
        defs.push(GenDef {
            name,
            params,
            memoize,
            body,
            generic,
        });
    }
    if r.remaining() != 0 {
        return Err(ObjError::TrailingBytes(r.remaining()));
    }
    let prog = GenProgram::new(consts, code, lams, defs);
    validate(&prog)?;
    Ok((Arc::new(prog), entry))
}

/// Structural validation: every cross-reference lands in range.
fn validate(p: &GenProgram) -> Result<(), ObjError> {
    let ncode = p.code.len() as u32;
    let ip_ok = |ip: u32| ip < ncode;
    let bad = || ObjError::BadTag("genref", 0xff);
    for (at, i) in p.code.iter().enumerate() {
        let at = at as u32;
        // Instructions whose first child sits at `ip + 1` need a successor.
        let needs_next = matches!(
            i,
            GenInstr::Lift
                | GenInstr::IfS { .. }
                | GenInstr::IfD { .. }
                | GenInstr::Let { .. }
                | GenInstr::App { .. }
                | GenInstr::AppD { .. }
        );
        if needs_next && !ip_ok(at + 1) {
            return Err(bad());
        }
        match i {
            GenInstr::Const(k) => {
                if *k as usize >= p.consts.len() {
                    return Err(bad());
                }
            }
            GenInstr::Global(g) => {
                if *g as usize >= p.defs.len() {
                    return Err(bad());
                }
            }
            GenInstr::Clo(l) | GenInstr::LamD(l) => {
                if *l as usize >= p.lams.len() {
                    return Err(bad());
                }
            }
            GenInstr::IfS { then_, els } | GenInstr::IfD { then_, els } => {
                if !ip_ok(*then_) || !ip_ok(*els) {
                    return Err(bad());
                }
            }
            GenInstr::Let { body, .. } => {
                if !ip_ok(*body) {
                    return Err(bad());
                }
            }
            GenInstr::App { args }
            | GenInstr::AppD { args }
            | GenInstr::Prim { args, .. }
            | GenInstr::PrimD { args, .. } => {
                if args.iter().any(|a| !ip_ok(*a)) {
                    return Err(bad());
                }
            }
            GenInstr::Var { .. } | GenInstr::Unbound(_) | GenInstr::Lift => {}
        }
    }
    for l in &p.lams {
        if !ip_ok(l.body) {
            return Err(bad());
        }
    }
    for d in &p.defs {
        if !ip_ok(d.body) || !ip_ok(d.generic) {
            return Err(bad());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GenProgram {
        let x = Symbol::new("x");
        let f = Symbol::new("f");
        GenProgram::new(
            vec![Datum::Int(7)],
            vec![
                GenInstr::IfS { then_: 2, els: 3 },
                GenInstr::Const(0),
                GenInstr::Var {
                    name: x,
                    up: 0,
                    idx: 0,
                },
                GenInstr::PrimD {
                    prim: Prim::Add,
                    args: Box::new([2, 1]),
                },
            ],
            vec![GenLam {
                name: Symbol::new("l"),
                params: vec![x],
                body: 2,
            }],
            vec![GenDef {
                name: f,
                params: vec![GenParam {
                    name: x,
                    dynamic: true,
                }],
                memoize: false,
                body: 0,
                generic: 3,
            }],
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let entry = Symbol::new("f");
        let bytes = encode_genext(&p, &entry);
        let (q, e) = decode_genext(&bytes).unwrap();
        assert_eq!(e, entry);
        assert_eq!(*q, p);
        assert_eq!(q.lookup(&entry), Some(0));
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let p = sample();
        let mut bytes = encode_genext(&p, &Symbol::new("f"));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            decode_genext(&bytes),
            Err(ObjError::BadChecksum { .. })
        ));
        assert!(matches!(
            decode_genext(&bytes[..4]),
            Err(ObjError::BadMagic) | Err(ObjError::Truncated)
        ));
    }

    #[test]
    fn out_of_range_refs_rejected() {
        let mut p = sample();
        p.defs[0].body = 99;
        let bytes = encode_genext(&p, &Symbol::new("f"));
        assert!(decode_genext(&bytes).is_err());
    }

    #[test]
    fn first_definition_of_a_name_wins() {
        let f = Symbol::new("f");
        let mk = |body| GenDef {
            name: f,
            params: vec![],
            memoize: false,
            body,
            generic: 0,
        };
        let p = GenProgram::new(
            vec![],
            vec![GenInstr::Unbound(f), GenInstr::Unbound(f)],
            vec![],
            vec![mk(0), mk(1)],
        );
        assert_eq!(p.lookup(&f), Some(0));
        assert_eq!(p.at(1), Some(&GenInstr::Unbound(f)));
        assert_eq!(p.at(2), None);
    }
}
