//! Property-based tests over random programs and data.
//!
//! Programs are generated as `Send`-able sketches and materialized inside
//! a large-stack worker thread (syntax trees use `Rc` internally and the
//! engines recurse deeply). Random programs can diverge, so every engine
//! runs with fuel; a case where any engine times out is skipped — the
//! properties quantify over the *decidable* cases.

use proptest::prelude::*;
use two4one::{compile, with_stack_size, Datum, Image, Interp, Machine, Symbol};
use two4one_testkit::{arb_datum, arb_sketch, program_from_sketch, Sketch};

// The tree-walking interpreter nests a Rust frame per non-tail call, so
// divergent non-tail recursion consumes stack proportional to fuel; keep
// fuel small enough to hit the meter before the 2 GiB worker stack.
const INTERP_FUEL: u64 = 100_000;
const VM_FUEL: u64 = 2_000_000;
// Debug-build CPS frames are large; keep unfold depth well under the
// 512 MiB worker stack.
const PE_FUEL: u64 = 6_000;

/// Outcome of running a program under some engine.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Value plus collected output.
    Val(Option<Datum>, String),
    /// A runtime error.
    Fault,
    /// Fuel ran out — undecidable, skip.
    Timeout,
}

fn run_interp(p: &two4one::cs::Program, args: &[Datum]) -> Outcome {
    let mut i = Interp::new(p).with_fuel(INTERP_FUEL);
    let argv = args.iter().map(two4one_interp_value).collect();
    match i.call_global(&Symbol::new("main"), argv) {
        Ok(v) => Outcome::Val(v.to_datum(), i.output),
        Err(two4one::RtError::FuelExhausted) => Outcome::Timeout,
        Err(_) => Outcome::Fault,
    }
}

fn two4one_interp_value(d: &Datum) -> two4one::InterpValue {
    two4one::InterpValue::from(d)
}

fn run_vm(image: &Image, args: &[Datum]) -> Outcome {
    let mut m = Machine::load(image).with_fuel(VM_FUEL);
    let argv = args.iter().map(two4one::Value::from).collect();
    match m.call_global(&Symbol::new("main"), argv) {
        Ok(v) => Outcome::Val(v.to_datum(), m.output),
        Err(two4one::VmError::FuelExhausted) => Outcome::Timeout,
        Err(_) => Outcome::Fault,
    }
}

fn agree(name: &str, a: &Outcome, b: &Outcome) -> Result<(), String> {
    match (a, b) {
        (Outcome::Timeout, _) | (_, Outcome::Timeout) => Ok(()),
        _ if a == b => Ok(()),
        _ => Err(format!("{name}: {a:?} vs {b:?}")),
    }
}

/// Engine agreement on random programs.
fn check_engines_agree(m: Sketch, g: Sketch, a: i64, b: i64) -> Result<(), String> {
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let args = [Datum::Int(a), Datum::Int(b)];
        let expect = run_interp(&p, &args);
        let image = compile(&p, "main").map_err(|e| format!("compile: {e}"))?;
        let got = run_vm(&image, &args);
        agree("interp-vs-vm", &expect, &got)
    })
}

fn check_normalizer(m: Sketch, g: Sketch) -> Result<(), String> {
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let anf = two4one::anf::normalize(&p);
        for d in &anf.defs {
            if !two4one::anf::cs_is_anf(&d.body.to_cs()) {
                return Err(format!("not ANF: {}", d.body));
            }
        }
        let args = [Datum::Int(3), Datum::Int(4)];
        agree(
            "normalize",
            &run_interp(&p, &args),
            &run_interp(&anf.to_cs(), &args),
        )?;
        // The optimizer must preserve semantics and the ANF grammar.
        let opt = two4one::anf::optimize(&anf);
        for d in &opt.defs {
            if !two4one::anf::cs_is_anf(&d.body.to_cs()) {
                return Err(format!("optimizer broke ANF: {}", d.body));
            }
        }
        agree(
            "optimize",
            &run_interp(&anf.to_cs(), &args),
            &run_interp(&opt.to_cs(), &args),
        )
    })
}

fn check_all_dynamic_pe(m: Sketch, g: Sketch, a: i64, b: i64) -> Result<(), String> {
    // Debug builds spend ~10 large CPS frames per unfold; give this worker
    // extra address space on top of the lowered fuel.
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let pgg = two4one::Pgg::new().unfold_fuel(PE_FUEL).spec_depth(30_000);
        let genext = pgg
            .cogen(&p, "main", &two4one::Division::all_dynamic(2))
            .map_err(|e| format!("cogen: {e}"))?;
        let args = [Datum::Int(a), Datum::Int(b)];
        let expect = run_interp(&p, &args);
        match genext.specialize_object(&[]) {
            Ok(image) => agree("pe", &expect, &run_vm(&image, &args)),
            // Unfold-fuel/depth exhaustion = spec-time divergence or
            // work exceeding the test budget: undecidable, skip.
            Err(two4one::Error::Pe(two4one::PeError::UnfoldLimit(_)))
            | Err(two4one::Error::Pe(two4one::PeError::DepthLimit { .. })) => Ok(()),
            // Speculative static evaluation may fault where the program
            // faults at run time.
            Err(e) => {
                if matches!(expect, Outcome::Fault | Outcome::Timeout) {
                    Ok(())
                } else {
                    Err(format!("specializer failed ({e}) on a healthy program"))
                }
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn interpreter_and_vm_agree_on_random_programs(
        m in arb_sketch(),
        g in arb_sketch(),
        a in -50i64..50,
        b in -50i64..50,
    ) {
        let r = check_engines_agree(m, g, a, b);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn normalizer_output_is_valid_anf(m in arb_sketch(), g in arb_sketch()) {
        let r = check_normalizer(m, g);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn all_dynamic_specialization_preserves_semantics(
        m in arb_sketch(),
        g in arb_sketch(),
        a in -20i64..20,
        b in -20i64..20,
    ) {
        let r = check_all_dynamic_pe(m, g, a, b);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn reader_printer_roundtrip(d in arb_datum()) {
        let text = d.to_string();
        let back = two4one::reader::read_one(&text)
            .unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        prop_assert_eq!(back, d);
    }

    #[test]
    fn pretty_printer_roundtrip(d in arb_datum()) {
        let text = two4one::printer::pretty(&d, 30);
        let back = two4one::reader::read_one(&text)
            .unwrap_or_else(|e| panic!("reparse pretty `{text}`: {e}"));
        prop_assert_eq!(back, d);
    }
}
