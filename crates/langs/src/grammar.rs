//! The grammar/matching workload family: a small grammar language
//! (alternation, concatenation, Kleene star, named nonterminals) restricted
//! to an LL(1)-checkable subset, plus a matcher interpreter written in the
//! Scheme subset.
//!
//! This is the commercially hot instance of the paper's first Futamura
//! projection: grammar-constrained decoding compiles a fixed grammar into
//! a matcher evaluated once per token. Here the grammar is *static* and
//! the input is *dynamic* under BTA, so specializing [`GRAMMAR_INTERP`]
//! against a fixed grammar residualizes a compiled recognizer — one
//! residual function per nonterminal (the `gm-nt` memoization point), one
//! residual loop per star node (`gm-star`), and every character dispatch
//! unfolded into `eq?` chains on the lookahead.
//!
//! # Why LL(1)
//!
//! The interpreter is backtrack-free: every `alt` and `star` decision is
//! made by peeking at the next input character against a *decision set*
//! baked into the grammar encoding by the front end. That only works when
//! the decision sets are unambiguous, so [`parse`] rejects anything
//! outside the backtrack-free subset with a typed [`GrammarError`]:
//! left recursion, alternatives with overlapping FIRST sets, more than
//! one nullable alternative, nullable alternatives whose siblings collide
//! with the FOLLOW set, nullable star bodies, and star bodies whose FIRST
//! collides with what may follow the star. Rejection is always an `Err`,
//! never a panic — this module is on the zero-panic-budget list.
//!
//! # Encoding
//!
//! The front end lowers a validated grammar to the datum shape the
//! interpreter walks (first rule is the start symbol):
//!
//! ```text
//! grammar ::= ((name node) ...)
//! node    ::= (eps)                  -- match nothing
//!           | (chr t)                -- match terminal t
//!           | (seq n1 n2)            -- n1 then n2
//!           | (alt (t ...) n1 n2)    -- n1 if lookahead in the set, else n2
//!           | (star (t ...) n)       -- loop n while lookahead in the set
//!           | (nt name)              -- invoke nonterminal
//! ```
//!
//! Both decision sets are FIRST sets computed here, so the interpreter
//! never recomputes them — and specialization folds the membership test
//! into straight-line comparisons.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use two4one_syntax::acs::CallPolicy;
use two4one_syntax::datum::Datum;
use two4one_syntax::reader::read_all;

/// The matcher interpreter, written in the Scheme subset.
///
/// Walks `(grammar, input)` where the grammar is the encoded datum above
/// and the input is a list of one-character symbols. A match attempt
/// returns the remaining input on success or the sentinel symbol
/// `gm-fail`; `gm-run` accepts when the whole input is consumed.
pub const GRAMMAR_INTERP: &str = r#"
;; --- GM: a backtrack-free matcher over LL(1)-checked grammars.
;; The grammar (with decision sets precomputed by the front end) is
;; static; the input word is dynamic. A node match returns the remaining
;; input, or the symbol gm-fail.

(define (gm-run grammar input)
  (gm-accept (gm-nt (gm-rule-name (car grammar)) input grammar)))

(define (gm-accept rest)
  (if (eq? rest 'gm-fail) #f (null? rest)))

(define (gm-rule-name r) (car r))
(define (gm-rule-body r) (cadr r))

(define (gm-lookup name grammar)
  (cond ((null? grammar) (error "gm: no such rule" name))
        ((eq? name (gm-rule-name (car grammar))) (gm-rule-body (car grammar)))
        (else (gm-lookup name (cdr grammar)))))

;; The specialization point: one residual function per nonterminal.
(define (gm-nt name input grammar)
  (gm-match (gm-lookup name grammar) input grammar))

(define (gm-match e input grammar)
  (cond ((eq? (car e) 'eps) input)
        ((eq? (car e) 'chr)
         (if (null? input)
             'gm-fail
             (if (eq? (car input) (cadr e)) (cdr input) 'gm-fail)))
        ((eq? (car e) 'seq)
         (gm-then (gm-match (cadr e) input grammar) (caddr e) grammar))
        ((eq? (car e) 'alt)
         (if (gm-peek (cadr e) input)
             (gm-match (caddr e) input grammar)
             (gm-match (cadddr e) input grammar)))
        ((eq? (car e) 'star)
         (gm-star (cadr e) (caddr e) input grammar))
        ((eq? (car e) 'nt)
         (gm-nt (cadr e) input grammar))
        (else (error "gm: bad node" e))))

;; Sequencing: run the continuation only on success.
(define (gm-then rest e grammar)
  (if (eq? rest 'gm-fail)
      'gm-fail
      (gm-match e rest grammar)))

;; Is the lookahead in the (static) decision set? Unfolds to an eq? chain.
(define (gm-peek firsts input)
  (if (null? input)
      #f
      (gm-member (car input) firsts)))

(define (gm-member x xs)
  (cond ((null? xs) #f)
        ((eq? x (car xs)) #t)
        (else (gm-member x (cdr xs)))))

;; Kleene star, the second specialization point: a residual loop function
;; per star node. The body is never nullable (front-end check), so every
;; iteration consumes input and matching terminates.
(define (gm-star firsts e input grammar)
  (if (gm-peek firsts input)
      (gm-star-then firsts e (gm-match e input grammar) grammar)
      input))

(define (gm-star-then firsts e rest grammar)
  (if (eq? rest 'gm-fail)
      'gm-fail
      (gm-star firsts e rest grammar)))
"#;

/// Unfold/memoize policy for the matcher interpreter: `gm-nt` (one
/// residual function per nonterminal) and `gm-star` (one residual loop
/// per star node) are the specialization points; everything else unfolds.
///
/// Both need explicit policies: neither has dynamic control in its own
/// body (the dynamic `if`s live in the helpers they call), so the
/// Bondorf-style automatic criterion would not pick them.
pub fn grammar_policies() -> Vec<(&'static str, CallPolicy)> {
    vec![
        ("gm-nt", CallPolicy::Memoize),
        ("gm-star", CallPolicy::Memoize),
        ("gm-run", CallPolicy::Unfold),
        ("gm-accept", CallPolicy::Unfold),
        ("gm-rule-name", CallPolicy::Unfold),
        ("gm-rule-body", CallPolicy::Unfold),
        ("gm-lookup", CallPolicy::Unfold),
        ("gm-match", CallPolicy::Unfold),
        ("gm-then", CallPolicy::Unfold),
        ("gm-peek", CallPolicy::Unfold),
        ("gm-member", CallPolicy::Unfold),
        ("gm-star-then", CallPolicy::Unfold),
    ]
}

/// Typed rejection of a grammar outside the accepted subset. Never a
/// panic: every malformed or non-LL(1) input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The grammar text did not read as s-expressions.
    Read(String),
    /// The file must contain exactly one datum: the list of rules.
    NotOneDatum(usize),
    /// The top-level datum is not a list of rules.
    NotARuleList,
    /// A grammar with no rules has no start symbol.
    Empty,
    /// A rule is not `(name body ...)` with a symbol name.
    MalformedRule(String),
    /// A rule name collides with a reserved form or the fail sentinel.
    ReservedName(String),
    /// Two rules share a name.
    DuplicateRule(String),
    /// A form like `(star)` with no operands.
    EmptyForm(&'static str),
    /// An expression that is none of the accepted shapes.
    BadExpr(String),
    /// A multi-character symbol that names no rule (likely a typo).
    UnknownSymbol(String),
    /// A terminal outside the portable set (ASCII alphanumeric, `-`, `_`).
    BadTerminal(char),
    /// The nonterminal can derive itself without consuming input.
    LeftRecursive(String),
    /// Two alternatives of an `alt` can both start with this terminal.
    AltConflict {
        /// Rule the conflict is in.
        rule: String,
        /// Terminal in both branches' FIRST sets.
        terminal: char,
    },
    /// More than one alternative of an `alt` is nullable.
    AltMultipleNullable {
        /// Rule the conflict is in.
        rule: String,
    },
    /// An `alt` has a nullable branch and another branch whose FIRST
    /// collides with what may follow — the peek cannot decide.
    AltFollowConflict {
        /// Rule the conflict is in.
        rule: String,
        /// Terminal in both a branch's FIRST and the alt's FOLLOW.
        terminal: char,
    },
    /// A star body that can match nothing would loop forever.
    NullableStarBody {
        /// Rule the star is in.
        rule: String,
    },
    /// A star whose body FIRST collides with what may follow the star —
    /// the peek cannot decide between another iteration and exiting.
    StarFollowConflict {
        /// Rule the star is in.
        rule: String,
        /// Terminal in both FIRST(body) and FOLLOW(star).
        terminal: char,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Read(e) => write!(f, "grammar does not read: {e}"),
            GrammarError::NotOneDatum(n) => {
                write!(f, "grammar file must hold exactly one rule list, found {n}")
            }
            GrammarError::NotARuleList => write!(f, "grammar must be a list of rules"),
            GrammarError::Empty => write!(f, "grammar has no rules"),
            GrammarError::MalformedRule(d) => {
                write!(f, "rule must be (name body ...) with a symbol name: {d}")
            }
            GrammarError::ReservedName(n) => {
                write!(f, "`{n}` is reserved and cannot name a rule")
            }
            GrammarError::DuplicateRule(n) => write!(f, "rule `{n}` is defined twice"),
            GrammarError::EmptyForm(which) => write!(f, "({which}) needs at least one operand"),
            GrammarError::BadExpr(d) => write!(f, "not a grammar expression: {d}"),
            GrammarError::UnknownSymbol(s) => write!(
                f,
                "`{s}` names no rule and is not a single-character terminal"
            ),
            GrammarError::BadTerminal(c) => write!(
                f,
                "terminal `{c}` outside the portable set (ASCII alphanumeric, `-`, `_`)"
            ),
            GrammarError::LeftRecursive(n) => write!(
                f,
                "rule `{n}` is left-recursive (derives itself without consuming input)"
            ),
            GrammarError::AltConflict { rule, terminal } => write!(
                f,
                "alternatives in `{rule}` are ambiguous on lookahead `{terminal}` \
                 (overlapping FIRST sets)"
            ),
            GrammarError::AltMultipleNullable { rule } => write!(
                f,
                "more than one alternative in `{rule}` can match the empty string"
            ),
            GrammarError::AltFollowConflict { rule, terminal } => write!(
                f,
                "nullable alternation in `{rule}` is ambiguous on lookahead \
                 `{terminal}` (FIRST/FOLLOW overlap)"
            ),
            GrammarError::NullableStarBody { rule } => write!(
                f,
                "star body in `{rule}` can match the empty string (would loop forever)"
            ),
            GrammarError::StarFollowConflict { rule, terminal } => write!(
                f,
                "star in `{rule}` is ambiguous on lookahead `{terminal}` \
                 (body FIRST overlaps what may follow)"
            ),
        }
    }
}

impl std::error::Error for GrammarError {}

/// Names with special meaning in rule bodies; none may name a rule.
const RESERVED: [&str; 7] = ["eps", "seq", "alt", "star", "opt", "plus", "gm-fail"];

/// A grammar expression after lowering, before LL(1) validation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Eps,
    Chr(char),
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Star(Box<Node>),
    Nt(String),
}

/// A validated, backtrack-free grammar, ready to encode.
#[derive(Debug, Clone)]
pub struct Grammar {
    rules: Vec<(String, Node)>,
    first: BTreeMap<String, BTreeSet<char>>,
    nullable: BTreeMap<String, bool>,
}

impl Grammar {
    /// The start symbol (the first rule's name).
    pub fn start(&self) -> &str {
        // A `Grammar` only exists post-validation, which rejects Empty.
        self.rules.first().map(|(n, _)| n.as_str()).unwrap_or("")
    }

    /// Rule names in definition order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Lowers the grammar to the datum encoding the interpreter walks,
    /// decision sets included.
    pub fn encode(&self) -> Datum {
        let rules: Vec<Datum> = self
            .rules
            .iter()
            .map(|(name, body)| Datum::list([Datum::sym(name), self.encode_node(body)]))
            .collect();
        Datum::list(rules)
    }

    fn encode_node(&self, n: &Node) -> Datum {
        match n {
            Node::Eps => Datum::list([Datum::sym("eps")]),
            Node::Chr(c) => Datum::list([Datum::sym("chr"), Datum::Char(*c)]),
            Node::Seq(es) => match es.len() {
                0 => Datum::list([Datum::sym("eps")]),
                1 => self.encode_node(&es[0]),
                _ => {
                    let head = self.encode_node(&es[0]);
                    let tail = self.encode_node(&Node::Seq(es[1..].to_vec()));
                    Datum::list([Datum::sym("seq"), head, tail])
                }
            },
            Node::Alt(branches) => {
                // Validation guarantees at most one nullable branch; put
                // it last so every decision set is a plain FIRST set.
                let mut ordered: Vec<&Node> = branches.iter().collect();
                if let Some(pos) = ordered.iter().position(|b| self.node_nullable(b)) {
                    let nullable = ordered.remove(pos);
                    ordered.push(nullable);
                }
                self.encode_alt(&ordered)
            }
            Node::Star(body) => {
                let firsts = self.first_set(body);
                Datum::list([
                    Datum::sym("star"),
                    encode_charset(&firsts),
                    self.encode_node(body),
                ])
            }
            Node::Nt(name) => Datum::list([Datum::sym("nt"), Datum::sym(name)]),
        }
    }

    fn encode_alt(&self, branches: &[&Node]) -> Datum {
        match branches {
            [] => Datum::list([Datum::sym("eps")]),
            [only] => self.encode_node(only),
            [head, rest @ ..] => Datum::list([
                Datum::sym("alt"),
                encode_charset(&self.first_set(head)),
                self.encode_node(head),
                self.encode_alt(rest),
            ]),
        }
    }

    fn node_nullable(&self, n: &Node) -> bool {
        match n {
            Node::Eps => true,
            Node::Chr(_) => false,
            Node::Seq(es) => es.iter().all(|e| self.node_nullable(e)),
            Node::Alt(es) => es.iter().any(|e| self.node_nullable(e)),
            Node::Star(_) => true,
            Node::Nt(name) => self.nullable.get(name).copied().unwrap_or(false),
        }
    }

    fn first_set(&self, n: &Node) -> BTreeSet<char> {
        match n {
            Node::Eps => BTreeSet::new(),
            Node::Chr(c) => BTreeSet::from([*c]),
            Node::Seq(es) => {
                let mut out = BTreeSet::new();
                for e in es {
                    out.extend(self.first_set(e));
                    if !self.node_nullable(e) {
                        break;
                    }
                }
                out
            }
            Node::Alt(es) => es.iter().flat_map(|e| self.first_set(e)).collect(),
            Node::Star(body) => self.first_set(body),
            Node::Nt(name) => self.first.get(name).cloned().unwrap_or_default(),
        }
    }
}

fn encode_charset(set: &BTreeSet<char>) -> Datum {
    Datum::list(set.iter().map(|c| Datum::Char(*c)))
}

/// Parses and validates grammar text.
///
/// # Errors
///
/// Returns a [`GrammarError`] for anything outside the backtrack-free
/// subset — malformed text, duplicate or reserved rule names, unknown
/// symbols, left recursion, or any FIRST/FOLLOW ambiguity.
pub fn parse(text: &str) -> Result<Grammar, GrammarError> {
    let data = read_all(text).map_err(|e| GrammarError::Read(e.to_string()))?;
    if data.len() != 1 {
        return Err(GrammarError::NotOneDatum(data.len()));
    }
    let rule_data = data[0].to_vec().ok_or(GrammarError::NotARuleList)?;
    if rule_data.is_empty() {
        return Err(GrammarError::Empty);
    }

    // Pass 1: rule names (so bare symbols can be classified).
    let mut names: Vec<String> = Vec::with_capacity(rule_data.len());
    for r in &rule_data {
        let items = r
            .to_vec()
            .ok_or_else(|| GrammarError::MalformedRule(r.to_string()))?;
        let name = match items.first() {
            Some(Datum::Sym(s)) => s.to_string(),
            _ => return Err(GrammarError::MalformedRule(r.to_string())),
        };
        if items.len() < 2 {
            return Err(GrammarError::MalformedRule(r.to_string()));
        }
        if RESERVED.contains(&name.as_str()) {
            return Err(GrammarError::ReservedName(name));
        }
        if names.contains(&name) {
            return Err(GrammarError::DuplicateRule(name));
        }
        names.push(name);
    }

    // Pass 2: lower bodies.
    let mut rules: Vec<(String, Node)> = Vec::with_capacity(rule_data.len());
    for (r, name) in rule_data.iter().zip(&names) {
        let items = r
            .to_vec()
            .ok_or_else(|| GrammarError::MalformedRule(r.to_string()))?;
        let body = lower_seq(&items[1..], &names)?;
        rules.push((name.clone(), body));
    }

    // NULLABLE fixpoint over the nonterminals.
    let mut nullable: BTreeMap<String, bool> = names.iter().map(|n| (n.clone(), false)).collect();
    loop {
        let mut changed = false;
        for (name, body) in &rules {
            if !nullable[name] && node_nullable_in(body, &nullable) {
                nullable.insert(name.clone(), true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Left recursion: a cycle in the "can appear leftmost without input
    // consumed" relation between nonterminals.
    check_left_recursion(&rules, &nullable)?;

    // FIRST fixpoint.
    let mut first: BTreeMap<String, BTreeSet<char>> =
        names.iter().map(|n| (n.clone(), BTreeSet::new())).collect();
    loop {
        let mut changed = false;
        for (name, body) in &rules {
            let computed = first_in(body, &first, &nullable);
            let cur = first.entry(name.clone()).or_default();
            if !computed.is_subset(cur) {
                cur.extend(computed);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // FOLLOW fixpoint (terminals only; end-of-input needs no marker here
    // because it can never collide with a terminal).
    let mut follow: BTreeMap<String, BTreeSet<char>> =
        names.iter().map(|n| (n.clone(), BTreeSet::new())).collect();
    loop {
        let mut changed = false;
        for (name, body) in &rules {
            let rule_follow = follow.get(name).cloned().unwrap_or_default();
            changed |= collect_follow(body, &rule_follow, &first, &nullable, &mut follow);
        }
        if !changed {
            break;
        }
    }

    let g = Grammar {
        rules,
        first,
        nullable,
    };

    // LL(1) validation with the inherited follow set threaded down.
    for (name, body) in &g.rules {
        let rule_follow = follow.get(name).cloned().unwrap_or_default();
        validate(&g, name, body, &rule_follow)?;
    }
    Ok(g)
}

/// Lowers a slice of body expressions to a node (implicit sequence).
fn lower_seq(items: &[Datum], names: &[String]) -> Result<Node, GrammarError> {
    let mut nodes = Vec::with_capacity(items.len());
    for d in items {
        nodes.push(lower(d, names)?);
    }
    Ok(match nodes.len() {
        1 => nodes.remove(0),
        _ => Node::Seq(nodes),
    })
}

fn lower(d: &Datum, names: &[String]) -> Result<Node, GrammarError> {
    match d {
        Datum::Sym(s) => {
            let name = s.as_str();
            if name == "eps" {
                return Ok(Node::Eps);
            }
            if names.iter().any(|n| n == name) {
                return Ok(Node::Nt(name.to_string()));
            }
            let mut chars = name.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => lower_terminal(c),
                _ => Err(GrammarError::UnknownSymbol(name.to_string())),
            }
        }
        Datum::Char(c) => lower_terminal(*c),
        // Digits read as integers; as grammar atoms they are terminals.
        Datum::Int(n @ 0..=9) => lower_terminal((b'0' + *n as u8) as char),
        Datum::Pair(_) => {
            let items = d
                .to_vec()
                .ok_or_else(|| GrammarError::BadExpr(d.to_string()))?;
            let head = match items.first() {
                Some(Datum::Sym(s)) => s.to_string(),
                _ => return Err(GrammarError::BadExpr(d.to_string())),
            };
            let rest = &items[1..];
            match head.as_str() {
                "seq" => {
                    if rest.is_empty() {
                        return Err(GrammarError::EmptyForm("seq"));
                    }
                    lower_seq(rest, names)
                }
                "alt" => {
                    if rest.is_empty() {
                        return Err(GrammarError::EmptyForm("alt"));
                    }
                    let mut branches = Vec::with_capacity(rest.len());
                    for b in rest {
                        branches.push(lower(b, names)?);
                    }
                    Ok(if branches.len() == 1 {
                        branches.remove(0)
                    } else {
                        Node::Alt(branches)
                    })
                }
                "star" => {
                    if rest.is_empty() {
                        return Err(GrammarError::EmptyForm("star"));
                    }
                    Ok(Node::Star(Box::new(lower_seq(rest, names)?)))
                }
                "opt" => {
                    if rest.is_empty() {
                        return Err(GrammarError::EmptyForm("opt"));
                    }
                    Ok(Node::Alt(vec![lower_seq(rest, names)?, Node::Eps]))
                }
                "plus" => {
                    if rest.is_empty() {
                        return Err(GrammarError::EmptyForm("plus"));
                    }
                    let body = lower_seq(rest, names)?;
                    Ok(Node::Seq(vec![body.clone(), Node::Star(Box::new(body))]))
                }
                _ => Err(GrammarError::BadExpr(d.to_string())),
            }
        }
        other => Err(GrammarError::BadExpr(other.to_string())),
    }
}

/// Terminals stay inside the set that survives a print/re-read round trip
/// of the embedding source (the grammar is spliced into Scheme text as a
/// quoted constant).
fn lower_terminal(c: char) -> Result<Node, GrammarError> {
    if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
        Ok(Node::Chr(c))
    } else {
        Err(GrammarError::BadTerminal(c))
    }
}

fn node_nullable_in(n: &Node, nullable: &BTreeMap<String, bool>) -> bool {
    match n {
        Node::Eps => true,
        Node::Chr(_) => false,
        Node::Seq(es) => es.iter().all(|e| node_nullable_in(e, nullable)),
        Node::Alt(es) => es.iter().any(|e| node_nullable_in(e, nullable)),
        Node::Star(_) => true,
        Node::Nt(name) => nullable.get(name).copied().unwrap_or(false),
    }
}

fn first_in(
    n: &Node,
    first: &BTreeMap<String, BTreeSet<char>>,
    nullable: &BTreeMap<String, bool>,
) -> BTreeSet<char> {
    match n {
        Node::Eps => BTreeSet::new(),
        Node::Chr(c) => BTreeSet::from([*c]),
        Node::Seq(es) => {
            let mut out = BTreeSet::new();
            for e in es {
                out.extend(first_in(e, first, nullable));
                if !node_nullable_in(e, nullable) {
                    break;
                }
            }
            out
        }
        Node::Alt(es) => es
            .iter()
            .flat_map(|e| first_in(e, first, nullable))
            .collect(),
        Node::Star(body) => first_in(body, first, nullable),
        Node::Nt(name) => first.get(name).cloned().unwrap_or_default(),
    }
}

/// One pass of the FOLLOW fixpoint for every nonterminal occurrence in
/// `n`, whose own inherited follow set is `ctx`. Returns whether any set
/// grew.
fn collect_follow(
    n: &Node,
    ctx: &BTreeSet<char>,
    first: &BTreeMap<String, BTreeSet<char>>,
    nullable: &BTreeMap<String, bool>,
    follow: &mut BTreeMap<String, BTreeSet<char>>,
) -> bool {
    match n {
        Node::Eps | Node::Chr(_) => false,
        Node::Seq(es) => {
            let mut changed = false;
            for (i, e) in es.iter().enumerate() {
                let mut item_follow = BTreeSet::new();
                let mut rest_nullable = true;
                for later in &es[i + 1..] {
                    item_follow.extend(first_in(later, first, nullable));
                    if !node_nullable_in(later, nullable) {
                        rest_nullable = false;
                        break;
                    }
                }
                if rest_nullable {
                    item_follow.extend(ctx.iter().copied());
                }
                changed |= collect_follow(e, &item_follow, first, nullable, follow);
            }
            changed
        }
        Node::Alt(es) => {
            let mut changed = false;
            for e in es {
                changed |= collect_follow(e, ctx, first, nullable, follow);
            }
            changed
        }
        Node::Star(body) => {
            // The body may be followed by another iteration or the exit.
            let mut body_follow = first_in(body, first, nullable);
            body_follow.extend(ctx.iter().copied());
            collect_follow(body, &body_follow, first, nullable, follow)
        }
        Node::Nt(name) => {
            let entry = follow.entry(name.clone()).or_default();
            let before = entry.len();
            entry.extend(ctx.iter().copied());
            entry.len() != before
        }
    }
}

/// Rejects left recursion: DFS over the "appears leftmost with only
/// nullable prefixes" edges between nonterminals.
fn check_left_recursion(
    rules: &[(String, Node)],
    nullable: &BTreeMap<String, bool>,
) -> Result<(), GrammarError> {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (name, body) in rules {
        let mut targets = BTreeSet::new();
        leftmost_nts(body, nullable, &mut targets);
        edges.insert(name, targets);
    }
    // Colors: 0 unvisited, 1 on stack, 2 done.
    let mut color: BTreeMap<&str, u8> = rules.iter().map(|(n, _)| (n.as_str(), 0)).collect();
    for (name, _) in rules {
        if color.get(name.as_str()) == Some(&0) {
            dfs_left(name, &edges, &mut color)?;
        }
    }
    Ok(())
}

fn dfs_left<'a>(
    at: &'a str,
    edges: &BTreeMap<&str, BTreeSet<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
) -> Result<(), GrammarError> {
    color.insert(at, 1);
    if let Some(next) = edges.get(at) {
        for n in next {
            match color.get(n) {
                Some(1) => return Err(GrammarError::LeftRecursive(n.to_string())),
                Some(0) => dfs_left(n, edges, color)?,
                _ => {}
            }
        }
    }
    color.insert(at, 2);
    Ok(())
}

/// Nonterminals reachable at the left edge of `n` (through nullable
/// prefixes).
fn leftmost_nts<'a>(n: &'a Node, nullable: &BTreeMap<String, bool>, out: &mut BTreeSet<&'a str>) {
    match n {
        Node::Eps | Node::Chr(_) => {}
        Node::Seq(es) => {
            for e in es {
                leftmost_nts(e, nullable, out);
                if !node_nullable_in(e, nullable) {
                    break;
                }
            }
        }
        Node::Alt(es) => {
            for e in es {
                leftmost_nts(e, nullable, out);
            }
        }
        Node::Star(body) => leftmost_nts(body, nullable, out),
        Node::Nt(name) => {
            out.insert(name);
        }
    }
}

/// LL(1) validation for one node, with the set of terminals that may
/// follow it threaded down.
fn validate(
    g: &Grammar,
    rule: &str,
    n: &Node,
    follow: &BTreeSet<char>,
) -> Result<(), GrammarError> {
    match n {
        Node::Eps | Node::Chr(_) | Node::Nt(_) => Ok(()),
        Node::Seq(es) => {
            for (i, e) in es.iter().enumerate() {
                let mut item_follow = BTreeSet::new();
                let mut rest_nullable = true;
                for later in &es[i + 1..] {
                    item_follow.extend(g.first_set(later));
                    if !g.node_nullable(later) {
                        rest_nullable = false;
                        break;
                    }
                }
                if rest_nullable {
                    item_follow.extend(follow.iter().copied());
                }
                validate(g, rule, e, &item_follow)?;
            }
            Ok(())
        }
        Node::Alt(branches) => {
            let mut seen: BTreeSet<char> = BTreeSet::new();
            let mut nullable_count = 0usize;
            for b in branches {
                for c in g.first_set(b) {
                    if !seen.insert(c) {
                        return Err(GrammarError::AltConflict {
                            rule: rule.to_string(),
                            terminal: c,
                        });
                    }
                }
                if g.node_nullable(b) {
                    nullable_count += 1;
                }
            }
            if nullable_count > 1 {
                return Err(GrammarError::AltMultipleNullable {
                    rule: rule.to_string(),
                });
            }
            if nullable_count == 1 {
                // The decision "take a branch iff the lookahead is in its
                // FIRST" must not steal characters the empty derivation
                // would leave to the context.
                if let Some(c) = seen.intersection(follow).next() {
                    return Err(GrammarError::AltFollowConflict {
                        rule: rule.to_string(),
                        terminal: *c,
                    });
                }
            }
            for b in branches {
                validate(g, rule, b, follow)?;
            }
            Ok(())
        }
        Node::Star(body) => {
            if g.node_nullable(body) {
                return Err(GrammarError::NullableStarBody {
                    rule: rule.to_string(),
                });
            }
            let firsts = g.first_set(body);
            if let Some(c) = firsts.intersection(follow).next() {
                return Err(GrammarError::StarFollowConflict {
                    rule: rule.to_string(),
                    terminal: *c,
                });
            }
            let mut body_follow = firsts;
            body_follow.extend(follow.iter().copied());
            validate(g, rule, body, &body_follow)
        }
    }
}

/// Builds the complete, self-contained workload source for a grammar: the
/// matcher interpreter plus an entry point with the encoded grammar
/// embedded as a quoted constant. The entry is [`WORKLOAD_ENTRY`] with
/// one dynamic parameter (the input word), so the whole grammar is static
/// under BTA and a `redefine` of the registered source invalidates the
/// derived recognizer through the versioned registry.
pub fn workload_source(g: &Grammar) -> String {
    format!(
        "{}\n(define ({} input) (gm-run (quote {}) input))\n",
        GRAMMAR_INTERP,
        WORKLOAD_ENTRY,
        g.encode()
    )
}

/// Entry-point name of [`workload_source`] programs.
pub const WORKLOAD_ENTRY: &str = "gm-main";

/// Encodes an input string as the word the matcher walks: a list of
/// one-character symbols. Characters outside the terminal set are fine
/// here (they simply never match any `chr` node).
pub fn input_datum(text: &str) -> Datum {
    Datum::list(text.chars().map(Datum::Char))
}

/// An example grammar: identifier-like tokens — a letter, then letters,
/// digits, or underscores.
pub const IDENT_GRAMMAR: &str = r#"
((ident letter (star (alt letter digit _)))
 (letter (alt a b c d e f g x y z))
 (digit (alt 0 1 2 3 4 5 6 7 8 9)))
"#;

/// The adversarial suite of the EXPERIMENTS.md figure: LL(1)-safe
/// grammars whose *inputs* are chosen to hurt — long non-matching
/// prefixes, deep alternation chains, and pathological star nesting.
/// Returns `(name, grammar text, accepted input, rejected input)`.
pub fn adversarial_suite() -> Vec<(&'static str, &'static str, String, String)> {
    let n = 2048;
    vec![
        (
            // A long run of letters that must end in `0`: the reject
            // input fails only at the very last character, after the
            // interpreter has paid a rule lookup and an 8-character
            // decision-set scan per position.
            "long-prefix",
            "((word (star letter) 0)
              (letter (alt a b c d e f g h)))",
            format!("{}0", "abcdefgh".repeat(n / 8)),
            "abcdefgh".repeat(n / 8) + "a",
        ),
        (
            // Deep alternation over nonterminals: every character walks
            // the rule list and a 10-way decision chain; the reject
            // input hits the chain's fall-through on its final
            // character.
            "deep-alt",
            "((word (plus (alt v0 v1 v2 v3 v4 v5 v6 v7 v8 v9)))
              (v0 a) (v1 b) (v2 c) (v3 d) (v4 e)
              (v5 f) (v6 g) (v7 h) (v8 i) (v9 j))",
            "abcdefghij".repeat(n / 10),
            format!("{}z", "abcdefghij".repeat(n / 10)),
        ),
        (
            // Pathological star nesting: ((a* b)* c)-shaped loops
            // through a nonterminal, interleaving on every character.
            "star-nest",
            "((word (star inner) c)
              (inner (star a) b))",
            format!("{}c", "aab".repeat(n / 3)),
            "aab".repeat(n / 3) + "a",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_grammar_parses_and_encodes() {
        let g = parse(IDENT_GRAMMAR).unwrap();
        assert_eq!(g.start(), "ident");
        assert_eq!(g.rule_names(), vec!["ident", "letter", "digit"]);
        let enc = g.encode().to_string();
        assert!(enc.contains("(nt letter)"), "{enc}");
        assert!(enc.contains("star"), "{enc}");
    }

    #[test]
    fn decision_sets_are_first_sets() {
        let g = parse("((word (star a) b))").unwrap();
        let enc = g.encode().to_string();
        // star decision set is FIRST(a) = {a}.
        assert!(enc.contains("(star (#\\a)"), "{enc}");
    }

    #[test]
    fn empty_and_malformed_are_typed_errors() {
        assert_eq!(parse("()").unwrap_err(), GrammarError::Empty);
        assert!(matches!(parse("("), Err(GrammarError::Read(_))));
        assert_eq!(
            parse("((a a)) ((b b))").unwrap_err(),
            GrammarError::NotOneDatum(2)
        );
        assert!(matches!(parse("5"), Err(GrammarError::NotARuleList)));
        assert!(matches!(
            parse("((5 a))"),
            Err(GrammarError::MalformedRule(_))
        ));
        assert!(matches!(
            parse("((word))"),
            Err(GrammarError::MalformedRule(_))
        ));
        assert!(matches!(
            parse("((eps a))"),
            Err(GrammarError::ReservedName(_))
        ));
        assert!(matches!(
            parse("((w a) (w b))"),
            Err(GrammarError::DuplicateRule(_))
        ));
        assert!(matches!(
            parse("((w (star)))"),
            Err(GrammarError::EmptyForm("star"))
        ));
        assert!(matches!(
            parse("((w undefined-thing))"),
            Err(GrammarError::UnknownSymbol(_))
        ));
        assert!(matches!(
            parse("((w !))"),
            Err(GrammarError::BadTerminal('!'))
        ));
    }

    #[test]
    fn left_recursion_is_rejected() {
        assert!(matches!(
            parse("((e e a))"),
            Err(GrammarError::LeftRecursive(_))
        ));
        // Indirect, through a nullable prefix.
        assert!(matches!(
            parse("((e (opt a) f) (f e b))"),
            Err(GrammarError::LeftRecursive(_))
        ));
    }

    #[test]
    fn ll1_conflicts_are_rejected() {
        assert!(matches!(
            parse("((w (alt (seq a b) (seq a c))))"),
            Err(GrammarError::AltConflict { terminal: 'a', .. })
        ));
        assert!(matches!(
            parse("((w (alt (opt a) (opt b))))"),
            Err(GrammarError::AltMultipleNullable { .. })
        ));
        // (opt a) followed by a: the empty branch and the follow collide.
        assert!(matches!(
            parse("((w (opt a) a))"),
            Err(GrammarError::AltFollowConflict { terminal: 'a', .. })
        ));
        assert!(matches!(
            parse("((w (star (opt a))))"),
            Err(GrammarError::NullableStarBody { .. })
        ));
        assert!(matches!(
            parse("((w (star a) a))"),
            Err(GrammarError::StarFollowConflict { terminal: 'a', .. })
        ));
    }

    #[test]
    fn adversarial_suite_parses() {
        for (name, text, _, _) in adversarial_suite() {
            assert!(parse(text).is_ok(), "{name}");
        }
    }

    #[test]
    fn workload_source_is_readable_scheme() {
        let g = parse(IDENT_GRAMMAR).unwrap();
        let src = workload_source(&g);
        let defs = two4one_syntax::reader::read_all(&src).unwrap();
        assert!(defs.len() > 12, "{}", defs.len());
        assert!(src.contains("(define (gm-main input)"));
    }
}
