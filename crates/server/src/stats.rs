//! Serving-layer counters.
//!
//! One [`ServeStats`] cell lives inside each [`SpecService`](crate::SpecService)
//! and is updated from every worker thread; a [`ServeSnapshot`] is a
//! coherent-enough copy for monitoring and tests. `spec_runs` is the
//! load-bearing counter for correctness tests: a warm-cache hit must
//! leave it unchanged, proving the specializer did no work.
//!
//! Since the observability subsystem landed, the cells are
//! [`obs::Counter`] handles registered in the service's private
//! [`obs::MetricsRegistry`] — so the same numbers that feed
//! [`ServeSnapshot`] appear, under `t4o_serve_*` families, in the
//! Prometheus/JSON exposition ([`SpecService::metrics`](crate::SpecService::metrics)).
//! `ServeSnapshot` stays the stable public view.

use std::fmt;

use two4one::obs;

/// Saturating counters maintained by the service (shared across workers),
/// registered as `t4o_serve_*_total` families.
#[derive(Debug, Default)]
pub(crate) struct ServeStats {
    pub(crate) hits: obs::Counter,
    pub(crate) misses: obs::Counter,
    pub(crate) coalesced: obs::Counter,
    pub(crate) evictions: obs::Counter,
    pub(crate) degraded: obs::Counter,
    pub(crate) spec_runs: obs::Counter,
    pub(crate) errors: obs::Counter,
    pub(crate) shed: obs::Counter,
    pub(crate) deadline_exceeded: obs::Counter,
    pub(crate) retried: obs::Counter,
    pub(crate) breaker_open: obs::Counter,
    pub(crate) restored: obs::Counter,
    pub(crate) quarantined: obs::Counter,
    pub(crate) invalidated: obs::Counter,
    pub(crate) stale_dropped: obs::Counter,
    pub(crate) epoch_conflicts: obs::Counter,
    pub(crate) genext_builds: obs::Counter,
}

impl ServeStats {
    /// Counters registered in `registry`, so the service's exposition
    /// shows every family (zero-valued) from construction.
    pub(crate) fn register(registry: &obs::MetricsRegistry) -> Self {
        ServeStats {
            hits: registry.counter("t4o_serve_hits_total"),
            misses: registry.counter("t4o_serve_misses_total"),
            coalesced: registry.counter("t4o_serve_coalesced_total"),
            evictions: registry.counter("t4o_serve_evictions_total"),
            degraded: registry.counter("t4o_serve_degraded_total"),
            spec_runs: registry.counter("t4o_serve_spec_runs_total"),
            errors: registry.counter("t4o_serve_errors_total"),
            shed: registry.counter("t4o_serve_shed_total"),
            deadline_exceeded: registry.counter("t4o_serve_deadline_exceeded_total"),
            retried: registry.counter("t4o_serve_retried_total"),
            breaker_open: registry.counter("t4o_serve_breaker_open_total"),
            restored: registry.counter("t4o_serve_restored_total"),
            quarantined: registry.counter("t4o_serve_quarantined_total"),
            invalidated: registry.counter("t4o_serve_invalidated_total"),
            stale_dropped: registry.counter("t4o_serve_stale_dropped_total"),
            epoch_conflicts: registry.counter("t4o_serve_epoch_conflicts_total"),
            genext_builds: registry.counter("t4o_serve_genext_builds_total"),
        }
    }

    pub(crate) fn bump(counter: &obs::Counter) {
        counter.inc();
    }

    pub(crate) fn add(counter: &obs::Counter, n: u64) {
        counter.add(n);
    }

    pub(crate) fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            evictions: self.evictions.get(),
            degraded: self.degraded.get(),
            spec_runs: self.spec_runs.get(),
            errors: self.errors.get(),
            shed: self.shed.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            retried: self.retried.get(),
            breaker_open: self.breaker_open.get(),
            restored: self.restored.get(),
            quarantined: self.quarantined.get(),
            invalidated: self.invalidated.get(),
            stale_dropped: self.stale_dropped.get(),
            epoch_conflicts: self.epoch_conflicts.get(),
            genext_builds: self.genext_builds.get(),
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Requests answered from the cache (including single-flight waiters
    /// that received the leader's successful result).
    pub hits: u64,
    /// Requests that had to run the specializer and filled the cache.
    pub misses: u64,
    /// Requests that found another worker already specializing the same
    /// key and waited for its result instead of duplicating the work.
    pub coalesced: u64,
    /// Cached entries discarded to stay within the configured capacity
    /// and code budget.
    pub evictions: u64,
    /// Cache fills whose specialization degraded to generic code after a
    /// recoverable resource limit (see `SpecStats::degraded`).
    pub degraded: u64,
    /// Times the specializer actually ran. Warm-cache traffic must not
    /// move this counter.
    pub spec_runs: u64,
    /// Requests that ended in an error (errors are not cached).
    pub errors: u64,
    /// Requests shed at admission because the wait queue was full
    /// (`ServeError::Overloaded`).
    pub shed: u64,
    /// Requests whose per-request deadline fired — while queued, while
    /// coalesced on another leader's flight, or mid-specialization via
    /// cooperative cancellation.
    pub deadline_exceeded: u64,
    /// Fills retried with an escalated budget after a transient limit
    /// (unfold-fuel or memo-cap) degraded the first attempt.
    pub retried: u64,
    /// Requests answered by a tripped circuit breaker with generic
    /// fallback code instead of running the (repeatedly failing)
    /// specialization.
    pub breaker_open: u64,
    /// Cache entries restored from a snapshot file.
    pub restored: u64,
    /// Snapshot records rejected during restore (bad checksum, torn tail,
    /// stale version, undecodable payload).
    pub quarantined: u64,
    /// Cached specializations dropped because their program was
    /// redefined (invalidation via registry backedges).
    pub invalidated: u64,
    /// Snapshot records dropped during restore because their program's
    /// registration no longer matches the live registry — structurally
    /// intact (unlike `quarantined`) but derived from dead source.
    pub stale_dropped: u64,
    /// In-flight fills that finished after their epoch died: the result
    /// was served to the requests that predate the redefinition, but the
    /// publication was tombstoned instead of cached. Also counts
    /// compiled gen-ext builds that outlived their generation — the
    /// artifact served its own fill but was never cached.
    pub epoch_conflicts: u64,
    /// Compiled generating extensions built by the service (one per
    /// registered generation that took at least one cache miss; warm
    /// traffic and rebuild-free fills do not move this).
    pub genext_builds: u64,
}

impl ServeSnapshot {
    /// The `(name, value)` pairs of every counter, in declaration order —
    /// the single source for both renderings below.
    fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("coalesced", self.coalesced),
            ("evictions", self.evictions),
            ("degraded", self.degraded),
            ("spec_runs", self.spec_runs),
            ("errors", self.errors),
            ("shed", self.shed),
            ("deadline_exceeded", self.deadline_exceeded),
            ("retried", self.retried),
            ("breaker_open", self.breaker_open),
            ("restored", self.restored),
            ("quarantined", self.quarantined),
            ("invalidated", self.invalidated),
            ("stale_dropped", self.stale_dropped),
            ("epoch_conflicts", self.epoch_conflicts),
            ("genext_builds", self.genext_builds),
        ]
    }

    /// Renders the snapshot as a JSON object (for `--stats-json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let fields = self.fields();
        for (i, (name, value)) in fields.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": {value}"));
            out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
        }
        out.push('}');
        out
    }
}

/// The one formatter for the human-readable serve-stats line printed by
/// the CLI (`;; serve: jobs=N hits=… …`) — callers must not roll their
/// own `format!` for this.
pub fn serve_stats_line(jobs: usize, snapshot: &ServeSnapshot) -> String {
    format!(";; serve: jobs={jobs} {snapshot}")
}

impl fmt::Display for ServeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let registry = obs::MetricsRegistry::new();
        let s = ServeStats::register(&registry);
        ServeStats::bump(&s.hits);
        ServeStats::bump(&s.hits);
        ServeStats::add(&s.evictions, 3);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.evictions, 3);
        assert_eq!(snap.misses, 0);
        assert!(snap.to_string().contains("hits=2"));
        // The same cells back the registry's exposition.
        let exp = registry.snapshot();
        assert_eq!(exp.counter_value("t4o_serve_hits_total", None), Some(2));
        assert_eq!(
            exp.counter_value("t4o_serve_evictions_total", None),
            Some(3)
        );
    }

    #[test]
    fn counter_at_max_never_wraps() {
        // The overflow-audit satellite: a counter pinned at u64::MAX
        // stays there — no wrap, no panic (also under debug overflow
        // checks, since the adds saturate).
        let s = ServeStats::default();
        ServeStats::add(&s.hits, u64::MAX);
        ServeStats::bump(&s.hits);
        ServeStats::add(&s.hits, 12345);
        assert_eq!(s.snapshot().hits, u64::MAX);
    }

    #[test]
    fn snapshot_json_lists_every_field() {
        let s = ServeStats::default();
        ServeStats::bump(&s.misses);
        let json = s.snapshot().to_json();
        assert!(json.contains("\"misses\": 1"));
        assert!(json.contains("\"quarantined\": 0"));
        assert!(json.contains("\"invalidated\": 0"));
        assert!(json.contains("\"stale_dropped\": 0"));
        assert!(json.contains("\"epoch_conflicts\": 0"));
        assert!(json.contains("\"genext_builds\": 0"));
        assert_eq!(json.matches(':').count(), 17);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
