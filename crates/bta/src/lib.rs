//! Binding-time analysis: Core Scheme + a division → Annotated Core Scheme.
//!
//! The paper's PGG contains "a binding-time analysis, which … can
//! automatically determine a proper staging of computations" (Sec. 1).
//! This crate implements an offline, monovariant BTA in the Similix
//! tradition:
//!
//! 1. a **control-flow analysis** (0-CFA, [`analysis`]) computes which
//!    lambdas and top-level functions can reach each application site;
//! 2. a **binding-time fixpoint** propagates `S ⊑ D` forward through the
//!    program and *demands* backward: a static closure meeting a dynamic
//!    context cannot be lifted, so its lambda becomes dynamic (residual);
//! 3. **memoization points** are chosen Bondorf-style: a call is
//!    residualized-and-memoized iff the callee sits in a recursive
//!    component of the call graph and contains dynamic control, with
//!    explicit per-function overrides;
//! 4. **lift insertion** ([`annotate`]) wraps the outermost static
//!    subexpressions that flow into dynamic contexts.
//!
//! # Example
//!
//! ```
//! use two4one_bta::{bta, Division};
//! use two4one_frontend::frontend;
//! use two4one_syntax::acs::BT;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = frontend(
//!     "(define (power x n)
//!        (if (= n 0) 1 (* x (power x (- n 1)))))",
//! )?;
//! // x dynamic, n static: the classic power example.
//! let aprog = bta(&p, "power", &Division::new([BT::Dynamic, BT::Static]))?;
//! let def = aprog.def(&"power".into()).unwrap();
//! assert_eq!(def.params[0].bt, BT::Dynamic);
//! assert_eq!(def.params[1].bt, BT::Static);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod annotate;

use std::collections::{HashMap, HashSet};
use std::fmt;
use two4one_syntax::acs::{AProgram, CallPolicy, BT};
use two4one_syntax::cs;
use two4one_syntax::limits::{LimitExceeded, Limits};
use two4one_syntax::symbol::Symbol;

/// The binding times of the entry point's parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Division {
    /// One binding time per entry parameter.
    pub params: Vec<BT>,
}

impl Division {
    /// Creates a division from parameter binding times.
    pub fn new(params: impl IntoIterator<Item = BT>) -> Self {
        Division {
            params: params.into_iter().collect(),
        }
    }

    /// The all-dynamic division of `n` parameters — "normal compilation"
    /// mode (the paper's Fig. 8).
    pub fn all_dynamic(n: usize) -> Self {
        Division {
            params: vec![BT::Dynamic; n],
        }
    }

    /// The all-static division of `n` parameters.
    pub fn all_static(n: usize) -> Self {
        Division {
            params: vec![BT::Static; n],
        }
    }
}

/// Tuning knobs for the analysis.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Per-function unfold/memoize overrides (by top-level name).
    pub policy_overrides: HashMap<Symbol, CallPolicy>,
    /// Resource limits; only [`Limits::timeout`] is relevant here (the
    /// fixpoints are finite but can be slow on huge programs).
    pub limits: Limits,
}

/// Errors from the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtaError {
    /// The entry function does not exist.
    NoSuchEntry(Symbol),
    /// The division's arity does not match the entry function.
    DivisionArity {
        /// Entry name.
        entry: Symbol,
        /// Parameter count of the entry.
        expected: usize,
        /// Binding times supplied.
        got: usize,
    },
    /// The program is not alpha-renamed (duplicate binder); run the front
    /// end first.
    NonUniqueBinder(Symbol),
    /// A resource limit was hit (wall-clock deadline of
    /// [`Options::limits`]).
    Limit(LimitExceeded),
}

impl fmt::Display for BtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtaError::NoSuchEntry(e) => write!(f, "no top-level definition `{e}`"),
            BtaError::DivisionArity {
                entry,
                expected,
                got,
            } => write!(
                f,
                "division for `{entry}` has {got} binding time(s), expected {expected}"
            ),
            BtaError::NonUniqueBinder(x) => write!(
                f,
                "binder `{x}` is not unique; binding-time analysis requires \
                 alpha-renamed input (run the front end)"
            ),
            BtaError::Limit(l) => write!(f, "binding-time analysis: {l}"),
        }
    }
}

impl std::error::Error for BtaError {}

/// Runs the analysis with default options.
///
/// # Errors
///
/// See [`BtaError`].
pub fn bta(prog: &cs::Program, entry: &str, division: &Division) -> Result<AProgram, BtaError> {
    bta_with(prog, entry, division, &Options::default())
}

/// Runs the analysis with explicit options.
///
/// # Errors
///
/// See [`BtaError`].
pub fn bta_with(
    prog: &cs::Program,
    entry: &str,
    division: &Division,
    options: &Options,
) -> Result<AProgram, BtaError> {
    let entry_sym = Symbol::new(entry);
    let edef = prog
        .def(&entry_sym)
        .ok_or(BtaError::NoSuchEntry(entry_sym))?;
    if edef.params.len() != division.params.len() {
        return Err(BtaError::DivisionArity {
            entry: entry_sym,
            expected: edef.params.len(),
            got: division.params.len(),
        });
    }
    check_unique_binders(prog)?;
    let mut a = analysis::Analysis::build(prog, &entry_sym, division, options);
    a.run(&options.limits.deadline()).map_err(BtaError::Limit)?;
    Ok(annotate::reconstruct(&a))
}

fn check_unique_binders(prog: &cs::Program) -> Result<(), BtaError> {
    fn add(x: &Symbol, seen: &mut HashSet<Symbol>) -> Result<(), BtaError> {
        if seen.insert(*x) {
            Ok(())
        } else {
            Err(BtaError::NonUniqueBinder(*x))
        }
    }
    fn walk(e: &cs::Expr, seen: &mut HashSet<Symbol>) -> Result<(), BtaError> {
        match e {
            cs::Expr::Const(_) | cs::Expr::Var(_) => Ok(()),
            cs::Expr::Lambda(l) => {
                for p in &l.params {
                    add(p, seen)?;
                }
                walk(&l.body, seen)
            }
            cs::Expr::If(a, b, c) => {
                walk(a, seen)?;
                walk(b, seen)?;
                walk(c, seen)
            }
            cs::Expr::Let(x, rhs, body) => {
                walk(rhs, seen)?;
                add(x, seen)?;
                walk(body, seen)
            }
            cs::Expr::App(f, args) => {
                walk(f, seen)?;
                args.iter().try_for_each(|a| walk(a, seen))
            }
            cs::Expr::PrimApp(_, args) => args.iter().try_for_each(|a| walk(a, seen)),
        }
    }
    let mut seen = HashSet::new();
    for d in &prog.defs {
        for p in &d.params {
            if !seen.insert(*p) {
                return Err(BtaError::NonUniqueBinder(*p));
            }
        }
        walk(&d.body, &mut seen)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_frontend::frontend;
    use two4one_syntax::acs::AExpr;

    fn analyze(src: &str, entry: &str, div: &[BT]) -> AProgram {
        let p = frontend(src).unwrap();
        bta(&p, entry, &Division::new(div.iter().copied())).unwrap()
    }

    fn contains_dynamic_if(e: &AExpr) -> bool {
        match e {
            AExpr::IfD(..) => true,
            AExpr::Const(_) | AExpr::Var(_) => false,
            AExpr::Lift(e) => contains_dynamic_if(e),
            AExpr::Lam(l) | AExpr::LamD(l) => contains_dynamic_if(&l.body),
            AExpr::If(a, b, c) => {
                contains_dynamic_if(a) || contains_dynamic_if(b) || contains_dynamic_if(c)
            }
            AExpr::Let(_, r, b) => contains_dynamic_if(r) || contains_dynamic_if(b),
            AExpr::App(f, args) | AExpr::AppD(f, args) => {
                contains_dynamic_if(f) || args.iter().any(|a| contains_dynamic_if(a))
            }
            AExpr::Prim(_, args) | AExpr::PrimD(_, args) => {
                args.iter().any(|a| contains_dynamic_if(a))
            }
        }
    }

    #[test]
    fn power_classic_division() {
        let a = analyze(
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            "power",
            &[BT::Dynamic, BT::Static],
        );
        let d = a.def(&"power".into()).unwrap();
        // The conditional test (= n 0) is static, so the recursion unfolds.
        assert_eq!(d.policy, CallPolicy::Unfold);
        assert!(!contains_dynamic_if(&d.body));
        // The multiplication is dynamic (x is dynamic).
        assert!(matches!(
            &d.body,
            AExpr::If(..) // static if
        ));
    }

    #[test]
    fn dynamic_test_forces_memoization_of_recursive_fn() {
        let a = analyze(
            "(define (walk xs acc)
               (if (null? xs) acc (walk (cdr xs) (+ acc 1))))",
            "walk",
            &[BT::Dynamic, BT::Dynamic],
        );
        let d = a.def(&"walk".into()).unwrap();
        assert_eq!(d.policy, CallPolicy::Memoize);
        assert!(contains_dynamic_if(&d.body));
        assert_eq!(d.result_bt, BT::Dynamic);
    }

    #[test]
    fn nonrecursive_functions_unfold_even_when_dynamic() {
        let a = analyze(
            "(define (helper x) (if x 1 2))
             (define (main b) (helper b))",
            "main",
            &[BT::Dynamic],
        );
        assert_eq!(a.def(&"helper".into()).unwrap().policy, CallPolicy::Unfold);
    }

    #[test]
    fn static_computation_is_lifted_at_the_outermost_point() {
        let a = analyze(
            "(define (f x n) (+ x (* n n)))",
            "f",
            &[BT::Dynamic, BT::Static],
        );
        let d = a.def(&"f".into()).unwrap();
        // (+ x (* n n)) must become (_+ x (lift (* n n))) — the whole
        // static product lifted, not its leaves.
        let text = d.body.to_string();
        assert!(text.contains("(lift (* n%"), "{text}");
    }

    #[test]
    fn fully_static_entry_body_stays_static() {
        // No lift at the body: the specializer's Tail continuation lifts
        // static results itself, and a syntactic lift here would force
        // recursive unfoldings to residualize (the fib regression).
        let a = analyze("(define (f n) (* n n))", "f", &[BT::Static]);
        let d = a.def(&"f".into()).unwrap();
        assert!(matches!(d.body, AExpr::Prim(..)), "{}", d.body);
    }

    #[test]
    fn all_dynamic_division_residualizes_everything() {
        let a = analyze(
            "(define (f x) (if (null? x) 0 (+ 1 (f (cdr x)))))",
            "f",
            &[BT::Dynamic],
        );
        let d = a.def(&"f".into()).unwrap();
        assert_eq!(d.policy, CallPolicy::Memoize);
        assert!(contains_dynamic_if(&d.body));
    }

    #[test]
    fn lambda_escaping_into_dynamic_context_becomes_dynamic() {
        // The lambda is returned as the (dynamic) result of the entry, so
        // it must be residualized.
        let a = analyze("(define (mk n) (lambda (x) (+ x n)))", "mk", &[BT::Dynamic]);
        let d = a.def(&"mk".into()).unwrap();
        fn has_dynamic_lam(e: &AExpr) -> bool {
            match e {
                AExpr::LamD(_) => true,
                AExpr::Lift(e) => has_dynamic_lam(e),
                AExpr::Let(_, r, b) => has_dynamic_lam(r) || has_dynamic_lam(b),
                AExpr::If(a, b, c) | AExpr::IfD(a, b, c) => {
                    has_dynamic_lam(a) || has_dynamic_lam(b) || has_dynamic_lam(c)
                }
                _ => false,
            }
        }
        assert!(has_dynamic_lam(&d.body), "{}", d.body);
    }

    #[test]
    fn statically_applied_lambda_stays_static() {
        let a = analyze(
            "(define (main n) ((lambda (k) (* k 2)) (+ n 1)))",
            "main",
            &[BT::Static],
        );
        let d = a.def(&"main".into()).unwrap();
        fn count_dynamic_lams(e: &AExpr) -> usize {
            match e {
                AExpr::LamD(_) => 1,
                AExpr::Lift(e) => count_dynamic_lams(e),
                AExpr::Lam(l) => count_dynamic_lams(&l.body),
                AExpr::App(f, args) => {
                    count_dynamic_lams(f)
                        + args.iter().map(|a| count_dynamic_lams(a)).sum::<usize>()
                }
                _ => 0,
            }
        }
        assert_eq!(count_dynamic_lams(&d.body), 0, "{}", d.body);
    }

    #[test]
    fn effectful_prims_are_always_dynamic() {
        let a = analyze(
            "(define (f n) (display (* n n)) (* n 2))",
            "f",
            &[BT::Static],
        );
        let text = a.def(&"f".into()).unwrap().body.to_string();
        assert!(text.contains("_display"), "{text}");
    }

    #[test]
    fn interpreter_shape_gets_classic_annotation() {
        // A miniature interpreter: program static, input dynamic.
        let src = r#"
          (define (run e x)
            (cond ((number? e) e)
                  ((eq? e 'arg) x)
                  ((eq? (car e) 'inc) (+ 1 (run (cadr e) x)))
                  (else (error "bad" e))))
        "#;
        let a = analyze(src, "run", &[BT::Static, BT::Dynamic]);
        let d = a.def(&"run".into()).unwrap();
        // The dispatch on the (static) expression stays static; `run`
        // unfolds because there is no dynamic conditional.
        assert_eq!(d.policy, CallPolicy::Unfold);
        assert_eq!(d.params[0].bt, BT::Static);
        assert_eq!(d.params[1].bt, BT::Dynamic);
    }

    #[test]
    fn policy_override_forces_memo() {
        let p = frontend("(define (id x) x) (define (main d) (id d))").unwrap();
        let mut opts = Options::default();
        opts.policy_overrides
            .insert(Symbol::new("id"), CallPolicy::Memoize);
        let a = bta_with(&p, "main", &Division::new([BT::Dynamic]), &opts).unwrap();
        assert_eq!(a.def(&"id".into()).unwrap().policy, CallPolicy::Memoize);
    }

    #[test]
    fn error_branches_do_not_poison_result_binding_times() {
        // The classic lookup shape: the unreachable `error` branch must not
        // drag the (static) result to dynamic.
        let a = analyze(
            "(define (lookup k names vals)
               (cond ((null? names) (error \"unbound\" k))
                     ((eq? k (car names)) (car vals))
                     (else (lookup k (cdr names) (cdr vals)))))
             (define (main vals) (lookup 'b '(a b) vals))",
            "main",
            &[BT::Dynamic],
        );
        let d = a.def(&"lookup".into()).unwrap();
        // k and names stay static; only vals is dynamic.
        assert_eq!(d.params[0].bt, BT::Static, "{}", d.to_datum());
        assert_eq!(d.params[1].bt, BT::Static, "{}", d.to_datum());
        assert_eq!(d.params[2].bt, BT::Dynamic, "{}", d.to_datum());
        // And lookup unfolds (static control only).
        assert_eq!(d.policy, CallPolicy::Unfold);
    }

    #[test]
    fn fully_diverging_functions_are_handled() {
        let a = analyze(
            "(define (die x) (error \"always\" x))
             (define (main d) (if (null? d) (die 1) 2))",
            "main",
            &[BT::Dynamic],
        );
        // Should annotate without panicking; result is dynamic because of
        // the dynamic test.
        assert_eq!(a.def(&"main".into()).unwrap().result_bt, BT::Dynamic);
    }

    #[test]
    fn errors() {
        let p = frontend("(define (f x) x)").unwrap();
        assert!(matches!(
            bta(&p, "g", &Division::new([BT::Static])),
            Err(BtaError::NoSuchEntry(_))
        ));
        assert!(matches!(
            bta(&p, "f", &Division::new([])),
            Err(BtaError::DivisionArity { .. })
        ));
        // Hand-built program with duplicate binders.
        let dup = cs::parse_program(
            &two4one_syntax::reader::read_all("(define (f x) x) (define (g x) x)").unwrap(),
        )
        .unwrap();
        assert!(matches!(
            bta(&dup, "f", &Division::new([BT::Static])),
            Err(BtaError::NonUniqueBinder(_))
        ));
    }
}
