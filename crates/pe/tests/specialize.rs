//! End-to-end specializer tests: front end → BTA → specialization with
//! both backends, validated against the interpreter and the VM.

use two4one_anf::build::SourceBuilder;
use two4one_bta::{bta, Division};
use two4one_compiler::{compile_program, ObjectBuilder};
use two4one_pe::{specialize, SpecOptions};
use two4one_syntax::acs::BT;
use two4one_syntax::datum::Datum;
use two4one_syntax::reader::read_one;
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Machine, Value};

fn spec_source(src: &str, entry: &str, div: &[BT], statics: &[Datum]) -> two4one_anf::Program {
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, entry, &Division::new(div.iter().copied())).unwrap();
    let (prog, _) = specialize(
        &aprog,
        &Symbol::new(entry),
        statics,
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    prog
}

fn spec_object(src: &str, entry: &str, div: &[BT], statics: &[Datum]) -> two4one_vm::Image {
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, entry, &Division::new(div.iter().copied())).unwrap();
    let (image, _) = specialize(
        &aprog,
        &Symbol::new(entry),
        statics,
        ObjectBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    image.unwrap()
}

fn run_image(image: &two4one_vm::Image, entry: &str, args: &[Datum]) -> Datum {
    let mut m = Machine::load(image);
    let argv = args.iter().map(Value::from).collect();
    m.call_global(&Symbol::new(entry), argv)
        .unwrap()
        .to_datum()
        .unwrap()
}

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

#[test]
fn power_specializes_to_straightline_code() {
    let res = spec_source(POWER, "power", &[BT::Dynamic, BT::Static], &[Datum::Int(5)]);
    // One residual definition, no residual calls (fully unfolded).
    assert_eq!(res.defs.len(), 1);
    let text = res.to_source();
    assert!(
        !text.contains("power%"),
        "unexpected residual call:\n{text}"
    );
    assert!(text.matches('*').count() >= 5, "{text}");
    // Each residual body is valid ANF.
    for d in &res.defs {
        assert!(two4one_anf::cs_is_anf(&d.body.to_cs()), "{}", d.body);
    }
    // Semantics: residual(2) == 32.
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "power", &[Datum::Int(2)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(32)));
}

#[test]
fn power_fused_object_code_runs() {
    let image = spec_object(
        POWER,
        "power",
        &[BT::Dynamic, BT::Static],
        &[Datum::Int(13)],
    );
    assert_eq!(
        run_image(&image, "power", &[Datum::Int(2)]),
        Datum::Int(8192)
    );
    assert_eq!(
        run_image(&image, "power", &[Datum::Int(3)]),
        Datum::Int(1594323)
    );
}

#[test]
fn fusion_theorem_source_then_compile_equals_direct_object() {
    // The central claim of the paper: composing the specializer with the
    // compiler (ObjectBuilder) produces exactly the code one gets by
    // specializing to source and compiling that.
    for (src, entry, div, statics) in [
        (
            POWER,
            "power",
            vec![BT::Dynamic, BT::Static],
            vec![Datum::Int(7)],
        ),
        (
            "(define (walk xs acc) (if (null? xs) acc (walk (cdr xs) (+ acc 1))))",
            "walk",
            vec![BT::Dynamic, BT::Dynamic],
            vec![],
        ),
        (
            "(define (mk n) (lambda (x) (+ x n)))
             (define (use f) (f 10))
             (define (main n d) (use (mk (+ n d))))",
            "main",
            vec![BT::Static, BT::Dynamic],
            vec![Datum::Int(1)],
        ),
    ] {
        let source = spec_source(src, entry, &div, &statics);
        let compiled = compile_program(&source, entry).unwrap();
        let fused = spec_object(src, entry, &div, &statics);
        assert_eq!(
            fused.templates.len(),
            compiled.templates.len(),
            "{entry}: template counts differ"
        );
        for ((n1, t1), (n2, t2)) in fused.templates.iter().zip(&compiled.templates) {
            assert_eq!(n1, n2, "{entry}: order differs");
            assert_eq!(
                t1,
                t2,
                "{entry}: template `{n1}` differs\nfused:\n{}\ncompiled:\n{}\nsource:\n{}",
                t1.disassemble(),
                t2.disassemble(),
                source.to_source(),
            );
        }
    }
}

#[test]
fn memoized_loop_produces_residual_recursion() {
    let src = "(define (walk xs acc) (if (null? xs) acc (walk (cdr xs) (+ acc 1))))";
    let res = spec_source(src, "walk", &[BT::Dynamic, BT::Dynamic], &[]);
    let text = res.to_source();
    // The entry calls the single memoized specialization of itself.
    assert!(text.contains("walk%"), "{text}");
    let image = spec_object(src, "walk", &[BT::Dynamic, BT::Dynamic], &[]);
    let xs = Datum::list((0..100).map(Datum::Int).collect::<Vec<_>>());
    assert_eq!(
        run_image(&image, "walk", &[xs, Datum::Int(0)]),
        Datum::Int(100)
    );
}

#[test]
fn polyvariant_specialization_creates_one_def_per_static_tuple() {
    // f is called with two different static modes: two residual versions.
    let src = "(define (scale mode x)
                 (if (eq? mode 'double) (* x 2) (* x 3)))
               (define (main x)
                 (+ (scale 'double x) (scale 'triple x)))";
    // scale is not recursive, so it unfolds; force memoization to observe
    // polyvariance.
    let p = two4one_frontend::frontend(src).unwrap();
    let mut opts = two4one_bta::Options::default();
    opts.policy_overrides.insert(
        Symbol::new("scale"),
        two4one_syntax::acs::CallPolicy::Memoize,
    );
    let aprog = two4one_bta::bta_with(&p, "main", &Division::new([BT::Dynamic]), &opts).unwrap();
    let (res, stats) = specialize(
        &aprog,
        &Symbol::new("main"),
        &[],
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    assert_eq!(stats.memo_misses, 2, "{}", res.to_source());
    assert_eq!(res.defs.len(), 3);
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(10)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(50)));
}

#[test]
fn memo_cache_reuses_specializations() {
    let src = "(define (walk xs) (if (null? xs) 0 (+ 1 (walk (cdr xs)))))
               (define (main xs ys) (+ (walk xs) (walk ys)))";
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, "main", &Division::new([BT::Dynamic, BT::Dynamic])).unwrap();
    let (_, stats) = specialize(
        &aprog,
        &Symbol::new("main"),
        &[],
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    // Two call sites, one specialization.
    assert_eq!(stats.memo_misses, 1);
    assert!(stats.memo_hits >= 1);
}

#[test]
fn dynamic_lambdas_become_residual_closures() {
    let src = "(define (mk n) (lambda (x) (+ x n)))";
    let res = spec_source(src, "mk", &[BT::Dynamic], &[]);
    let text = res.to_source();
    assert!(text.contains("lambda"), "{text}");
    let image = spec_object(src, "mk", &[BT::Dynamic], &[]);
    let mut m = Machine::load(&image);
    let add3 = m
        .call_global(&Symbol::new("mk"), vec![Value::Int(3)])
        .unwrap();
    let v = m.call_value(add3, vec![Value::Int(4)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(7)));
}

#[test]
fn static_closures_vanish_from_residual_code() {
    let src = "(define (main n x) ((lambda (k) (lambda (y) (+ k y))) (* n n)) x)
               (define (apply2 f a) (f a))
               (define (entry n x) (apply2 ((lambda (k) (lambda (y) (+ k y))) (* n n)) x))";
    let res = spec_source(src, "entry", &[BT::Static, BT::Dynamic], &[Datum::Int(4)]);
    let text = res.to_source();
    // k = 16 is computed statically and inlined; no residual lambda.
    assert!(text.contains("16"), "{text}");
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "entry", &[Datum::Int(10)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(26)));
}

#[test]
fn effects_are_preserved_in_order() {
    let src = "(define (main x)
                 (display \"a\")
                 (display x)
                 (display \"b\")
                 x)";
    let image = spec_object(src, "main", &[BT::Dynamic], &[]);
    let mut m = Machine::load(&image);
    m.call_global(&Symbol::new("main"), vec![Value::Int(7)])
        .unwrap();
    assert_eq!(m.output, "a7b");
}

#[test]
fn static_effects_stay_dynamic() {
    // display of a static value still happens at run time, once per run.
    let src = "(define (main n x) (display n) (+ n x))";
    let res = spec_source(src, "main", &[BT::Static, BT::Dynamic], &[Datum::Int(42)]);
    let text = res.to_source();
    assert!(text.contains("display"), "{text}");
    let (_, out) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(1)]).unwrap();
    assert_eq!(out, "42");
}

#[test]
fn mini_interpreter_compiles_by_specialization() {
    // First Futamura projection in miniature: specializing the interpreter
    // over a static object program yields a compiled version of it.
    let src = r#"
      (define (run e x)
        (cond ((number? e) e)
              ((eq? e 'arg) x)
              ((eq? (car e) 'inc) (+ 1 (run (cadr e) x)))
              ((eq? (car e) 'dbl) (* 2 (run (cadr e) x)))
              (else (error "bad expression" e))))
    "#;
    let prog = read_one("(inc (dbl (inc arg)))").unwrap();
    let res = spec_source(
        src,
        "run",
        &[BT::Static, BT::Dynamic],
        std::slice::from_ref(&prog),
    );
    let text = res.to_source();
    // The interpretive overhead is gone: no eq?, car, or error in residual.
    assert!(!text.contains("car"), "{text}");
    assert!(!text.contains("error"), "{text}");
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "run", &[Datum::Int(5)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(13)));
    // Fused path computes the same function.
    let image = spec_object(src, "run", &[BT::Static, BT::Dynamic], &[prog]);
    assert_eq!(run_image(&image, "run", &[Datum::Int(5)]), Datum::Int(13));
}

#[test]
fn unfold_fuel_stops_static_divergence() {
    let src = "(define (spin x) (spin x)) ";
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, "spin", &Division::new([BT::Static])).unwrap();
    let err = specialize(
        &aprog,
        &Symbol::new("spin"),
        &[Datum::Int(0)],
        SourceBuilder::new(),
        // Strict mode: the fuel overrun must surface as an error rather
        // than degrade to a generic residual version.
        &SpecOptions::strict(two4one_syntax::limits::Limits::default().with_unfold_fuel(64)),
    )
    .unwrap_err();
    assert!(matches!(err, two4one_pe::PeError::UnfoldLimit(_)));
}

#[test]
fn static_arg_count_is_checked() {
    let p = two4one_frontend::frontend(POWER).unwrap();
    let aprog = bta(&p, "power", &Division::new([BT::Dynamic, BT::Static])).unwrap();
    let err = specialize(
        &aprog,
        &Symbol::new("power"),
        &[],
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, two4one_pe::PeError::StaticArgCount { .. }));
}

#[test]
fn residual_equivalence_random_inputs() {
    // residual(d) == source(s, d) over a grid of inputs, for a program
    // mixing static list structure with dynamic values.
    let src = "(define (dot ws xs)
                 (if (null? ws)
                     0
                     (+ (* (car ws) (car xs)) (dot (cdr ws) (cdr xs)))))";
    let weights = read_one("(3 1 4 1 5)").unwrap();
    let cs = two4one_frontend::frontend(src).unwrap();
    let res = spec_source(
        src,
        "dot",
        &[BT::Static, BT::Dynamic],
        std::slice::from_ref(&weights),
    );
    let image = spec_object(
        src,
        "dot",
        &[BT::Static, BT::Dynamic],
        std::slice::from_ref(&weights),
    );
    for trial in 0..10 {
        let xs = Datum::list(
            (0..5)
                .map(|i| Datum::Int(i * 7 + trial))
                .collect::<Vec<_>>(),
        );
        let (expect, _) =
            two4one_interp::run_program(&cs, "dot", &[weights.clone(), xs.clone()]).unwrap();
        let expect = expect.to_datum().unwrap();
        let (got_src, _) =
            two4one_interp::run_program(&res.to_cs(), "dot", std::slice::from_ref(&xs)).unwrap();
        assert_eq!(got_src.to_datum().unwrap(), expect);
        assert_eq!(run_image(&image, "dot", &[xs]), expect);
    }
}

#[test]
fn source_backend_output_is_always_anf() {
    for (src, entry, div, statics) in [
        (
            POWER,
            "power",
            vec![BT::Dynamic, BT::Static],
            vec![Datum::Int(3)],
        ),
        (
            "(define (mk n) (lambda (x) (+ x n)))",
            "mk",
            vec![BT::Dynamic],
            vec![],
        ),
        (
            "(define (walk xs acc) (if (null? xs) acc (walk (cdr xs) (+ acc 1))))",
            "walk",
            vec![BT::Dynamic, BT::Dynamic],
            vec![],
        ),
    ] {
        let res = spec_source(src, entry, &div, &statics);
        for d in &res.defs {
            assert!(two4one_anf::cs_is_anf(&d.body.to_cs()), "{}", d.body);
        }
    }
}
