//! Object-file serialization for [`Image`]s.
//!
//! The point of generating object code is keeping it; this module gives
//! templates a compact, versioned binary encoding so generated code can be
//! written to disk and loaded back without recompilation — the moral
//! equivalent of Scheme 48's heap images for our templates.
//!
//! The format is deliberately simple: a magic/version header, a CRC-32
//! of the payload, then a length-prefixed tree encoding of templates
//! (instructions, constant data, global names, sub-templates). Everything
//! is little-endian; symbols and strings are UTF-8 with `u32` length
//! prefixes.
//!
//! # Integrity
//!
//! Version 2 of the format adds a CRC-32 (IEEE 802.3 polynomial) over the
//! payload, stored right after the version word. [`decode`] verifies it
//! before touching the payload, so a bit-flipped or truncated `.t4o` file
//! is rejected with [`ObjError::BadChecksum`] (or
//! [`ObjError::Truncated`]) instead of being structurally misparsed.
//! Version-1 files (which lack the checksum) and unknown future versions
//! are rejected with [`ObjError::BadVersion`]; regenerate object files
//! with the current toolchain. Decoding additionally validates every
//! length prefix against the bytes actually remaining, so hostile counts
//! cannot trigger huge up-front allocations.

use crate::{Image, Instr, Template};
use std::fmt;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

const MAGIC: &[u8; 8] = b"two4one\0";
/// Current object-file format version. Version 2 added the payload
/// CRC-32; version-1 files are rejected.
const VERSION: u32 = 2;

/// Computes the CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`)
/// of `bytes` — the same function as zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Errors produced when decoding an object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// Not a two4one object file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The payload checksum did not match.
    BadChecksum { stored: u32, computed: u32 },
    /// Input ended prematurely.
    Truncated,
    /// An unknown tag byte.
    BadTag(&'static str, u8),
    /// An unknown primitive name.
    BadPrim(String),
    /// Malformed UTF-8 in a symbol or string.
    BadUtf8,
    /// Trailing bytes after the image.
    TrailingBytes(usize),
    /// Pair or sub-template nesting exceeded the decoder's depth bound.
    TooDeep,
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::BadMagic => write!(f, "not a two4one object file"),
            ObjError::BadVersion(v) => write!(
                f,
                "unsupported object version {v} (this build reads version \
                 {VERSION}; regenerate the file with the current toolchain)"
            ),
            ObjError::BadChecksum { stored, computed } => write!(
                f,
                "object file corrupt: checksum {computed:#010x} does not \
                 match stored {stored:#010x}"
            ),
            ObjError::Truncated => write!(f, "object file truncated"),
            ObjError::BadTag(what, t) => write!(f, "bad {what} tag {t:#x}"),
            ObjError::BadPrim(n) => write!(f, "unknown primitive `{n}`"),
            ObjError::BadUtf8 => write!(f, "malformed UTF-8"),
            ObjError::TrailingBytes(n) => write!(f, "{n} trailing byte(s)"),
            ObjError::TooDeep => write!(f, "object file nesting too deep"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Byte offset of the payload: magic (8) + version (4) + crc (4).
const HEADER_LEN: usize = 16;

/// Serializes an image to bytes.
pub fn encode(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, 0); // checksum placeholder, patched below
    put_sym(&mut out, &image.entry);
    put_u32(&mut out, image.templates.len() as u32);
    for (name, t) in &image.templates {
        put_sym(&mut out, name);
        put_template(&mut out, t);
    }
    let crc = crc32(&out[HEADER_LEN..]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Deserializes an image from bytes.
///
/// # Errors
///
/// Returns an [`ObjError`] on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Image, ObjError> {
    let mut r = Reader {
        bytes,
        pos: 0,
        depth: 0,
    };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(ObjError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(ObjError::BadVersion(version));
    }
    let stored = r.u32()?;
    let computed = crc32(&bytes[HEADER_LEN..]);
    if stored != computed {
        return Err(ObjError::BadChecksum { stored, computed });
    }
    let entry = r.sym()?;
    let n = r.vec_len()?;
    let mut templates = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.sym()?;
        let t = r.template()?;
        templates.push((name, t));
    }
    if r.pos != bytes.len() {
        return Err(ObjError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(Image { templates, entry })
}

// ----- encoding -------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_sym(out: &mut Vec<u8>, s: &Symbol) {
    put_str(out, s.as_str());
}

pub(crate) fn put_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Nil => out.push(0),
        Datum::Unspec => out.push(1),
        Datum::Bool(false) => out.push(2),
        Datum::Bool(true) => out.push(3),
        Datum::Int(n) => {
            out.push(4);
            put_i64(out, *n);
        }
        Datum::Char(c) => {
            out.push(5);
            put_u32(out, *c as u32);
        }
        Datum::Str(s) => {
            out.push(6);
            put_str(out, s);
        }
        Datum::Sym(s) => {
            out.push(7);
            put_sym(out, s);
        }
        Datum::Pair(p) => {
            out.push(8);
            put_datum(out, &p.car);
            put_datum(out, &p.cdr);
        }
    }
}

fn put_instr(out: &mut Vec<u8>, i: &Instr) {
    match i {
        Instr::Const(k) => {
            out.push(0);
            put_u16(out, *k);
        }
        Instr::Global(g) => {
            out.push(1);
            put_u16(out, *g);
        }
        Instr::Local(n) => {
            out.push(2);
            put_u16(out, *n);
        }
        Instr::Captured(n) => {
            out.push(3);
            put_u16(out, *n);
        }
        Instr::Push => out.push(4),
        Instr::Bind => out.push(5),
        Instr::Trim(n) => {
            out.push(6);
            put_u16(out, *n);
        }
        Instr::MakeClosure { template, nfree } => {
            out.push(7);
            put_u16(out, *template);
            put_u16(out, *nfree);
        }
        Instr::Call { nargs } => {
            out.push(8);
            out.push(*nargs);
        }
        Instr::TailCall { nargs } => {
            out.push(9);
            out.push(*nargs);
        }
        Instr::Return => out.push(10),
        Instr::Jump(t) => {
            out.push(11);
            put_u32(out, *t);
        }
        Instr::JumpIfFalse(t) => {
            out.push(12);
            put_u32(out, *t);
        }
        Instr::LocalPush(n) => {
            out.push(14);
            put_u16(out, *n);
        }
        Instr::ConstPush(n) => {
            out.push(15);
            put_u16(out, *n);
        }
        Instr::Prim { prim, nargs } => {
            out.push(13);
            put_str(out, prim.name());
            out.push(*nargs);
        }
        Instr::LocalPrim { local, prim, nargs } => {
            out.push(16);
            put_u16(out, *local);
            put_str(out, prim.name());
            out.push(*nargs);
        }
        Instr::ConstPrim { konst, prim, nargs } => {
            out.push(17);
            put_u16(out, *konst);
            put_str(out, prim.name());
            out.push(*nargs);
        }
        Instr::PrimBranch {
            prim,
            nargs,
            target,
        } => {
            out.push(18);
            put_str(out, prim.name());
            out.push(*nargs);
            put_u32(out, *target);
        }
    }
}

fn put_template(out: &mut Vec<u8>, t: &Template) {
    put_sym(out, &t.name);
    out.push(t.arity);
    put_u16(out, t.nfree);
    put_u32(out, t.code.len() as u32);
    for i in &t.code {
        put_instr(out, i);
    }
    put_u32(out, t.consts.len() as u32);
    for d in &t.consts {
        put_datum(out, d);
    }
    put_u32(out, t.globals.len() as u32);
    for g in &t.globals {
        put_sym(out, g);
    }
    put_u32(out, t.templates.len() as u32);
    for sub in &t.templates {
        put_template(out, sub);
    }
}

// ----- decoding -------------------------------------------------------

/// Maximum nesting of pairs/sub-templates while decoding. Bounds the Rust
/// stack against hostile deeply-nested encodings; real images are nowhere
/// near this deep.
const MAX_DECODE_DEPTH: usize = 8_192;

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader {
            bytes,
            pos: 0,
            depth: 0,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ObjError> {
        if self.pos + n > self.bytes.len() {
            return Err(ObjError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ObjError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ObjError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ObjError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, ObjError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32` element count, rejecting counts larger than the
    /// bytes remaining (every encoded element occupies at least one
    /// byte). This bounds `Vec::with_capacity` by the input size, so a
    /// corrupt count cannot force a huge allocation.
    pub(crate) fn vec_len(&mut self) -> Result<usize, ObjError> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(ObjError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, ObjError> {
        let n = self.vec_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ObjError::BadUtf8)
    }

    pub(crate) fn sym(&mut self) -> Result<Symbol, ObjError> {
        Ok(Symbol::new(&self.str()?))
    }

    pub(crate) fn datum(&mut self) -> Result<Datum, ObjError> {
        Ok(match self.u8()? {
            0 => Datum::Nil,
            1 => Datum::Unspec,
            2 => Datum::Bool(false),
            3 => Datum::Bool(true),
            4 => Datum::Int(self.i64()?),
            5 => {
                let c = self.u32()?;
                Datum::Char(char::from_u32(c).ok_or(ObjError::BadTag("char", 5))?)
            }
            6 => Datum::string(&self.str()?),
            7 => Datum::Sym(self.sym()?),
            8 => {
                self.enter()?;
                let car = self.datum()?;
                let cdr = self.datum()?;
                self.depth -= 1;
                Datum::cons(car, cdr)
            }
            t => return Err(ObjError::BadTag("datum", t)),
        })
    }

    fn instr(&mut self) -> Result<Instr, ObjError> {
        Ok(match self.u8()? {
            0 => Instr::Const(self.u16()?),
            1 => Instr::Global(self.u16()?),
            2 => Instr::Local(self.u16()?),
            3 => Instr::Captured(self.u16()?),
            4 => Instr::Push,
            5 => Instr::Bind,
            6 => Instr::Trim(self.u16()?),
            7 => Instr::MakeClosure {
                template: self.u16()?,
                nfree: self.u16()?,
            },
            8 => Instr::Call { nargs: self.u8()? },
            9 => Instr::TailCall { nargs: self.u8()? },
            10 => Instr::Return,
            11 => Instr::Jump(self.u32()?),
            12 => Instr::JumpIfFalse(self.u32()?),
            13 => {
                let name = self.str()?;
                let prim = Prim::from_name(&name).ok_or(ObjError::BadPrim(name.clone()))?;
                Instr::Prim {
                    prim,
                    nargs: self.u8()?,
                }
            }
            14 => Instr::LocalPush(self.u16()?),
            15 => Instr::ConstPush(self.u16()?),
            16 => {
                let local = self.u16()?;
                let name = self.str()?;
                let prim = Prim::from_name(&name).ok_or(ObjError::BadPrim(name.clone()))?;
                Instr::LocalPrim {
                    local,
                    prim,
                    nargs: self.u8()?,
                }
            }
            17 => {
                let konst = self.u16()?;
                let name = self.str()?;
                let prim = Prim::from_name(&name).ok_or(ObjError::BadPrim(name.clone()))?;
                Instr::ConstPrim {
                    konst,
                    prim,
                    nargs: self.u8()?,
                }
            }
            18 => {
                let name = self.str()?;
                let prim = Prim::from_name(&name).ok_or(ObjError::BadPrim(name.clone()))?;
                Instr::PrimBranch {
                    prim,
                    nargs: self.u8()?,
                    target: self.u32()?,
                }
            }
            t => return Err(ObjError::BadTag("instr", t)),
        })
    }

    pub(crate) fn enter(&mut self) -> Result<(), ObjError> {
        self.depth += 1;
        if self.depth > MAX_DECODE_DEPTH {
            return Err(ObjError::TooDeep);
        }
        Ok(())
    }

    fn template(&mut self) -> Result<Arc<Template>, ObjError> {
        self.enter()?;
        let name = self.sym()?;
        let arity = self.u8()?;
        let nfree = self.u16()?;
        let ncode = self.vec_len()?;
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(self.instr()?);
        }
        let nconsts = self.vec_len()?;
        let mut consts = Vec::with_capacity(nconsts);
        for _ in 0..nconsts {
            consts.push(self.datum()?);
        }
        let nglobals = self.vec_len()?;
        let mut globals = Vec::with_capacity(nglobals);
        for _ in 0..nglobals {
            globals.push(self.sym()?);
        }
        let nsubs = self.vec_len()?;
        let mut templates = Vec::with_capacity(nsubs);
        for _ in 0..nsubs {
            templates.push(self.template()?);
        }
        self.depth -= 1;
        Ok(Arc::new(Template {
            name,
            arity,
            nfree,
            code,
            consts,
            globals,
            templates,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::Machine;

    fn sample_image() -> Image {
        let mut inner = Asm::new(Symbol::new("inner"), 1, 1);
        inner.emit(Instr::Local(0));
        inner.emit(Instr::Push);
        inner.emit(Instr::Captured(0));
        inner.emit(Instr::Push);
        inner.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        inner.emit(Instr::Return);
        let inner_t = inner.finish().unwrap();

        let mut outer = Asm::new(Symbol::new("mk"), 1, 0);
        let ti = outer.template_index(inner_t).unwrap();
        let label = outer.make_label();
        outer.emit(Instr::Local(0));
        outer.emit_jump_if_false(label);
        outer.attach_label(label);
        let k = outer
            .const_index(&Datum::list([Datum::Int(1), Datum::sym("two")]))
            .unwrap();
        outer.emit(Instr::Const(k)); // exercises pair/symbol encoding
        outer.emit(Instr::Local(0));
        outer.emit(Instr::Push);
        outer.emit(Instr::MakeClosure {
            template: ti,
            nfree: 1,
        });
        outer.emit(Instr::Return);
        Image {
            templates: vec![(Symbol::new("mk"), outer.finish().unwrap())],
            entry: Symbol::new("mk"),
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let image = sample_image();
        let bytes = encode(&image);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.entry, image.entry);
        assert_eq!(back.templates.len(), image.templates.len());
        for ((n1, t1), (n2, t2)) in image.templates.iter().zip(&back.templates) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn superinstruction_tags_roundtrip() {
        // Every fused instruction (tags 14–18) must survive a round trip,
        // including the primitive name encoding and the branch target.
        let t = Arc::new(Template {
            name: Symbol::new("fused"),
            arity: 1,
            nfree: 0,
            code: vec![
                Instr::LocalPush(0),
                Instr::ConstPush(0),
                Instr::LocalPrim {
                    local: 0,
                    prim: Prim::EqP,
                    nargs: 2,
                },
                Instr::ConstPrim {
                    konst: 0,
                    prim: Prim::Add,
                    nargs: 2,
                },
                Instr::PrimBranch {
                    prim: Prim::NullP,
                    nargs: 1,
                    target: 6,
                },
                Instr::Return,
                Instr::Const(0),
                Instr::Return,
            ],
            consts: vec![Datum::Int(1)],
            globals: vec![],
            templates: vec![],
        });
        let image = Image {
            templates: vec![(Symbol::new("fused"), t)],
            entry: Symbol::new("fused"),
        };
        let back = decode(&encode(&image)).unwrap();
        assert_eq!(back.templates[0].1, image.templates[0].1);
    }

    #[test]
    fn symbols_travel_as_names_not_intern_ids() {
        // Object files written before the interner change (and by other
        // processes, whose interners assign different ids) must still
        // decode: the wire format stores symbol *names*. Two checks:
        // the raw bytes literally contain the names, and decoding after
        // the interner has grown (shifting any would-be id mapping)
        // resolves the same symbols.
        let image = sample_image();
        let bytes = encode(&image);
        for name in ["mk", "inner", "two"] {
            assert!(
                bytes.windows(name.len()).any(|w| w == name.as_bytes()),
                "name `{name}` not found in encoded bytes"
            );
        }
        // Grow the interner between encode and decode; ids for any fresh
        // name now differ from what an id-based format would expect.
        for i in 0..64 {
            let _ = Symbol::new(&format!("objfile-compat-shift-{i}"));
        }
        let back = decode(&bytes).unwrap();
        assert_eq!(back.entry.as_str(), "mk");
        assert_eq!(back.templates[0].0.as_str(), "mk");
        assert_eq!(back.templates[0].1.templates[0].name.as_str(), "inner");
    }

    #[test]
    fn decoded_images_run() {
        let image = sample_image();
        let back = decode(&encode(&image)).unwrap();
        let mut m = Machine::load(&back);
        let f = m
            .call_global(&Symbol::new("mk"), vec![crate::Value::Int(5)])
            .unwrap();
        let v = m.call_value(f, vec![crate::Value::Int(2)]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(7)));
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let image = sample_image();
        let bytes = encode(&image);
        assert_eq!(
            decode(b"not an object file").unwrap_err(),
            ObjError::BadMagic
        );
        // Truncation and appended bytes both change the payload the CRC
        // covers, so they surface as checksum failures.
        assert!(matches!(
            decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            ObjError::BadChecksum { .. }
        ));
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            decode(&extra).unwrap_err(),
            ObjError::BadChecksum { .. }
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            decode(&wrong_version).unwrap_err(),
            ObjError::BadVersion(99)
        );
    }

    #[test]
    fn checksum_catches_payload_bit_flips() {
        let bytes = encode(&sample_image());
        for pos in [HEADER_LEN, HEADER_LEN + 7, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            assert!(
                matches!(decode(&flipped).unwrap_err(), ObjError::BadChecksum { .. }),
                "flip at {pos} not caught"
            );
        }
    }

    #[test]
    fn version_1_files_are_rejected_with_guidance() {
        let mut bytes = encode(&sample_image());
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err, ObjError::BadVersion(1));
        let msg = err.to_string();
        assert!(msg.contains("version 1"), "{msg}");
        assert!(msg.contains("regenerate"), "{msg}");
    }

    #[test]
    fn huge_counts_do_not_allocate() {
        // A payload claiming u32::MAX templates must be rejected by the
        // length-vs-remaining-bytes check, not attempted.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, 0); // checksum placeholder
        put_sym(&mut out, &Symbol::new("main"));
        put_u32(&mut out, u32::MAX); // template count
        let crc = crc32(&out[HEADER_LEN..]);
        out[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&out).unwrap_err(), ObjError::Truncated);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
