//! The table of primitive operations.
//!
//! Primitives are shared by every engine in the workspace: the tree-walking
//! interpreter, the byte-code VM, and the partial evaluator (which applies
//! *pure* primitives to static values at specialization time). The semantics
//! live in [`crate::value::apply_prim`]; this module is the table: names,
//! arities, and effect/staging classification.

use std::fmt;

/// A primitive operation of the core language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants mirror their Scheme names
pub enum Prim {
    // arithmetic
    Add,
    Sub,
    Mul,
    Quotient,
    Remainder,
    Modulo,
    Abs,
    Min,
    Max,
    // numeric comparison
    NumEq,
    Lt,
    Le,
    Gt,
    Ge,
    ZeroP,
    // equality
    EqP,
    EqvP,
    EqualP,
    // booleans
    Not,
    // pairs and lists
    Cons,
    Car,
    Cdr,
    PairP,
    NullP,
    List,
    Append,
    Length,
    Reverse,
    ListRef,
    Memq,
    Member,
    Assq,
    Assoc,
    // type predicates
    SymbolP,
    NumberP,
    StringP,
    BooleanP,
    CharP,
    ProcedureP,
    ListP,
    // strings and symbols
    SymbolToString,
    StringToSymbol,
    StringAppend,
    StringLength,
    NumberToString,
    StringEqualP,
    // characters
    CharToInteger,
    IntegerToChar,
    // effects and I/O
    Display,
    Write,
    Newline,
    Error,
    // boxes (introduced by assignment elimination; never written by users)
    BoxNew,
    BoxRef,
    BoxSet,
}

/// The number of arguments a primitive accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` arguments.
    Exact(usize),
    /// At least `n` arguments.
    AtLeast(usize),
}

impl Arity {
    /// Whether `n` arguments satisfy this arity.
    pub fn admits(self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arity::Exact(n) => write!(f, "{n}"),
            Arity::AtLeast(n) => write!(f, "at least {n}"),
        }
    }
}

/// Table row: `(variant, scheme name, arity, pure)`.
const TABLE: &[(Prim, &str, Arity, bool)] = &[
    (Prim::Add, "+", Arity::AtLeast(0), true),
    (Prim::Sub, "-", Arity::AtLeast(1), true),
    (Prim::Mul, "*", Arity::AtLeast(0), true),
    (Prim::Quotient, "quotient", Arity::Exact(2), true),
    (Prim::Remainder, "remainder", Arity::Exact(2), true),
    (Prim::Modulo, "modulo", Arity::Exact(2), true),
    (Prim::Abs, "abs", Arity::Exact(1), true),
    (Prim::Min, "min", Arity::AtLeast(1), true),
    (Prim::Max, "max", Arity::AtLeast(1), true),
    (Prim::NumEq, "=", Arity::AtLeast(2), true),
    (Prim::Lt, "<", Arity::AtLeast(2), true),
    (Prim::Le, "<=", Arity::AtLeast(2), true),
    (Prim::Gt, ">", Arity::AtLeast(2), true),
    (Prim::Ge, ">=", Arity::AtLeast(2), true),
    (Prim::ZeroP, "zero?", Arity::Exact(1), true),
    (Prim::EqP, "eq?", Arity::Exact(2), true),
    (Prim::EqvP, "eqv?", Arity::Exact(2), true),
    (Prim::EqualP, "equal?", Arity::Exact(2), true),
    (Prim::Not, "not", Arity::Exact(1), true),
    (Prim::Cons, "cons", Arity::Exact(2), true),
    (Prim::Car, "car", Arity::Exact(1), true),
    (Prim::Cdr, "cdr", Arity::Exact(1), true),
    (Prim::PairP, "pair?", Arity::Exact(1), true),
    (Prim::NullP, "null?", Arity::Exact(1), true),
    (Prim::List, "list", Arity::AtLeast(0), true),
    (Prim::Append, "append", Arity::AtLeast(0), true),
    (Prim::Length, "length", Arity::Exact(1), true),
    (Prim::Reverse, "reverse", Arity::Exact(1), true),
    (Prim::ListRef, "list-ref", Arity::Exact(2), true),
    (Prim::Memq, "memq", Arity::Exact(2), true),
    (Prim::Member, "member", Arity::Exact(2), true),
    (Prim::Assq, "assq", Arity::Exact(2), true),
    (Prim::Assoc, "assoc", Arity::Exact(2), true),
    (Prim::SymbolP, "symbol?", Arity::Exact(1), true),
    (Prim::NumberP, "number?", Arity::Exact(1), true),
    (Prim::StringP, "string?", Arity::Exact(1), true),
    (Prim::BooleanP, "boolean?", Arity::Exact(1), true),
    (Prim::CharP, "char?", Arity::Exact(1), true),
    (Prim::ProcedureP, "procedure?", Arity::Exact(1), true),
    (Prim::ListP, "list?", Arity::Exact(1), true),
    (
        Prim::SymbolToString,
        "symbol->string",
        Arity::Exact(1),
        true,
    ),
    (
        Prim::StringToSymbol,
        "string->symbol",
        Arity::Exact(1),
        true,
    ),
    (Prim::StringAppend, "string-append", Arity::AtLeast(0), true),
    (Prim::StringLength, "string-length", Arity::Exact(1), true),
    (
        Prim::NumberToString,
        "number->string",
        Arity::Exact(1),
        true,
    ),
    (Prim::StringEqualP, "string=?", Arity::Exact(2), true),
    (Prim::CharToInteger, "char->integer", Arity::Exact(1), true),
    (Prim::IntegerToChar, "integer->char", Arity::Exact(1), true),
    (Prim::Display, "display", Arity::Exact(1), false),
    (Prim::Write, "write", Arity::Exact(1), false),
    (Prim::Newline, "newline", Arity::Exact(0), false),
    (Prim::Error, "error", Arity::AtLeast(1), false),
    (Prim::BoxNew, "box", Arity::Exact(1), false),
    (Prim::BoxRef, "unbox", Arity::Exact(1), false),
    (Prim::BoxSet, "set-box!", Arity::Exact(2), false),
];

impl Prim {
    /// All primitives, in table order.
    pub fn all() -> impl Iterator<Item = Prim> {
        TABLE.iter().map(|row| row.0)
    }

    /// Looks a primitive up by its Scheme name.
    pub fn from_name(name: &str) -> Option<Prim> {
        TABLE.iter().find(|row| row.1 == name).map(|row| row.0)
    }

    /// The primitive's Scheme name.
    pub fn name(self) -> &'static str {
        self.row().1
    }

    /// The primitive's arity.
    pub fn arity(self) -> Arity {
        self.row().2
    }

    /// Pure primitives may be evaluated at specialization time when all
    /// arguments are static; impure ones (`display`, `error`, boxes, …) are
    /// always residualized.
    pub fn is_pure(self) -> bool {
        self.row().3
    }

    /// Total primitives can neither fault nor have effects for *any*
    /// argument values (of the right count): constructors and type
    /// predicates. Only these may be dead-code-eliminated without changing
    /// failure behaviour.
    pub fn is_total(self) -> bool {
        matches!(
            self,
            Prim::Cons
                | Prim::PairP
                | Prim::NullP
                | Prim::EqP
                | Prim::EqvP
                | Prim::EqualP
                | Prim::Not
                | Prim::List
                | Prim::SymbolP
                | Prim::NumberP
                | Prim::StringP
                | Prim::BooleanP
                | Prim::CharP
                | Prim::ProcedureP
                | Prim::ListP
        )
    }

    fn row(self) -> &'static (Prim, &'static str, Arity, bool) {
        TABLE
            .iter()
            .find(|row| row.0 == self)
            .expect("every Prim variant has a table row")
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_names() {
        for p in Prim::all() {
            assert_eq!(Prim::from_name(p.name()), Some(p), "{p:?}");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert_eq!(Prim::from_name("call/cc"), None);
        assert_eq!(Prim::from_name(""), None);
    }

    #[test]
    fn arities() {
        assert!(Prim::Add.arity().admits(0));
        assert!(Prim::Add.arity().admits(5));
        assert!(!Prim::Sub.arity().admits(0));
        assert!(Prim::Cons.arity().admits(2));
        assert!(!Prim::Cons.arity().admits(3));
        assert_eq!(Prim::Car.arity(), Arity::Exact(1));
    }

    #[test]
    fn purity_classification() {
        assert!(Prim::Add.is_pure());
        assert!(Prim::Assq.is_pure());
        assert!(!Prim::Display.is_pure());
        assert!(!Prim::Error.is_pure());
        assert!(!Prim::BoxSet.is_pure());
    }

    #[test]
    fn display_prints_scheme_name() {
        assert_eq!(Prim::NumEq.to_string(), "=");
        assert_eq!(Prim::SymbolToString.to_string(), "symbol->string");
    }
}
