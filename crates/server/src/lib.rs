//! A concurrent specialization service over the two4one engine.
//!
//! The paper's economics — run-time code generation cheap enough to pay
//! for itself after a handful of runs — only materialize in a serving
//! system if identical requests share one specialization. [`SpecService`]
//! provides exactly that: a sharded, capacity-bounded cache of residual
//! [`Image`]s keyed by *(program, entry, static arguments)*, with
//! single-flight deduplication of concurrent misses and a bounded pool of
//! large-stack workers for batch traffic.
//!
//! # Quick start
//!
//! ```
//! use two4one::{Division, Pgg, reader, BT};
//! use two4one_server::{SpecRequest, SpecService};
//!
//! let pgg = Pgg::new();
//! let program = pgg.parse("(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))")?;
//! let ext = pgg.cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))?;
//!
//! let service = SpecService::new();
//! let five = reader::read_one("5")?;
//! let cold = service.specialize(&ext, std::slice::from_ref(&five))?;
//! let warm = service.specialize(&ext, std::slice::from_ref(&five))?;
//! // Same residual object code, shared — not re-specialized, not copied.
//! assert!(std::sync::Arc::ptr_eq(&cold.image, &warm.image));
//! assert_eq!(service.stats().spec_runs, 1);
//!
//! // Batch API: four workers drain the request list in parallel.
//! let reqs: Vec<SpecRequest> = (1..=8)
//!     .map(|n| SpecRequest::new(ext.clone(), vec![two4one::Datum::Int(n)]))
//!     .collect();
//! for r in service.specialize_many(&reqs, 4) {
//!     r?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # What is shared, what is per-request
//!
//! The service owns only the cache and its counters. Each specialization
//! runs on its own large-stack thread with a private specializer state
//! (memo tables, gensym, fuel), so requests never contend except on the
//! shard mutex for the few microseconds of a lookup or fill. Results are
//! handed out as `Arc<SpecOutcome>`: a warm hit is one shard-mutex
//! acquisition and one atomic refcount increment.

#![warn(missing_docs)]

mod cache;
mod stats;

pub use stats::ServeSnapshot;

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cache::{lock, Entry, Flight, Key, Shard, Slot};
use stats::ServeStats;
use two4one::{Datum, Error, GenExt, Image, Limits, SpecStats};
use two4one_syntax::stack::DEFAULT_STACK_BYTES;

/// What every serving entry point returns for one request.
pub type ServeResult = Result<Arc<SpecOutcome>, ServeError>;

/// Errors returned by the service.
#[derive(Debug)]
pub enum ServeError {
    /// The specialization pipeline failed; this requester led the flight
    /// and holds the original error.
    Spec(Error),
    /// Another requester led the flight for the same key and failed; the
    /// leader's error is shared as a rendered message (engine errors are
    /// not cloneable).
    Shared(String),
    /// A worker thread could not be spawned.
    Spawn(String),
    /// A worker thread died without reporting a result. The engine
    /// catches panics at its facade, so this indicates a bug.
    Worker(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::Shared(msg) => write!(f, "shared specialization failed: {msg}"),
            ServeError::Spawn(msg) => write!(f, "cannot spawn worker: {msg}"),
            ServeError::Worker(msg) => write!(f, "worker died: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// A finished specialization: the residual object code and the
/// specializer's own statistics from the run that produced it.
///
/// Outcomes are shared (`Arc`) between the cache and all requesters, and
/// the [`Image`] itself holds its templates behind `Arc`, so a cache hit
/// costs no deep copy anywhere.
#[derive(Debug)]
pub struct SpecOutcome {
    /// The residual program as loadable object code.
    pub image: Arc<Image>,
    /// Statistics from the specializer run that built `image`.
    pub stats: SpecStats,
}

impl SpecOutcome {
    /// Code size of the residual image, in instructions.
    pub fn code_size(&self) -> usize {
        self.image.code_size()
    }
}

/// One unit of batch work for [`SpecService::specialize_many`].
#[derive(Debug, Clone)]
pub struct SpecRequest {
    /// The generating extension to apply.
    pub ext: GenExt,
    /// Static arguments, one per `BT::S` slot of the division.
    pub statics: Vec<Datum>,
}

impl SpecRequest {
    /// Creates a request.
    pub fn new(ext: GenExt, statics: Vec<Datum>) -> Self {
        SpecRequest { ext, statics }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of independent cache shards (lock granularity). Clamped to
    /// at least 1.
    pub shards: usize,
    /// Maximum cached entries across all shards.
    pub max_entries: usize,
    /// Limit record; its `code_cap` bounds the *total* residual code the
    /// cache may hold (LRU-ish eviction keeps the cache under it).
    pub limits: Limits,
    /// Stack size for specialization workers.
    pub stack_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            max_entries: 1024,
            limits: Limits::default(),
            stack_bytes: DEFAULT_STACK_BYTES,
        }
    }
}

/// A concurrent, caching specialization service. See the crate docs for
/// an overview and example.
#[derive(Debug)]
pub struct SpecService {
    shards: Vec<Mutex<Shard>>,
    per_shard_entries: usize,
    per_shard_code: Option<usize>,
    stack_bytes: usize,
    ticket: AtomicU64,
    stats: ServeStats,
}

impl Default for SpecService {
    fn default() -> Self {
        SpecService::new()
    }
}

impl SpecService {
    /// A service with [`ServeConfig::default`].
    pub fn new() -> Self {
        SpecService::with_config(ServeConfig::default())
    }

    /// A service with explicit configuration.
    pub fn with_config(config: ServeConfig) -> Self {
        let nshards = config.shards.max(1);
        let shards = (0..nshards).map(|_| Mutex::new(Shard::default())).collect();
        SpecService {
            shards,
            per_shard_entries: config.max_entries.div_ceil(nshards).max(1),
            per_shard_code: config.limits.code_cap.map(|c| c.div_ceil(nshards).max(1)),
            stack_bytes: config.stack_bytes,
            ticket: AtomicU64::new(0),
            stats: ServeStats::default(),
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeSnapshot {
        self.stats.snapshot()
    }

    /// Number of `Ready` entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Specializes `ext` to `statics`, answering from the cache when the
    /// identical request has been served before. Concurrent misses for
    /// the same key are deduplicated: one requester runs the specializer
    /// (on a dedicated large-stack thread), the rest wait and share its
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates specialization failures ([`ServeError::Spec`] for the
    /// leading requester, [`ServeError::Shared`] for coalesced waiters).
    /// Errors are never cached: the next request for the key retries.
    pub fn specialize(&self, ext: &GenExt, statics: &[Datum]) -> ServeResult {
        self.serve(ext, statics, true)
    }

    /// Runs a batch of requests over a bounded pool of `jobs` large-stack
    /// worker threads, returning one result per request, in order.
    /// Identical requests inside (or across) batches are deduplicated by
    /// the cache exactly as in [`SpecService::specialize`].
    pub fn specialize_many(&self, requests: &[SpecRequest], jobs: usize) -> Vec<ServeResult> {
        let jobs = jobs.max(1).min(requests.len().max(1));
        if jobs == 1 {
            return requests
                .iter()
                .map(|r| self.specialize(&r.ext, &r.statics))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<ServeResult>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let mut spawn_error: Option<String> = None;
        std::thread::scope(|scope| {
            let mut workers = 0;
            for w in 0..jobs {
                let spawned = std::thread::Builder::new()
                    .name(format!("two4one-serve-{w}"))
                    .stack_size(self.stack_bytes)
                    .spawn_scoped(scope, || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        // Workers already run on big stacks, so serve
                        // misses inline instead of re-spawning.
                        let r = self.serve(&req.ext, &req.statics, false);
                        if let Some(slot) = results.get(i) {
                            *lock(slot) = Some(r);
                        }
                    });
                match spawned {
                    Ok(_) => workers += 1,
                    Err(e) => spawn_error = Some(e.to_string()),
                }
            }
            if workers == 0 {
                // Degenerate fallback: no pool, serve sequentially (each
                // miss still gets its own large-stack thread).
                for (req, slot) in requests.iter().zip(&results) {
                    *lock(slot) = Some(self.specialize(&req.ext, &req.statics));
                }
            }
        });
        results
            .into_iter()
            .map(|slot| {
                lock(&slot).take().unwrap_or_else(|| {
                    Err(match &spawn_error {
                        Some(msg) => ServeError::Spawn(msg.clone()),
                        None => ServeError::Worker("result never delivered".to_string()),
                    })
                })
            })
            .collect()
    }

    /// Cache lookup / single-flight fill. `spawn_stack` selects whether a
    /// miss runs on a fresh large-stack thread (`true`, for callers on an
    /// ordinary stack) or inline (`false`, for pool workers that already
    /// have one).
    fn serve(&self, ext: &GenExt, statics: &[Datum], spawn_stack: bool) -> ServeResult {
        let key = request_key(ext, statics);
        let shard = &self.shards[(key.digest as usize) % self.shards.len()];

        enum Plan {
            Hit(Arc<SpecOutcome>),
            Wait(Arc<Flight>),
            Lead(Arc<Flight>),
        }

        let plan = {
            let mut guard = lock(shard);
            match guard.map.get_mut(&key) {
                Some(Slot::Ready(entry)) => {
                    entry.last_access = self.ticket.fetch_add(1, Ordering::Relaxed);
                    ServeStats::bump(&self.stats.hits);
                    Plan::Hit(entry.outcome.clone())
                }
                Some(Slot::InFlight(flight)) => Plan::Wait(flight.clone()),
                None => {
                    let flight = Arc::new(Flight::default());
                    guard
                        .map
                        .insert(key.clone(), Slot::InFlight(flight.clone()));
                    Plan::Lead(flight)
                }
            }
        };

        match plan {
            Plan::Hit(outcome) => Ok(outcome),
            Plan::Wait(flight) => {
                ServeStats::bump(&self.stats.coalesced);
                match flight.wait() {
                    Ok(outcome) => {
                        ServeStats::bump(&self.stats.hits);
                        Ok(outcome)
                    }
                    Err(msg) => {
                        ServeStats::bump(&self.stats.errors);
                        Err(ServeError::Shared(msg))
                    }
                }
            }
            Plan::Lead(flight) => {
                let result = if spawn_stack {
                    run_on_stack(self.stack_bytes, || {
                        ext.specialize_object_with_stats(statics)
                    })
                } else {
                    Ok(ext.specialize_object_with_stats(statics))
                };
                self.finish_flight(&key, shard, &flight, result)
            }
        }
    }

    /// Publishes the leader's result: fills the cache on success, removes
    /// the in-flight slot on failure, and wakes waiters either way.
    fn finish_flight(
        &self,
        key: &Key,
        shard: &Mutex<Shard>,
        flight: &Flight,
        result: Result<Result<(Image, SpecStats), Error>, ServeError>,
    ) -> ServeResult {
        match result {
            Ok(Ok((image, spec_stats))) => {
                let outcome = Arc::new(SpecOutcome {
                    image: Arc::new(image),
                    stats: spec_stats,
                });
                let size = outcome.code_size().max(1);
                let evicted = {
                    let mut guard = lock(shard);
                    guard.map.insert(
                        key.clone(),
                        Slot::Ready(Entry {
                            outcome: outcome.clone(),
                            last_access: self.ticket.fetch_add(1, Ordering::Relaxed),
                            size,
                        }),
                    );
                    guard.code_size += size;
                    guard.evict_to(self.per_shard_entries, self.per_shard_code)
                };
                ServeStats::bump(&self.stats.misses);
                ServeStats::bump(&self.stats.spec_runs);
                ServeStats::add(&self.stats.evictions, evicted);
                if outcome.stats.degraded() {
                    ServeStats::bump(&self.stats.degraded);
                }
                flight.complete(Ok(outcome.clone()));
                Ok(outcome)
            }
            Ok(Err(engine_err)) => {
                lock(shard).map.remove(key);
                ServeStats::bump(&self.stats.spec_runs);
                ServeStats::bump(&self.stats.errors);
                flight.complete(Err(engine_err.to_string()));
                Err(ServeError::Spec(engine_err))
            }
            Err(serve_err) => {
                lock(shard).map.remove(key);
                ServeStats::bump(&self.stats.errors);
                flight.complete(Err(serve_err.to_string()));
                Err(serve_err)
            }
        }
    }
}

/// Builds the full cache key for a request: the rendered annotated
/// program plus its specialization options (two extensions differing only
/// in, say, fuel must not share residual code), the entry name, and the
/// rendered static arguments.
fn request_key(ext: &GenExt, statics: &[Datum]) -> Key {
    let program = format!("{}\u{0}{:?}", ext.annotated(), ext.options());
    let rendered: Vec<String> = statics.iter().map(|d| d.to_string()).collect();
    Key::new(&program, ext.entry().as_str(), &rendered.join(" "))
}

/// Runs `f` on a dedicated thread with `bytes` of stack, for the deeply
/// recursive specializer phases.
fn run_on_stack<T: Send>(bytes: usize, f: impl FnOnce() -> T + Send) -> Result<T, ServeError> {
    std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name("two4one-spec".into())
            .stack_size(bytes)
            .spawn_scoped(scope, f)
            .map_err(|e| ServeError::Spawn(e.to_string()))?;
        handle
            .join()
            .map_err(|_| ServeError::Worker("specialization worker panicked".to_string()))
    })
}

// The service is shared by reference across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpecService>();
    assert_send_sync::<SpecOutcome>();
    assert_send_sync::<SpecRequest>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<ServeSnapshot>();
};
