//! The fusion theorem (Sec. 5.4), tested exactly:
//!
//! `cata_CS(ev_C)(cata_ACS(ev_S)(M))  ==  cata_ACS(ev_{C∘S})(M)`
//!
//! i.e. specializing to *source* and then compiling that source produces
//! byte-for-byte the same templates as specializing straight to *object
//! code* through the fused combinators. Both specializer runs are
//! deterministic (same gensym discipline), so the comparison is structural
//! template equality, not just behavioral.

use two4one::{compile_program, with_stack, Datum, Division, Pgg, BT};

fn d(s: &str) -> Datum {
    two4one::reader::read_one(s).unwrap()
}

struct Case {
    name: &'static str,
    src: &'static str,
    entry: &'static str,
    division: Vec<BT>,
    statics: Vec<Datum>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "power",
            src: "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            entry: "power",
            division: vec![BT::Dynamic, BT::Static],
            statics: vec![Datum::Int(9)],
        },
        Case {
            name: "all-dynamic-loop",
            src: "(define (sum xs acc) (if (null? xs) acc (sum (cdr xs) (+ acc (car xs)))))",
            entry: "sum",
            division: vec![BT::Dynamic, BT::Dynamic],
            statics: vec![],
        },
        Case {
            name: "closures",
            src: "(define (compose f g) (lambda (x) (f (g x))))
                  (define (main a)
                    ((compose (lambda (u) (+ u 1)) (lambda (v) (* v 2))) a))",
            entry: "main",
            division: vec![BT::Dynamic],
            statics: vec![],
        },
        Case {
            name: "matcher",
            src: two4one_langs::classics::MATCHER,
            entry: "match",
            division: vec![BT::Static, BT::Dynamic],
            statics: vec![d("(a b c)")],
        },
        Case {
            name: "effects",
            src: "(define (main n x) (display n) (newline) (+ (* n n) x))",
            entry: "main",
            division: vec![BT::Static, BT::Dynamic],
            statics: vec![Datum::Int(6)],
        },
        Case {
            name: "nested-conditionals",
            src: "(define (classify a b c)
                    (if a (if b 'ab (if c 'ac 'a)) (if b 'b (if c 'c 'none))))",
            entry: "classify",
            division: vec![BT::Dynamic, BT::Dynamic, BT::Dynamic],
            statics: vec![],
        },
    ]
}

#[test]
fn fused_object_code_is_identical_to_compiled_residual_source() {
    with_stack(|| {
        let pgg = Pgg::new();
        for case in cases() {
            let p = pgg.parse(case.src).unwrap();
            let genext = pgg
                .cogen(
                    &p,
                    case.entry,
                    &Division::new(case.division.iter().copied()),
                )
                .unwrap();
            let source = genext.specialize_source(&case.statics).unwrap();
            let compiled = compile_program(&source, case.entry).unwrap();
            let fused = genext.specialize_object(&case.statics).unwrap();

            assert_eq!(
                fused.templates.len(),
                compiled.templates.len(),
                "{}: definition counts differ",
                case.name
            );
            for ((n1, t1), (n2, t2)) in fused.templates.iter().zip(&compiled.templates) {
                assert_eq!(n1, n2, "{}: definition order differs", case.name);
                assert_eq!(
                    t1,
                    t2,
                    "{}: template `{}` differs\n--- fused ---\n{}\n--- compiled ---\n{}\n--- residual source ---\n{}",
                    case.name,
                    n1,
                    t1.disassemble(),
                    t2.disassemble(),
                    source.to_source()
                );
            }
        }
    });
}

#[test]
fn fused_images_behave_identically_too() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg.parse(two4one_langs::classics::MATCHER).unwrap();
        let genext = pgg
            .cogen(&p, "match", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let source = genext.specialize_source(&[d("(x y)")]).unwrap();
        let compiled = compile_program(&source, "match").unwrap();
        let fused = genext.specialize_object(&[d("(x y)")]).unwrap();
        for text in ["(a x y b)", "(x x y)", "(y x)", "()"] {
            let args = vec![d(text)];
            let a = two4one::run_image(&fused, "match", &args).unwrap();
            let b = two4one::run_image(&compiled, "match", &args).unwrap();
            assert_eq!(a, b, "on {text}");
        }
    });
}
