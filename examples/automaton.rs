//! Compiling a finite automaton by partial evaluation: the DFA interpreter
//! is specialized over a static transition table, producing one residual
//! function per state — a hard-coded matcher, emitted directly as object
//! code.
//!
//! ```text
//! cargo run --example automaton
//! ```

use two4one::{run_image, with_stack, Division, Pgg, BT};
use two4one_langs as langs;

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let mut pgg = Pgg::new();
    for (name, policy) in langs::dfa_policies() {
        pgg = pgg.policy(name, policy);
    }
    let interp = pgg.parse(langs::DFA_INTERP)?;
    let genext = pgg.cogen(
        &interp,
        "dfa-run",
        &Division::new([BT::Static, BT::Dynamic]),
    )?;

    let dfa = langs::dfa_aba();
    println!("DFA (accepts words containing 'a b a'):\n{dfa}\n");

    // The table disappears; each state becomes a residual function.
    let residual = genext.specialize_source(std::slice::from_ref(&dfa))?;
    println!(
        "residual matcher ({} state functions):\n{}",
        residual.defs.len(),
        residual.to_source()
    );

    let image = genext.specialize_object(&[dfa])?;
    for word in ["(a b a)", "(b b a b a b)", "(a b b a)", "()", "(a a a b a)"] {
        let w = two4one::reader::read_one(word).expect("word");
        let out = run_image(&image, "dfa-run", &[w])?;
        println!("accepts {word:16} => {}", out.value);
    }
    Ok(())
}
