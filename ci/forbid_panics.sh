#!/usr/bin/env bash
# Grep-lint: library crates must not grow new panic-capable call sites.
#
# The engine's robustness contract (DESIGN.md §7) is "typed error, never a
# panic": panics are reserved for broken internal invariants, and even
# those are caught at the facade (`Error::Panicked`). This lint counts
# panic-capable constructs (`panic!`, `.unwrap()`, `.expect(`,
# `unreachable!`, `todo!`, `unimplemented!`) in non-test library code and
# fails if a file exceeds its allowlisted budget.
#
# The allowlist below records the *invariant-checked* sites that remain —
# every one is an `expect`/`unreachable!` whose message names the local
# invariant that makes it dead code (e.g. "checked by caller"). Lowering a
# budget is always fine; raising one needs a justification in review.
#
# Excluded: `#[cfg(test)]` modules (by convention at the bottom of a
# file), `src/bin/` binaries (their top-level error handling is tested by
# tests/cli.rs), and the bench/testkit harness crates.

set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='panic!\(|\.unwrap\(\)|\.expect\(|unreachable!\(|todo!\(|unimplemented!\('

declare -A ALLOW=(
  # Desugar/rename/lift/lower: shape checks immediately precede the access.
  [crates/frontend/src/desugar.rs]=4
  [crates/frontend/src/rename.rs]=3
  [crates/frontend/src/lift.rs]=1
  [crates/frontend/src/lower.rs]=2
  # Specializer: arity/shape checked by the caller on the same path.
  # Syntax: closed enum dispatch and the worker-thread spawn.
  [crates/syntax/src/value.rs]=2
  [crates/syntax/src/cs.rs]=1
  [crates/syntax/src/stack.rs]=1
  [crates/syntax/src/prim.rs]=1
  [crates/syntax/src/datum.rs]=1
  # Assembler fixups only ever point at jump instructions.
  [crates/vm/src/asm.rs]=1
  # Normalizer: `triv` is only called on trivial expressions.
  [crates/anf/src/normalize.rs]=1
  # Workload library (crates/langs/src/*.rs — embedded interpreters and
  # the grammar front end): ZERO budget. The grammar module parses
  # user-supplied text into a specializable workload, so every defect —
  # read errors, malformed rules, left recursion, LL(1) conflicts — must
  # surface as a typed GrammarError; the embedded interpreter constants
  # degrade to `()` on the (test-covered) impossible parse failure
  # instead of expecting.
  # Serving layer (crates/server/src/*.rs — admission, breaker, cache,
  # persist, registry, stats, lib): deliberately ZERO budget. The
  # fault-tolerance contract is that overload, deadlines, corrupt
  # snapshots, poisoned locks, and program redefinition races all surface
  # as typed errors/counters; a panic-capable site here would undermine
  # exactly the machinery that contains panics elsewhere. The registry
  # module (versioned programs + invalidation backedges) is explicitly
  # included: a redefinition must never be able to panic a serving thread
  # that is mid-publication for a dead epoch.
  #
  # Observability (crates/obs/src/*.rs — metrics, span, lib): also ZERO
  # budget. Telemetry must never take the process down: poisoned registry
  # locks are entered anyway, the trace ring uses try_with/try_borrow and
  # drops events rather than panicking, and counters saturate at u64::MAX.
  #
  # Network front end (crates/net/src/*.rs — wire, http, json, tenants,
  # server, stats, lib): ZERO budget, and the strictest case of all. This
  # code parses attacker-controlled bytes off a socket; every torn frame,
  # bad checksum, oversized header, malformed JSON body, and unknown
  # token must come back as a typed ProtocolError/HTTP status, and
  # connection handlers additionally run under catch_unwind (counted in
  # t4o_net_worker_panics_total) as a second wall. A panic-capable site
  # here is a remote denial-of-service primitive.
)

fail=0
while IFS= read -r f; do
  # Cut the file at the first `#[cfg(test)]` (test modules sit at the
  # end) and ignore comment lines (doc examples are compiled as tests).
  count=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
    | grep -vE '^\s*//' | grep -cE "$PATTERN" || true)
  allowed=${ALLOW[$f]:-0}
  if ((count > allowed)); then
    echo "forbid_panics: $f: $count panic-capable site(s), budget $allowed:" >&2
    awk '/#\[cfg\(test\)\]/{exit} {printf "%d\t%s\n", FNR, $0}' "$f" \
      | grep -vE '^[0-9]+\s+//' | grep -E "$PATTERN" >&2 || true
    fail=1
  fi
done < <(find crates -path '*/src/*' -name '*.rs' \
  ! -path '*/src/bin/*' ! -path 'crates/bench/*' ! -path 'crates/testkit/*' \
  | sort)

if ((fail)); then
  echo "forbid_panics: FAILED — return a typed error instead, or justify a budget bump." >&2
  exit 1
fi
echo "forbid_panics: ok"
