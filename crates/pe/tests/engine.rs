//! Focused tests of specializer mechanisms: join points, leniency paths,
//! depth limits, lifting of function references, and statistics.

use two4one_anf::build::SourceBuilder;
use two4one_bta::{bta, bta_with, Division, Options};
use two4one_compiler::ObjectBuilder;
use two4one_pe::{specialize, PeError, SpecOptions};
use two4one_syntax::acs::{CallPolicy, BT};
use two4one_syntax::datum::Datum;
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Machine, Value};

fn source(src: &str, entry: &str, div: &[BT], statics: &[Datum]) -> two4one_anf::Program {
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, entry, &Division::new(div.iter().copied())).unwrap();
    specialize(
        &aprog,
        &Symbol::new(entry),
        statics,
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap()
    .0
}

#[test]
fn nontail_dynamic_conditionals_get_join_points_not_duplication() {
    // Four sequential dynamic conditionals in non-tail position: naive
    // Fig. 3 duplication would blow the final addition up 16-fold; join
    // points keep it linear.
    let src = "(define (f a b c d)
                 (+ (if a 1 2) (+ (if b 3 4) (+ (if c 5 6) (if d 7 8)))))";
    let res = source(src, "f", &[BT::Dynamic; 4], &[]);
    let text = res.to_source();
    let joins = text.matches("join%").count();
    assert!(joins >= 2, "expected join points:\n{text}");
    // Linear size: well under the duplication blowup.
    assert!(
        res.size() < 120,
        "residual too large ({}):\n{text}",
        res.size()
    );
    // And correct.
    let args: Vec<Datum> = vec![true, false, true, false]
        .into_iter()
        .map(Datum::Bool)
        .collect();
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "f", &args).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(1 + 4 + 5 + 8)));
}

#[test]
fn tail_dynamic_conditionals_have_no_join_points() {
    let src = "(define (f a) (if a 'yes 'no))";
    let res = source(src, "f", &[BT::Dynamic], &[]);
    assert!(!res.to_source().contains("join%"), "{}", res.to_source());
}

#[test]
fn depth_limit_reports_unfold_count() {
    two4one_syntax::stack::with_stack(depth_limit_body);
}

fn depth_limit_body() {
    let src = "(define (spin x) (spin (+ x 1)))";
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, "spin", &Division::new([BT::Static])).unwrap();
    let err = specialize(
        &aprog,
        &Symbol::new("spin"),
        &[Datum::Int(0)],
        SourceBuilder::new(),
        &SpecOptions {
            limits: two4one_syntax::limits::Limits::default()
                .with_unfold_fuel(1_000_000)
                .with_max_depth(500),
            fallback: true, // depth overrun is not recoverable even so
        },
    )
    .unwrap_err();
    match err {
        PeError::DepthLimit { limit, .. } => assert_eq!(limit, 500),
        other => panic!("expected depth limit, got {other}"),
    }
}

#[test]
fn faulting_static_prims_residualize_instead_of_aborting() {
    // (car '()) under dynamic control: must not abort specialization and
    // must fault at run time only on the faulting branch.
    let src = "(define (f d) (if d (car '()) 'safe))";
    let res = source(src, "f", &[BT::Dynamic], &[]);
    let text = res.to_source();
    assert!(
        text.contains("(car '())") || text.contains("(car (quote ())"),
        "{text}"
    );
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "f", &[Datum::Bool(false)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::sym("safe")));
    let err = two4one_interp::run_program(&res.to_cs(), "f", &[Datum::Bool(true)]);
    assert!(err.is_err());
}

#[test]
fn function_reference_lifting_creates_all_dynamic_version() {
    // `apply-later` stores a top-level function in a residual closure; the
    // reference must resolve to a residual (all-dynamic) version of it.
    let src = "(define (step x) (+ x 1))
               (define (main)
                 (lambda (y) (step y)))";
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, "main", &Division::new([])).unwrap();
    let (image, _) = specialize(
        &aprog,
        &Symbol::new("main"),
        &[],
        ObjectBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    let image = image.unwrap();
    let mut m = Machine::load(&image);
    let f = m.call_global(&Symbol::new("main"), vec![]).unwrap();
    let v = m.call_value(f, vec![Value::Int(41)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(42)));
}

#[test]
fn stats_reflect_unfolds_and_memoization() {
    let src = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
    let p = two4one_frontend::frontend(src).unwrap();
    let aprog = bta(&p, "power", &Division::new([BT::Dynamic, BT::Static])).unwrap();
    let (_, stats) = specialize(
        &aprog,
        &Symbol::new("power"),
        &[Datum::Int(8)],
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    assert_eq!(stats.unfolds, 8, "{stats:?}");
    assert_eq!(stats.memo_misses, 0);
    assert_eq!(stats.residual_defs, 1);
}

#[test]
fn memo_key_distinguishes_function_references() {
    // The same higher-order wrapper memoized over two different function
    // references must yield two residual versions.
    let src = "(define (apply-n f n x) (if (= n 0) x (apply-n f (- n 1) (f x))))
               (define (inc v) (+ v 1))
               (define (dbl v) (* v 2))
               (define (main x) (+ (apply-n inc 3 x) (apply-n dbl 2 x)))";
    let p = two4one_frontend::frontend(src).unwrap();
    let mut opts = Options::default();
    opts.policy_overrides
        .insert(Symbol::new("apply-n"), CallPolicy::Memoize);
    let aprog = bta_with(&p, "main", &Division::new([BT::Dynamic]), &opts).unwrap();
    let (res, stats) = specialize(
        &aprog,
        &Symbol::new("main"),
        &[],
        SourceBuilder::new(),
        &SpecOptions::default(),
    )
    .unwrap();
    // Two (f, n)-keyed entry specializations plus their recursive chains.
    assert!(stats.memo_misses >= 2, "{stats:?}\n{}", res.to_source());
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(10)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(13 + 40)));
}

#[test]
fn unfolding_does_not_duplicate_residual_lambdas() {
    // A dynamic lambda passed to an unfolded function that uses it twice
    // must be let-bound, not duplicated (preserves eq? identity).
    let src = "(define (use2 f x) (eq? f f))
               (define (main n x) (use2 (lambda (y) (+ y x)) n))";
    let res = source(src, "main", &[BT::Dynamic, BT::Dynamic], &[]);
    let text = res.to_source();
    assert_eq!(text.matches("lambda").count(), 1, "{text}");
    let (v, _) =
        two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(1), Datum::Int(2)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Bool(true)));
}

#[test]
fn output_effects_under_lift_keep_their_order() {
    // A dynamic effect inside an otherwise-static computation that gets
    // lifted: the residual let for the effect must still happen before the
    // lifted constant is returned.
    let src = "(define (main n) (let ((u (display \"hi\"))) (* n n)))";
    let res = source(src, "main", &[BT::Static], &[Datum::Int(4)]);
    let text = res.to_source();
    let disp = text.find("display").expect("display survives");
    let sixteen = text.find("16").expect("lifted constant");
    assert!(disp < sixteen, "{text}");
}

#[test]
fn higher_order_static_pipelines_collapse() {
    // A static pipeline of combinators applied to a dynamic input: all the
    // higher-order plumbing evaluates away at specialization time.
    let src = "(define (compose f g) (lambda (v) (f (g v))))
               (define (pipeline) (compose (lambda (a) (+ a 1))
                                           (compose (lambda (b) (* b 2))
                                                    (lambda (c) (- c 3)))))
               (define (main x) ((pipeline) x))";
    let res = source(src, "main", &[BT::Dynamic], &[]);
    let text = res.to_source();
    assert!(!text.contains("lambda"), "plumbing survived:\n{text}");
    assert!(!text.contains("compose"), "{text}");
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(10)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int((10 - 3) * 2 + 1)));
}

#[test]
fn church_numerals_specialize_to_iterated_code() {
    // Church numeral 3 applied to a dynamic successor: the fold unrolls.
    let src = "(define (three f) (lambda (x) (f (f (f x)))))
               (define (main d) ((three (lambda (v) (+ v d))) 0))";
    let res = source(src, "main", &[BT::Dynamic], &[]);
    let text = res.to_source();
    assert_eq!(text.matches("+").count(), 3, "{text}");
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(5)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(15)));
}

#[test]
fn static_data_structures_specialize_through_accessors() {
    // A static association structure interrogated with static keys: all
    // list traffic disappears.
    let src = "(define (get k alist) (if (eq? k (car (car alist)))
                                         (cdr (car alist))
                                         (get k (cdr alist))))
               (define (main x) (+ (* (get 'scale '((offset . 7) (scale . 3))) x)
                                   (get 'offset '((offset . 7) (scale . 3)))))";
    let res = source(src, "main", &[BT::Dynamic], &[]);
    let text = res.to_source();
    assert!(!text.contains("car"), "{text}");
    assert!(text.contains("3") && text.contains("7"), "{text}");
    let (v, _) = two4one_interp::run_program(&res.to_cs(), "main", &[Datum::Int(4)]).unwrap();
    assert_eq!(v.to_datum(), Some(Datum::Int(19)));
}
