//! Alpha renaming, scope checking, and primitive resolution.
//!
//! After this pass every binder in the program is unique, every variable is
//! provably bound (locally or by a top-level definition), and applications
//! of primitive names in operator position have been turned into
//! [`SExpr::Prim`] nodes — respecting shadowing, so `(let ((car f)) (car x))`
//! calls `f`. The `c[ad]+r` accessor family expands to `car`/`cdr` chains,
//! and primitives used as *values* are eta-expanded into lambdas.

use crate::surface::{SExpr, STop};
use crate::FrontError;
use std::collections::{HashMap, HashSet};
use two4one_syntax::prim::{Arity, Prim};
use two4one_syntax::symbol::{Gensym, Symbol};

type Res<T> = Result<T, FrontError>;

struct Renamer<'a> {
    gensym: &'a mut Gensym,
    globals: HashSet<Symbol>,
}

type Env = HashMap<Symbol, Symbol>;

/// Renames a whole program. Top-level names are kept; all local binders
/// become unique.
///
/// # Errors
///
/// Reports unbound variables, duplicate definitions, `set!` on globals or
/// primitives, and arity errors on primitive applications.
pub fn rename_program(tops: Vec<STop>, gensym: &mut Gensym) -> Res<Vec<STop>> {
    let mut globals = HashSet::new();
    for t in &tops {
        if !globals.insert(t.name) {
            return Err(FrontError::Syntax(format!(
                "duplicate definition of `{}`",
                t.name
            )));
        }
    }
    let mut r = Renamer { gensym, globals };
    tops.into_iter()
        .map(|t| {
            let mut env = Env::new();
            let params = t
                .params
                .iter()
                .map(|p| {
                    let fresh = r.gensym.fresh(p.as_str());
                    env.insert(*p, fresh);
                    fresh
                })
                .collect();
            Ok(STop {
                name: t.name,
                params,
                body: r.expr(t.body, &env)?,
            })
        })
        .collect()
}

/// Expands a `c[ad]+r` accessor name into the `car`/`cdr` chain applied to
/// `arg`, e.g. `cadr` ↦ `(car (cdr arg))`. Returns `None` if the name is
/// not in the family.
fn cxr_chain(name: &str, arg: SExpr) -> Option<SExpr> {
    let inner = name.strip_prefix('c')?.strip_suffix('r')?;
    if inner.is_empty() || inner.len() > 4 || !inner.chars().all(|c| c == 'a' || c == 'd') {
        return None;
    }
    // `cadr` reads inside-out: the *last* letter is applied first.
    let mut e = arg;
    for c in inner.chars().rev() {
        let p = if c == 'a' { Prim::Car } else { Prim::Cdr };
        e = SExpr::Prim(p, vec![e]);
    }
    Some(e)
}

fn is_cxr(name: &str) -> bool {
    cxr_chain(name, SExpr::var("x")).is_some() && name != "car" && name != "cdr"
}

impl Renamer<'_> {
    fn expr(&mut self, e: SExpr, env: &Env) -> Res<SExpr> {
        match e {
            SExpr::Const(_) => Ok(e),
            SExpr::Var(x) => self.var_ref(x, env),
            SExpr::Lambda { name, params, body } => {
                let mut inner = env.clone();
                let params = params
                    .iter()
                    .map(|p| {
                        let fresh = self.gensym.fresh(p.as_str());
                        inner.insert(*p, fresh);
                        fresh
                    })
                    .collect();
                Ok(SExpr::Lambda {
                    name,
                    params,
                    body: Box::new(self.expr(*body, &inner)?),
                })
            }
            SExpr::If(a, b, c) => Ok(SExpr::if_(
                self.expr(*a, env)?,
                self.expr(*b, env)?,
                self.expr(*c, env)?,
            )),
            SExpr::Let(bs, body) => {
                let mut inner = env.clone();
                let mut out = Vec::with_capacity(bs.len());
                // Parallel let: right-hand sides see the outer environment.
                let renamed_rhs: Vec<(Symbol, SExpr)> = bs
                    .into_iter()
                    .map(|(x, rhs)| Ok((x, self.expr(rhs, env)?)))
                    .collect::<Res<Vec<_>>>()?;
                for (x, rhs) in renamed_rhs {
                    let fresh = self.gensym.fresh(x.as_str());
                    inner.insert(x, fresh);
                    out.push((fresh, rhs));
                }
                Ok(SExpr::Let(out, Box::new(self.expr(*body, &inner)?)))
            }
            SExpr::Letrec(bs, body) => {
                let mut inner = env.clone();
                let fresh_names: Vec<Symbol> = bs
                    .iter()
                    .map(|(x, _)| {
                        let fresh = self.gensym.fresh(x.as_str());
                        inner.insert(*x, fresh);
                        fresh
                    })
                    .collect();
                let out = bs
                    .into_iter()
                    .zip(fresh_names)
                    .map(|((_, rhs), fresh)| Ok((fresh, self.expr(rhs, &inner)?)))
                    .collect::<Res<Vec<_>>>()?;
                Ok(SExpr::Letrec(out, Box::new(self.expr(*body, &inner)?)))
            }
            SExpr::Set(x, rhs) => {
                let rhs = self.expr(*rhs, env)?;
                match env.get(&x) {
                    Some(fresh) => Ok(SExpr::Set(*fresh, Box::new(rhs))),
                    None if self.globals.contains(&x) => Err(FrontError::Syntax(format!(
                        "`set!` on top-level `{x}` is not supported"
                    ))),
                    None => Err(FrontError::Unbound(x.to_string())),
                }
            }
            SExpr::Begin(es) => Ok(SExpr::Begin(
                es.into_iter()
                    .map(|e| self.expr(e, env))
                    .collect::<Res<Vec<_>>>()?,
            )),
            SExpr::App(f, args) => {
                let args = args
                    .into_iter()
                    .map(|a| self.expr(a, env))
                    .collect::<Res<Vec<_>>>()?;
                // Primitive in operator position?
                if let SExpr::Var(x) = &*f {
                    if !env.contains_key(x) && !self.globals.contains(x) {
                        if let Some(p) = Prim::from_name(x.as_str()) {
                            if !p.arity().admits(args.len()) {
                                return Err(FrontError::Syntax(format!(
                                    "`{}` expects {} argument(s), got {}",
                                    p.name(),
                                    p.arity(),
                                    args.len()
                                )));
                            }
                            return Ok(SExpr::Prim(p, args));
                        }
                        if is_cxr(x.as_str()) {
                            if args.len() != 1 {
                                return Err(FrontError::Syntax(format!(
                                    "`{x}` expects 1 argument, got {}",
                                    args.len()
                                )));
                            }
                            let arg = args.into_iter().next().expect("checked length");
                            return Ok(
                                cxr_chain(x.as_str(), arg).expect("is_cxr implies expansion")
                            );
                        }
                    }
                }
                Ok(SExpr::app(self.expr(*f, env)?, args))
            }
            SExpr::Prim(p, args) => Ok(SExpr::Prim(
                p,
                args.into_iter()
                    .map(|a| self.expr(a, env))
                    .collect::<Res<Vec<_>>>()?,
            )),
        }
    }

    fn var_ref(&mut self, x: Symbol, env: &Env) -> Res<SExpr> {
        if let Some(fresh) = env.get(&x) {
            return Ok(SExpr::Var(*fresh));
        }
        if self.globals.contains(&x) {
            return Ok(SExpr::Var(x));
        }
        // A primitive used as a value: eta-expand.
        if let Some(p) = Prim::from_name(x.as_str()) {
            return match p.arity() {
                Arity::Exact(n) => {
                    let params: Vec<Symbol> = (0..n).map(|_| self.gensym.fresh("a")).collect();
                    Ok(SExpr::Lambda {
                        name: x,
                        params: params.clone(),
                        body: Box::new(SExpr::Prim(
                            p,
                            params.into_iter().map(SExpr::Var).collect(),
                        )),
                    })
                }
                Arity::AtLeast(_) => Err(FrontError::Syntax(format!(
                    "variadic primitive `{x}` cannot be used as a value; \
                     wrap it in a lambda with the arity you need"
                ))),
            };
        }
        if is_cxr(x.as_str()) {
            let param = self.gensym.fresh("a");
            return Ok(SExpr::Lambda {
                name: x,
                params: vec![param],
                body: Box::new(cxr_chain(x.as_str(), SExpr::Var(param)).expect("is_cxr")),
            });
        }
        Err(FrontError::Unbound(x.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar::{desugar_expr, desugar_program};
    use two4one_syntax::reader::{read_all, read_one};

    fn ren(src: &str) -> Vec<STop> {
        let tops = desugar_program(&read_all(src).unwrap()).unwrap();
        rename_program(tops, &mut Gensym::new()).unwrap()
    }

    fn ren_err(src: &str) -> FrontError {
        let tops = desugar_program(&read_all(src).unwrap()).unwrap();
        rename_program(tops, &mut Gensym::new()).unwrap_err()
    }

    fn ren_expr(src: &str) -> SExpr {
        let e = desugar_expr(&read_one(src).unwrap()).unwrap();
        let tops = vec![STop {
            name: Symbol::new("main"),
            params: vec![],
            body: e,
        }];
        rename_program(tops, &mut Gensym::new())
            .unwrap()
            .remove(0)
            .body
    }

    #[test]
    fn binders_become_unique() {
        let tops = ren("(define (f x) (let ((x x)) (lambda (x) x)))");
        fn collect_binders(e: &SExpr, out: &mut Vec<Symbol>) {
            match e {
                SExpr::Lambda { params, body, .. } => {
                    out.extend(params.iter().cloned());
                    collect_binders(body, out);
                }
                SExpr::Let(bs, body) | SExpr::Letrec(bs, body) => {
                    for (x, rhs) in bs {
                        out.push(*x);
                        collect_binders(rhs, out);
                    }
                    collect_binders(body, out);
                }
                SExpr::If(a, b, c) => {
                    collect_binders(a, out);
                    collect_binders(b, out);
                    collect_binders(c, out);
                }
                SExpr::App(f, args) => {
                    collect_binders(f, out);
                    args.iter().for_each(|a| collect_binders(a, out));
                }
                SExpr::Prim(_, args) => args.iter().for_each(|a| collect_binders(a, out)),
                SExpr::Begin(es) => es.iter().for_each(|e| collect_binders(e, out)),
                SExpr::Set(_, e) => collect_binders(e, out),
                _ => {}
            }
        }
        let mut binders = tops[0].params.clone();
        collect_binders(&tops[0].body, &mut binders);
        let unique: std::collections::HashSet<_> = binders.iter().collect();
        assert_eq!(unique.len(), binders.len(), "{binders:?}");
    }

    #[test]
    fn primitive_application_resolves() {
        let e = ren_expr("(+ 1 2)");
        assert!(matches!(e, SExpr::Prim(Prim::Add, _)));
    }

    #[test]
    fn shadowed_primitive_stays_application() {
        let e = ren_expr("(let ((car (lambda (x) x))) (car 1))");
        match e {
            SExpr::Let(_, body) => assert!(matches!(*body, SExpr::App(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cxr_family_expands() {
        let tops = ren("(define (f xs) (cadr xs))");
        match &tops[0].body {
            SExpr::Prim(Prim::Car, args) => {
                assert!(matches!(args[0], SExpr::Prim(Prim::Cdr, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prim_as_value_eta_expands() {
        let tops = ren("(define (f g xs) (g cons xs))");
        match &tops[0].body {
            SExpr::App(_, args) => {
                assert!(matches!(args[0], SExpr::Lambda { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variadic_prim_as_value_errors() {
        let e = ren_err("(define (f g) (g list))");
        assert!(matches!(e, FrontError::Syntax(_)));
    }

    #[test]
    fn unbound_and_duplicates_error() {
        assert!(matches!(ren_err("(define (f) y)"), FrontError::Unbound(_)));
        assert!(matches!(
            ren_err("(define (f) 1) (define (f) 2)"),
            FrontError::Syntax(_)
        ));
    }

    #[test]
    fn set_on_global_rejected() {
        let e = ren_err("(define (f) 1) (define (g) (set! f 2))");
        assert!(matches!(e, FrontError::Syntax(_)));
    }

    #[test]
    fn parallel_let_sees_outer_scope() {
        // (let ((x 1)) (let ((x 2) (y x)) y)) — y is bound to the OUTER x.
        let tops = ren("(define (f x) (let ((x 2) (y x)) y))");
        match &tops[0].body {
            SExpr::Let(bs, _) => {
                let outer_x = &tops[0].params[0];
                assert_eq!(bs[1].1, SExpr::Var(*outer_x));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn letrec_sees_itself() {
        let tops = ren("(define (f) (letrec ((loop (lambda (i) (loop i)))) (loop 0)))");
        match &tops[0].body {
            SExpr::Letrec(bs, _) => match &bs[0].1 {
                SExpr::Lambda { body, .. } => match &**body {
                    SExpr::App(f, _) => assert_eq!(**f, SExpr::Var(bs[0].0)),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prim_arity_checked_at_rename() {
        assert!(matches!(
            ren_err("(define (f x) (car x x))"),
            FrontError::Syntax(_)
        ));
    }
}
