//! A tiny, dependency-free, deterministic PRNG for tests and fault
//! injection.
//!
//! The workspace builds offline, so the usual property-testing crates are
//! unavailable; this SplitMix64 generator (Steele, Lea & Flood, OOPSLA
//! 2014) is more than adequate for generating test programs and fault
//! schedules. Determinism is the point: every generated case is
//! reproducible from its `u64` seed, so a failing seed can be pasted into
//! a regression test verbatim.

/// SplitMix64: a fast, well-mixed 64-bit generator with a 64-bit state.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..bound` (`bound` must be nonzero).
    /// The modulo bias is irrelevant at test-generation scale.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound != 0, "Rng::below(0)");
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform-ish `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Signed value in `lo..hi` (half-open, `lo < hi`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Derives an independent child generator (for splitting one seed into
    /// per-case streams without correlating them).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn streams_cover_values() {
        // Sanity: over 1000 draws below 8, every residue appears.
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
