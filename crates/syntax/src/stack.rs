//! Running deeply recursive phases on a large stack.
//!
//! The continuation-based specializer and the tree-walking interpreter are
//! written as natural recursive functions; realistic inputs (interpreters
//! specialized over whole programs) can nest thousands of frames. This
//! helper runs a closure on a dedicated worker thread with a large stack,
//! which is how Scheme-ish depths are accommodated without rewriting every
//! phase in CPS-with-explicit-stack style.

/// Default worker stack size: 512 MiB of address space (only touched pages
/// are actually committed).
pub const DEFAULT_STACK_BYTES: usize = 512 * 1024 * 1024;

/// Runs `f` on a thread with [`DEFAULT_STACK_BYTES`] of stack and returns
/// its result.
///
/// # Panics
///
/// Propagates panics from `f` and panics if the worker thread cannot be
/// spawned.
pub fn with_stack<T, F>(f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    with_stack_size(DEFAULT_STACK_BYTES, f)
}

/// Runs `f` on a thread with the given stack size and returns its result.
///
/// # Panics
///
/// Propagates panics from `f` and panics if the worker thread cannot be
/// spawned.
pub fn with_stack_size<T, F>(bytes: usize, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (result, trace) = std::thread::Builder::new()
        .name("two4one-worker".into())
        .stack_size(bytes)
        // Trace rings are per-thread; drain the worker's ring and carry it
        // back so the request's trace stays continuous across the hop to
        // the big-stack thread. (Lost on panic — the unwind payload wins.)
        .spawn(move || {
            let result = f();
            (result, two4one_obs::take_trace())
        })
        .expect("spawn two4one worker thread")
        .join()
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
    two4one_obs::absorb_trace(trace);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_result() {
        assert_eq!(with_stack(|| 1 + 1), 2);
    }

    #[test]
    fn deep_recursion_fits() {
        fn depth(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                1 + depth(n - 1)
            }
        }
        assert_eq!(with_stack(|| depth(1_000_000)), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        with_stack(|| panic!("boom"));
    }

    #[test]
    fn worker_trace_carries_back_to_caller() {
        with_stack(|| two4one_obs::event(two4one_obs::EventKind::Unfold));
        let tr = two4one_obs::trace();
        assert!(tr.iter().any(|e| matches!(
            e.what,
            two4one_obs::TraceWhat::Point(two4one_obs::EventKind::Unfold, _)
        )));
        two4one_obs::clear_trace();
    }
}
