//! A minimal, hardened JSON reader/writer for the HTTP surface.
//!
//! Hand-rolled (the crate is zero-dep) and defensive: bounded nesting
//! depth, typed errors, no recursion on attacker-controlled depth beyond
//! the cap, no panics. Only what `POST /spec` needs — objects, arrays,
//! strings with the standard escapes, integers, floats, booleans, null.

use std::fmt;

/// Maximum nesting depth accepted from the network.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that parsed as an integer.
    Int(i64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A typed JSON parse failure (byte offset + description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// A [`JsonError`] naming the offset and cause; depth beyond 64 levels is
/// rejected.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut at = 0;
    let v = parse_value(src, bytes, &mut at, 0)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(JsonError {
            at,
            what: "trailing characters after document",
        });
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while let Some(b) = bytes.get(*at) {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => *at += 1,
            _ => break,
        }
    }
}

fn parse_value(src: &str, bytes: &[u8], at: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError {
            at: *at,
            what: "nesting too deep",
        });
    }
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err(JsonError {
            at: *at,
            what: "unexpected end of input",
        }),
        Some(b'{') => {
            *at += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, at);
                let key = match parse_value(src, bytes, at, depth + 1)? {
                    Json::Str(s) => s,
                    _ => {
                        return Err(JsonError {
                            at: *at,
                            what: "object key must be a string",
                        })
                    }
                };
                skip_ws(bytes, at);
                if bytes.get(*at) != Some(&b':') {
                    return Err(JsonError {
                        at: *at,
                        what: "expected `:`",
                    });
                }
                *at += 1;
                let value = parse_value(src, bytes, at, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *at,
                            what: "expected `,` or `}`",
                        })
                    }
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, at, depth + 1)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *at,
                            what: "expected `,` or `]`",
                        })
                    }
                }
            }
        }
        Some(b'"') => parse_string(src, bytes, at).map(Json::Str),
        Some(b't') => parse_lit(bytes, at, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, at, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, at, b"null", Json::Null),
        Some(_) => parse_number(src, bytes, at),
    }
}

fn parse_lit(bytes: &[u8], at: &mut usize, lit: &[u8], v: Json) -> Result<Json, JsonError> {
    let end = at.checked_add(lit.len()).unwrap_or(usize::MAX);
    if bytes.get(*at..end) == Some(lit) {
        *at = end;
        Ok(v)
    } else {
        Err(JsonError {
            at: *at,
            what: "unexpected token",
        })
    }
}

fn parse_string(src: &str, bytes: &[u8], at: &mut usize) -> Result<String, JsonError> {
    // Caller checked bytes[*at] == b'"'.
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => {
                return Err(JsonError {
                    at: *at,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*at + 1..*at + 5).ok_or(JsonError {
                            at: *at,
                            what: "truncated \\u escape",
                        })?;
                        let s = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *at,
                            what: "bad \\u escape",
                        })?;
                        let cp = u32::from_str_radix(s, 16).map_err(|_| JsonError {
                            at: *at,
                            what: "bad \\u escape",
                        })?;
                        // Surrogates degrade to the replacement character;
                        // pairing them is more than this surface needs.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *at,
                            what: "unknown escape",
                        })
                    }
                }
                *at += 1;
            }
            Some(b) if *b < 0x20 => {
                return Err(JsonError {
                    at: *at,
                    what: "control character in string",
                })
            }
            Some(_) => {
                // Consume one UTF-8 scalar (src is valid UTF-8 by
                // construction: it arrived as &str).
                let rest = &src[*at..];
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *at += c.len_utf8();
                    }
                    None => {
                        return Err(JsonError {
                            at: *at,
                            what: "unterminated string",
                        })
                    }
                }
            }
        }
    }
}

fn parse_number(src: &str, bytes: &[u8], at: &mut usize) -> Result<Json, JsonError> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    let mut fractional = false;
    while let Some(b) = bytes.get(*at) {
        match b {
            b'0'..=b'9' => *at += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *at += 1;
            }
            _ => break,
        }
    }
    let text = src.get(start..*at).unwrap_or("");
    if text.is_empty() || text == "-" {
        return Err(JsonError {
            at: start,
            what: "expected a value",
        });
    }
    if !fractional {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    match text.parse::<f64>() {
        Ok(f) => Ok(Json::Float(f)),
        Err(_) => Err(JsonError {
            at: start,
            what: "malformed number",
        }),
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let n = c as u32;
                for shift in [4, 0] {
                    let d = (n >> shift) & 0xf;
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_request_shape() {
        let v =
            parse(r#"{"name":"pow","statics":["5","(a b)"],"deadline_ms":250}"#).expect("parse");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("pow"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_int), Some(250));
        let statics = v.get("statics").and_then(Json::as_arr).expect("arr");
        assert_eq!(statics.len(), 2);
        assert_eq!(statics[1].as_str(), Some("(a b)"));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("null").expect("null"), Json::Null);
        assert_eq!(parse(" true ").expect("true"), Json::Bool(true));
        assert_eq!(parse("-42").expect("int"), Json::Int(-42));
        assert_eq!(parse("1.5").expect("float"), Json::Float(1.5));
        assert_eq!(
            parse(r#""a\"b\n\u0041""#).expect("str"),
            Json::Str("a\"b\nA".into())
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "-",
            "{\"a\":1,}",
            "[1 2]",
            "\"\\q\"",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let mut deep = String::new();
        for _ in 0..200 {
            deep.push('[');
        }
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "weird \"quotes\"\nand\tcontrol\u{1}";
        let parsed = parse(&escape(s)).expect("parse escaped");
        assert_eq!(parsed, Json::Str(s.into()));
    }
}
