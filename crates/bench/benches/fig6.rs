//! Fig. 6 — "Generation speed": time to *generate* residual code for the
//! MIXWELL and LAZY compilers, producing Scheme source (the classical PGG)
//! vs. producing object code directly (the fused system).
//!
//! Paper shape: object-code generation is at most ~2× slower than source
//! generation (and that gap was dominated by Scheme 48's higher-order code
//! representation being converted to byte codes, which our assembler also
//! models via template construction).

use std::hint::black_box;
use std::time::Instant;
use two4one::with_stack;
use two4one_bench::harness::Criterion;
use two4one_bench::subjects;
use two4one_bench::{criterion_group, criterion_main};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_generation_speed");
    group.sample_size(20);
    for subject in subjects() {
        let genext = subject.genext();
        let statics = vec![subject.program.clone()];

        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/source", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_source(&s).expect("specialize").size());
                    }
                    t0.elapsed()
                })
            })
        });

        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/object", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&s).expect("specialize").code_size());
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
