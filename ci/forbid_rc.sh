#!/usr/bin/env bash
# Grep-lint: library crates must stay `Send + Sync` end-to-end.
#
# The serving layer (crates/server) shares specialized images across a
# worker pool, so every type that crosses the cache — syntax values,
# generating extensions, residual images — must be thread-safe. The
# compile-time assertions in crates/core/src/lib.rs catch regressions on
# the named top-level types; this lint catches the root cause earlier and
# everywhere: a reintroduced `std::rc::Rc` (or a thread-unsafe `RefCell`
# smuggled into shared data) anywhere in library source.
#
# Shared ownership belongs to `Arc`; interior mutability that is actually
# shared belongs to `Mutex`/`RwLock`/atomics. `RefCell` is still fine in
# code that never crosses a thread — add such a file to the allowlist
# with a justification.

set -euo pipefail
cd "$(dirname "$0")/.."

# `Rc<`, `Rc::`, or any `std::rc` path, outside comments.
PATTERN='\bRc<|\bRc::|std::rc\b'

# Files allowed to use single-threaded shared ownership (none today).
# Note for crates/obs: metric handles are shared across threads by
# design (Counter/Gauge/Histogram are Arc-of-atomics), so obs gets no
# allowance either; its only RefCell is inside a `thread_local!` trace
# ring that never crosses a thread.
declare -A ALLOW=()

fail=0
while IFS= read -r f; do
  count=$(grep -vE '^\s*//' "$f" | grep -cE "$PATTERN" || true)
  allowed=${ALLOW[$f]:-0}
  if ((count > allowed)); then
    echo "forbid_rc: $f: $count non-Sync shared-ownership site(s), budget $allowed:" >&2
    grep -nE "$PATTERN" "$f" | grep -vE '^[0-9]+:\s*//' >&2 || true
    fail=1
  fi
done < <(find crates -path '*/src/*' -name '*.rs' | sort)

if ((fail)); then
  echo "forbid_rc: FAILED — use Arc (and Mutex/RwLock/atomics) so values stay Send + Sync." >&2
  exit 1
fi
echo "forbid_rc: ok"
