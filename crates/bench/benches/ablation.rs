//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **fused vs. staged** — the composed system against the classic
//!   two-step pipeline (generate source, then compile it); the headline
//!   "two for the price of one" measurement;
//! * **memoize vs. unfold** — generation time and residual size when the
//!   classic `power` example is specialized with its recursion unfolded
//!   (straight-line code) vs. forcibly memoized (residual loop);
//! * **interpreted vs. RTCG execution** — running a MIXWELL program under
//!   the interpreter vs. running the code generated for it at run time,
//!   the end-to-end payoff of the whole system.

use std::hint::black_box;
use std::time::Instant;
use two4one::{
    compile_source_text, interpret, run_image, with_stack, CallPolicy, Datum, Division, Machine,
    Pgg, Symbol, Value, BT,
};
use two4one_bench::harness::Criterion;
use two4one_bench::subjects;
use two4one_bench::{criterion_group, criterion_main};
use two4one_compiler::compile_program_generic;

fn bench_fused_vs_staged(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fused_vs_staged");
    group.sample_size(20);
    for subject in subjects() {
        let genext = subject.genext();
        let statics = vec![subject.program.clone()];
        let entry: &'static str = subject.entry;

        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/fused", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&s).expect("fused").code_size());
                    }
                    t0.elapsed()
                })
            })
        });

        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/staged", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        // The classical route: source out, then compile.
                        let text = g.specialize_source(&s).expect("source").to_source();
                        black_box(
                            compile_source_text(&text, entry)
                                .expect("compile")
                                .code_size(),
                        );
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

fn bench_memo_vs_unfold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memo_vs_unfold");
    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
    let n = Datum::Int(64);

    let unfold = Pgg::new()
        .cogen(
            &Pgg::new().parse(POWER).unwrap(),
            "power",
            &Division::new([BT::Dynamic, BT::Static]),
        )
        .unwrap();
    let memo = Pgg::new()
        .policy("power", CallPolicy::Memoize)
        .cogen(
            &Pgg::new().parse(POWER).unwrap(),
            "power",
            &Division::new([BT::Dynamic, BT::Static]),
        )
        .unwrap();

    for (label, genext) in [("unfold", unfold), ("memoize", memo)] {
        let g = genext.clone();
        let s = vec![n.clone()];
        group.bench_function(format!("power64/{label}"), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&s).expect("spec").code_size());
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

fn bench_interp_vs_rtcg_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_execution");
    group.sample_size(20);
    let subject = subjects().remove(0); // MIXWELL
    let parsed = subject.parsed();
    let program = subject.program.clone();
    let args = subject.run_args.clone();
    let entry = Symbol::new(subject.entry);

    let p = parsed.clone();
    let (prog, a) = (program.clone(), args.clone());
    group.bench_function("mixwell/interpreted", move |b| {
        b.iter_custom(|iters| {
            let p = p.clone();
            let prog = prog.clone();
            let a = a.clone();
            with_stack(move || {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(
                        interpret(&p, "mixwell-run", &[prog.clone(), a.clone()])
                            .expect("interp")
                            .value,
                    );
                }
                t0.elapsed()
            })
        })
    });

    let genext = subject.genext();
    let (prog, a) = (program.clone(), args.clone());
    group.bench_function("mixwell/rtcg-compiled", move |b| {
        b.iter_custom(|iters| {
            let g = genext.clone();
            let prog = prog.clone();
            let a = a.clone();
            with_stack(move || {
                // Code generation happens once; execution is measured.
                let image = g.specialize_object(&[prog]).expect("generate");
                let t0 = Instant::now();
                for _ in 0..iters {
                    let mut m = Machine::load(&image);
                    let argv = vec![Value::from(&a)];
                    black_box(m.call_global(&entry, argv).expect("run"));
                }
                t0.elapsed()
            })
        })
    });

    // End-to-end: generate + run once (the true RTCG break-even question).
    let genext = subject.genext();
    group.bench_function("mixwell/rtcg-generate-and-run-once", move |b| {
        b.iter_custom(|iters| {
            let g = genext.clone();
            let prog = program.clone();
            let a = args.clone();
            with_stack(move || {
                let t0 = Instant::now();
                for _ in 0..iters {
                    let image = g
                        .specialize_object(std::slice::from_ref(&prog))
                        .expect("generate");
                    black_box(
                        run_image(&image, "mixwell-run", std::slice::from_ref(&a))
                            .expect("run")
                            .value,
                    );
                }
                t0.elapsed()
            })
        })
    });
    group.finish();
}

/// The Sec. 6.1 design claim: the ANF compilator set (no compile-time
/// continuation) vs. the generic compiler threading one, on identical
/// input programs (both normalized first so the comparison isolates the
/// code-generation strategy).
fn bench_compilers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compilers");
    for subject in subjects() {
        let parsed = subject.parsed();
        let anf = two4one::anf::normalize(&parsed);
        let anf_cs = anf.to_cs();
        let entry: &'static str = subject.entry;

        let a = anf.clone();
        group.bench_function(format!("{}/anf-compilators", subject.name), move |b| {
            b.iter(|| {
                std::hint::black_box(
                    two4one::compile_program(&a, entry)
                        .expect("anf")
                        .code_size(),
                )
            })
        });

        let g = anf_cs.clone();
        group.bench_function(
            format!("{}/generic-ct-continuation", subject.name),
            move |b| {
                b.iter(|| {
                    std::hint::black_box(
                        compile_program_generic(&g, entry)
                            .expect("generic")
                            .code_size(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Residual-code post-optimization: cost of the ANF optimizer pass and
/// the size reduction it buys on interpreter residuals.
fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimizer");
    for subject in subjects() {
        let genext = subject.genext();
        let statics = vec![subject.program.clone()];
        let sizes: (usize, usize) = {
            let g = genext.clone();
            let s = statics.clone();
            with_stack(move || {
                let r = g.specialize_source(&s).expect("source");
                (r.size(), two4one::anf::optimize(&r).size())
            })
        };
        println!(
            "{}: residual size {} -> optimized {} ({:.0}%)",
            subject.name,
            sizes.0,
            sizes.1,
            100.0 * sizes.1 as f64 / sizes.0 as f64
        );
        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/optimize-pass", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let residual = g.specialize_source(&s).expect("source");
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(two4one::anf::optimize(&residual).size());
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_vs_staged,
    bench_memo_vs_unfold,
    bench_compilers,
    bench_optimizer,
    bench_interp_vs_rtcg_execution
);
criterion_main!(benches);
