//! S-expression data: the external representation of programs and the
//! first-order value universe of the partial evaluator.

use crate::symbol::Symbol;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An s-expression datum.
///
/// `Datum` doubles as (1) the concrete syntax read from source text and
/// (2) the domain of *static* first-order values inside the specializer,
/// which is why it implements `Eq` and `Hash` (memoization keys are tuples
/// of data).
///
/// # Hash-consed digests
///
/// Every pair caches a 64-bit structural digest computed at construction
/// ([`Datum::digest`]), and `Hash` writes that single word. Hashing a
/// datum is therefore O(1) in its size (amortized: the digest of a tree
/// is assembled bottom-up as it is consed), which is what keeps the
/// specializer's memoization probes — one per specialization point, each
/// keyed by a tuple of static data — from rehashing whole static
/// structures on every cache lookup. Digests are a pure function of
/// structure (symbol digests come from names, not intern ids), so they
/// are stable across processes; equality remains fully structural and is
/// never decided by digest alone.
///
/// Only exact integers are supported as numbers; the paper's benchmarks do
/// not require inexact arithmetic.
///
/// # Example
///
/// ```
/// use two4one_syntax::Datum;
/// let d = Datum::list([Datum::from(1), Datum::from(2)]);
/// assert_eq!(d.to_string(), "(1 2)");
/// assert_eq!(d.list_len(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum Datum {
    /// The empty list `()`.
    Nil,
    /// The unspecified value (result of one-armed `if`, `set!`, etc.).
    Unspec,
    /// `#t` / `#f`.
    Bool(bool),
    /// An exact integer.
    Int(i64),
    /// A character, written `#\c`.
    Char(char),
    /// An immutable string.
    Str(Arc<str>),
    /// A symbol.
    Sym(Symbol),
    /// A pair.
    Pair(Arc<Pair>),
}

/// A cons cell: two data plus the cached structural digest of the whole
/// pair (see [`Datum::digest`]).
pub struct Pair {
    /// The first element.
    pub car: Datum,
    /// The rest.
    pub cdr: Datum,
    digest: u64,
}

impl PartialEq for Pair {
    fn eq(&self, other: &Self) -> bool {
        // Digest first: unequal digests prove structural inequality, so
        // deep comparison only runs on (near-certain) matches.
        self.digest == other.digest && self.car == other.car && self.cdr == other.cdr
    }
}

impl Eq for Pair {}

/// Mixes two digest words (SplitMix64-style finalization over the
/// combination, cheap and well-distributed).
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Distinct seeds per constructor so `(1 . ())` and `1` (etc.) differ.
const SEED_NIL: u64 = 0x7a4e_1b1f_0000_0001;
const SEED_UNSPEC: u64 = 0x7a4e_1b1f_0000_0002;
const SEED_BOOL: u64 = 0x7a4e_1b1f_0000_0003;
const SEED_INT: u64 = 0x7a4e_1b1f_0000_0004;
const SEED_CHAR: u64 = 0x7a4e_1b1f_0000_0005;
const SEED_STR: u64 = 0x7a4e_1b1f_0000_0006;
const SEED_SYM: u64 = 0x7a4e_1b1f_0000_0007;
const SEED_PAIR: u64 = 0x7a4e_1b1f_0000_0008;

impl Datum {
    /// Constructs a pair, sealing the structural digest of the new cell.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        let digest = mix(SEED_PAIR, mix(car.digest(), cdr.digest()));
        Datum::Pair(Arc::new(Pair { car, cdr, digest }))
    }

    /// The 64-bit structural digest of this datum: a pure function of
    /// structure, cached inside every pair at construction time, so
    /// reading it is O(1) for pairs and O(1)–O(len) for atoms. Equal data
    /// always have equal digests; the converse holds only probabilistically
    /// (callers needing identity must compare structurally, as `Eq` does).
    pub fn digest(&self) -> u64 {
        match self {
            Datum::Nil => SEED_NIL,
            Datum::Unspec => SEED_UNSPEC,
            Datum::Bool(b) => mix(SEED_BOOL, u64::from(*b)),
            Datum::Int(n) => mix(SEED_INT, *n as u64),
            Datum::Char(c) => mix(SEED_CHAR, u64::from(*c)),
            Datum::Str(s) => {
                // FNV-1a over the bytes; bare strings are rare as memo-key
                // leaves, and string *contents* never change.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in s.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                mix(SEED_STR, h)
            }
            Datum::Sym(s) => mix(SEED_SYM, s.digest()),
            Datum::Pair(p) => p.digest,
        }
    }

    /// Constructs a proper list from an iterator.
    pub fn list<I>(items: I) -> Datum
    where
        I: IntoIterator<Item = Datum>,
        I::IntoIter: DoubleEndedIterator,
    {
        items
            .into_iter()
            .rev()
            .fold(Datum::Nil, |acc, d| Datum::cons(d, acc))
    }

    /// Constructs a symbol datum.
    pub fn sym(name: &str) -> Datum {
        Datum::Sym(Symbol::new(name))
    }

    /// Constructs a string datum.
    pub fn string(s: &str) -> Datum {
        Datum::Str(Arc::from(s))
    }

    /// The `car` of a pair, if this is a pair.
    pub fn car(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.car),
            _ => None,
        }
    }

    /// The `cdr` of a pair, if this is a pair.
    pub fn cdr(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.cdr),
            _ => None,
        }
    }

    /// True for `()`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::Nil)
    }

    /// True for a pair.
    pub fn is_pair(&self) -> bool {
        matches!(self, Datum::Pair(_))
    }

    /// True if this datum is a proper list.
    pub fn is_list(&self) -> bool {
        let mut d = self;
        loop {
            match d {
                Datum::Nil => return true,
                Datum::Pair(p) => d = &p.cdr,
                _ => return false,
            }
        }
    }

    /// The length of a proper list, or `None` for non-lists.
    pub fn list_len(&self) -> Option<usize> {
        let mut n = 0;
        let mut d = self;
        loop {
            match d {
                Datum::Nil => return Some(n),
                Datum::Pair(p) => {
                    n += 1;
                    d = &p.cdr;
                }
                _ => return None,
            }
        }
    }

    /// Iterates over the elements of a (possibly improper) list; the
    /// iterator yields the cars and stops at the first non-pair tail, which
    /// can be retrieved with [`ListIter::tail`].
    pub fn iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }

    /// Collects a proper list into a vector; `None` if improper.
    pub fn to_vec(&self) -> Option<Vec<Datum>> {
        let mut out = Vec::new();
        let mut it = self.iter();
        for d in it.by_ref() {
            out.push(d.clone());
        }
        if it.tail().is_nil() {
            Some(out)
        } else {
            None
        }
    }

    /// If this is a proper list whose head is the symbol `head`, returns the
    /// remaining elements.
    pub fn as_form(&self, head: &str) -> Option<Vec<Datum>> {
        let v = self.to_vec()?;
        match v.first() {
            Some(Datum::Sym(s)) if s.as_str() == head => Some(v[1..].to_vec()),
            _ => None,
        }
    }

    /// The symbol name, if this is a symbol.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self {
            Datum::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Datum::Bool(false))
    }

    /// True for data that evaluate to themselves in Scheme (numbers,
    /// booleans, characters, strings).
    pub fn is_self_evaluating(&self) -> bool {
        matches!(
            self,
            Datum::Int(_) | Datum::Bool(_) | Datum::Char(_) | Datum::Str(_) | Datum::Unspec
        )
    }

    /// Structural size (number of pairs plus atoms), useful for tests and
    /// code-growth accounting.
    pub fn size(&self) -> usize {
        match self {
            Datum::Pair(p) => 1 + p.car.size() + p.cdr.size(),
            _ => 1,
        }
    }
}

impl Hash for Datum {
    /// Hashes the cached structural digest — one `u64` write, regardless
    /// of how deep the datum is.
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest());
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Self {
        Datum::Int(n)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Self {
        Datum::Bool(b)
    }
}

impl From<Symbol> for Datum {
    fn from(s: Symbol) -> Self {
        Datum::Sym(s)
    }
}

impl From<&str> for Datum {
    /// Interprets the string as a *symbol* name (the common case when
    /// building syntax); use [`Datum::string`] for string literals.
    fn from(s: &str) -> Self {
        Datum::sym(s)
    }
}

impl FromIterator<Datum> for Datum {
    fn from_iter<I: IntoIterator<Item = Datum>>(iter: I) -> Self {
        Datum::list(iter.into_iter().collect::<Vec<_>>())
    }
}

/// Iterator over the cars of a list datum; see [`Datum::iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    cur: &'a Datum,
}

impl<'a> ListIter<'a> {
    /// The tail at which iteration stopped (`Nil` for proper lists).
    pub fn tail(&self) -> &'a Datum {
        self.cur
    }
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Datum;

    fn next(&mut self) -> Option<&'a Datum> {
        match self.cur {
            Datum::Pair(p) => {
                self.cur = &p.cdr;
                Some(&p.car)
            }
            _ => None,
        }
    }
}

impl fmt::Debug for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Nil => f.write_str("()"),
            Datum::Unspec => f.write_str("#!unspecific"),
            Datum::Bool(true) => f.write_str("#t"),
            Datum::Bool(false) => f.write_str("#f"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Char(c) => match c {
                ' ' => f.write_str("#\\space"),
                '\n' => f.write_str("#\\newline"),
                '\t' => f.write_str("#\\tab"),
                c => write!(f, "#\\{c}"),
            },
            Datum::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Datum::Sym(s) => write!(f, "{s}"),
            Datum::Pair(_) => {
                // Print quote sugar back.
                if let (Some(Datum::Sym(head)), Some(2)) = (self.car(), self.list_len()) {
                    let sugar = match head.as_str() {
                        "quote" => Some("'"),
                        "quasiquote" => Some("`"),
                        "unquote" => Some(","),
                        "unquote-splicing" => Some(",@"),
                        _ => None,
                    };
                    if let Some(s) = sugar {
                        let arg = self.cdr().and_then(|d| d.car()).expect("len-2 list");
                        return write!(f, "{s}{arg}");
                    }
                }
                f.write_str("(")?;
                let mut it = self.iter();
                let mut first = true;
                for d in it.by_ref() {
                    if !first {
                        f.write_str(" ")?;
                    }
                    first = false;
                    write!(f, "{d}")?;
                }
                if !it.tail().is_nil() {
                    write!(f, " . {}", it.tail())?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(items: &[Datum]) -> Datum {
        Datum::list(items.to_vec())
    }

    #[test]
    fn list_construction_and_access() {
        let d = l(&[Datum::from(1), Datum::from(2), Datum::from(3)]);
        assert_eq!(d.list_len(), Some(3));
        assert!(d.is_list());
        assert_eq!(d.car(), Some(&Datum::Int(1)));
        assert_eq!(d.cdr().unwrap().list_len(), Some(2));
    }

    #[test]
    fn improper_list_detection() {
        let d = Datum::cons(Datum::from(1), Datum::from(2));
        assert!(!d.is_list());
        assert_eq!(d.list_len(), None);
        assert_eq!(d.to_vec(), None);
        let mut it = d.iter();
        assert_eq!(it.next(), Some(&Datum::Int(1)));
        assert_eq!(it.next(), None);
        assert_eq!(it.tail(), &Datum::Int(2));
    }

    #[test]
    fn display_round_shapes() {
        assert_eq!(Datum::Nil.to_string(), "()");
        assert_eq!(Datum::from(true).to_string(), "#t");
        assert_eq!(Datum::from(-42).to_string(), "-42");
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::string("a\"b\\c\n").to_string(), "\"a\\\"b\\\\c\\n\"");
        let d = Datum::cons(Datum::from(1), Datum::cons(Datum::from(2), Datum::from(3)));
        assert_eq!(d.to_string(), "(1 2 . 3)");
    }

    #[test]
    fn quote_sugar_prints_back() {
        let d = l(&[Datum::sym("quote"), Datum::sym("x")]);
        assert_eq!(d.to_string(), "'x");
        let d = l(&[
            Datum::sym("quasiquote"),
            l(&[Datum::sym("unquote"), Datum::sym("x")]),
        ]);
        assert_eq!(d.to_string(), "`,x");
    }

    #[test]
    fn as_form_matches_heads() {
        let d = l(&[Datum::sym("define"), Datum::sym("x"), Datum::from(1)]);
        let rest = d.as_form("define").unwrap();
        assert_eq!(rest.len(), 2);
        assert!(d.as_form("lambda").is_none());
        assert!(Datum::from(3).as_form("define").is_none());
    }

    #[test]
    fn truthiness_is_scheme_style() {
        assert!(Datum::Int(0).is_truthy());
        assert!(Datum::Nil.is_truthy());
        assert!(!Datum::Bool(false).is_truthy());
    }

    #[test]
    fn datum_is_hashable_and_eq() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(l(&[Datum::from(1), Datum::sym("a")]), "v");
        assert_eq!(m.get(&l(&[Datum::from(1), Datum::sym("a")])), Some(&"v"));
    }

    #[test]
    fn size_counts_pairs_and_atoms() {
        assert_eq!(Datum::from(1).size(), 1);
        assert_eq!(l(&[Datum::from(1), Datum::from(2)]).size(), 5);
    }

    #[test]
    fn digest_is_structural() {
        // Equal data have equal digests, however they were built.
        let a = l(&[Datum::from(1), Datum::sym("x"), Datum::Nil]);
        let b = Datum::cons(
            Datum::from(1),
            Datum::cons(Datum::sym("x"), Datum::cons(Datum::Nil, Datum::Nil)),
        );
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        // Different shapes differ (overwhelmingly likely).
        assert_ne!(a.digest(), l(&[Datum::from(1), Datum::sym("y")]).digest());
        assert_ne!(Datum::Nil.digest(), Datum::from(0).digest());
        assert_ne!(Datum::from(1).digest(), l(&[Datum::from(1)]).digest());
        // Symbol leaves digest by name, so the value is reproducible from
        // structure alone (no dependence on interner insertion order).
        assert_eq!(Datum::sym("abc").digest(), Datum::sym("abc").digest());
    }

    #[test]
    fn digest_of_deep_pair_is_cached() {
        // Building once then reading digest repeatedly must agree with a
        // structural recomputation via a fresh identical tree.
        let mut d = Datum::Nil;
        for i in 0..200 {
            d = Datum::cons(Datum::from(i), d);
        }
        let mut e = Datum::Nil;
        for i in 0..200 {
            e = Datum::cons(Datum::from(i), e);
        }
        assert_eq!(d.digest(), e.digest());
        assert_eq!(d, e);
    }
}
