//! Serving-layer throughput: requests/sec through the `SpecService`,
//! cold (every request specializes) vs. warm (every request hits the
//! cache), single-threaded vs. a 4-worker pool.
//!
//! The paper's economics (Sec. 7: specialization pays for itself after a
//! handful of runs) scale across cores only if concurrent requests don't
//! serialize and repeated requests don't re-specialize; this benchmark
//! tracks both. Results land in `BENCH_serve.json` so successive PRs can
//! compare trajectories.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use two4one::{Datum, Division, Pgg, BT};
use two4one_bench::harness::{self, Criterion};
use two4one_bench::{criterion_group, criterion_main};
use two4one_server::{FillHook, ServeConfig, ServeError, SpecRequest, SpecService};

/// Distinct requests per batch: enough to keep 4 workers busy, small
/// enough that a cold sample stays fast.
const REQUESTS: i64 = 24;

/// Unfold depth floor per request: deep enough that specializer work
/// dominates the service's fixed per-fill bookkeeping, so the cold rows
/// compare engines rather than registry overhead.
const DEPTH: i64 = 100;

fn requests() -> Vec<SpecRequest> {
    let pgg = Pgg::new();
    let program = pgg
        .parse("(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))")
        .expect("parse power");
    let ext = pgg
        .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
        .expect("cogen power");
    (1..=REQUESTS)
        .map(|n| SpecRequest::new(ext.clone(), vec![Datum::Int(DEPTH + n)]))
        .collect()
}

/// Drains `reqs` through a service with `jobs` workers; `fresh` controls
/// cold (new service per drain) vs. warm (reuse one pre-filled service).
fn drain(service: &SpecService, reqs: &[SpecRequest], jobs: usize) {
    for r in service.specialize_many(reqs, jobs) {
        black_box(r.expect("serve request"));
    }
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    let reqs = requests();

    // Cold cache: every request runs the specializer.
    for jobs in [1usize, 4] {
        let reqs = reqs.clone();
        group.bench_function(format!("cold/{jobs}-thread"), move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let service = SpecService::new();
                    let t0 = Instant::now();
                    drain(&service, &reqs, jobs);
                    total += t0.elapsed();
                }
                total
            })
        });
    }

    // Cold misses through the compiled gen-ext: the same 24 distinct
    // requests against a *registered* program. The first (untimed) fill
    // stages the generating extension to bytecode — the one-time build
    // cost `spec.rs` reports as `genext-build` — and the timed drain is
    // then 24 pure cache misses served by the machine, directly
    // comparable to `cold/1-thread` (interpreted walker, same batch).
    {
        let pgg = Pgg::new();
        let program = pgg
            .parse("(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))")
            .expect("parse power");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen power");
        group.bench_function("cold-genext/1-thread", move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let service = SpecService::new();
                    service.register("bench", &ext);
                    service
                        .specialize_named("bench", &[Datum::Int(0)])
                        .expect("build fill");
                    let t0 = Instant::now();
                    for n in 1..=REQUESTS {
                        black_box(
                            service
                                .specialize_named("bench", &[Datum::Int(DEPTH + n)])
                                .expect("named fill"),
                        );
                    }
                    total += t0.elapsed();
                    assert_eq!(service.stats().genext_builds, 1);
                }
                total
            })
        });
    }

    // Tier-0 first touch: the same cold batch against a tiered service.
    // Every request is a first touch answered with the generic image;
    // the 2+ ms specializer never runs on the request path. The huge
    // threshold keeps the promotion workers idle so the row isolates
    // the first-touch latency win over `cold/1-thread`.
    {
        let reqs = reqs.clone();
        group.bench_function("tier0-first-touch/1-thread", move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let service = SpecService::with_config(ServeConfig {
                        tier0: true,
                        promote_after: u64::MAX,
                        ..ServeConfig::default()
                    });
                    let t0 = Instant::now();
                    drain(&service, &reqs, 1);
                    total += t0.elapsed();
                    let tier = service.tier_stats();
                    assert_eq!(tier.tier0_served, REQUESTS as u64);
                    assert_eq!(service.stats().spec_runs, 0);
                }
                total
            })
        });
    }

    // Post-promotion steady state: a tiered service whose whole batch
    // has been hot-swapped to specialized images by the background
    // workers. The convergence claim: once promotion lands, warm
    // traffic must match an eagerly-specialized cache (`warm/4-thread`)
    // — the tier checks on the hit path cost nothing measurable.
    let promoted_service = SpecService::with_config(ServeConfig {
        tier0: true,
        promote_after: 1,
        promote_workers: 4,
        ..ServeConfig::default()
    });
    {
        drain(&promoted_service, &reqs, 4); // generic fills
        drain(&promoted_service, &reqs, 4); // hits cross the threshold
        let give_up = Instant::now() + Duration::from_secs(30);
        while promoted_service.tier_stats().promotions < REQUESTS as u64 {
            assert!(
                Instant::now() < give_up,
                "promotion never converged: {:?}",
                promoted_service.tier_stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let promoted_service = &promoted_service;
        let reqs = reqs.clone();
        group.bench_function("post-promotion/4-thread", move |b| {
            b.iter(|| drain(promoted_service, &reqs, 4))
        });
    }

    // Warm cache: the same batch again is pure cache traffic.
    let warm_service = SpecService::new();
    drain(&warm_service, &reqs, 4);
    {
        let warm_service = &warm_service;
        let reqs = reqs.clone();
        group.bench_function("warm/4-thread", move |b| {
            b.iter(|| drain(warm_service, &reqs, 4))
        });
    }

    // Observability overhead: the same warm traffic with span/latency
    // recording switched off. The gap between this row and the one above
    // is what the metrics layer costs on the hottest path.
    {
        let warm_service = &warm_service;
        let reqs = reqs.clone();
        group.bench_function("warm-noobs/4-thread", move |b| {
            two4one::obs::set_enabled(false);
            b.iter(|| drain(warm_service, &reqs, 4));
            two4one::obs::set_enabled(true);
        });
    }

    // Warm restart: a fresh service revived from a crash-safe snapshot
    // serves the whole batch as cache hits — restore cost included.
    let snapshot = {
        let filled = SpecService::new();
        drain(&filled, &reqs, 4);
        filled.snapshot_bytes()
    };
    {
        let reqs = reqs.clone();
        group.bench_function("warm-restart/4-thread", move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let service = SpecService::new();
                    let t0 = Instant::now();
                    let report = service.restore_bytes(&snapshot);
                    drain(&service, &reqs, 4);
                    total += t0.elapsed();
                    assert_eq!(report.restored, REQUESTS as u64);
                    assert_eq!(service.stats().spec_runs, 0);
                }
                total
            })
        });
    }

    // Redefinition: invalidating a fully-warm program (24 cached
    // specializations) is backedge surgery on the registry and cache
    // shards, not re-specialization — it must cost nothing next to the
    // cold fills it obsoletes.
    {
        group.bench_function("redefine/24-entries", |b| {
            b.iter_custom(|iters| {
                let pgg = Pgg::new();
                let generation = |e: u64| {
                    let src =
                        format!("(define (power n x) (if (= n 0) {e} (* x (power (- n 1) x))))");
                    let program = pgg.parse(&src).expect("parse generation");
                    pgg.cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
                        .expect("cogen generation")
                };
                let service = SpecService::new();
                service.register("bench", &generation(1));
                let mut total = Duration::ZERO;
                for epoch in 2..=(iters + 1) {
                    // Untimed: warm every entry of the live generation,
                    // and prepare the next one.
                    for n in 1..=REQUESTS {
                        service
                            .specialize_named("bench", &[Datum::Int(n)])
                            .expect("warm fill");
                    }
                    let next = generation(epoch);
                    let t0 = Instant::now();
                    let outcome = service.redefine("bench", &next);
                    total += t0.elapsed();
                    assert_eq!(outcome.invalidated, REQUESTS as u64);
                }
                total
            })
        });
    }

    // Overload shedding: with the gate saturated, rejecting the excess
    // must stay cheap — shedding is the mechanism that protects latency.
    {
        let latch = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let hook_latch = latch.clone();
        let hook_entered = entered.clone();
        let service = SpecService::with_config(ServeConfig {
            max_inflight: 1,
            queue_bound: 0,
            fill_hook: Some(FillHook::new(move || {
                hook_entered.store(true, Ordering::SeqCst);
                let (open, cv) = &*hook_latch;
                let mut open = open.lock().expect("latch lock");
                while !*open {
                    open = cv.wait(open).expect("latch wait");
                }
            })),
            ..ServeConfig::default()
        });
        let burst = requests();
        std::thread::scope(|scope| {
            let svc = &service;
            let blocker = &burst[0];
            scope.spawn(move || {
                let _ = svc.specialize_request(blocker);
            });
            while !entered.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let excess = &burst[1..];
            group.bench_function("overload-shed/reject", |b| {
                b.iter(|| {
                    for r in excess {
                        let e = svc.specialize_request(r).expect_err("gate full");
                        black_box(matches!(e, ServeError::Overloaded { .. }));
                    }
                })
            });
            let (open, cv) = &*latch;
            *open.lock().expect("latch lock") = true;
            cv.notify_all();
        });
    }

    report(&group);
}

/// Prints requests/sec, checks the scaling acceptance floor, and writes
/// the trajectory file.
fn report(group: &harness::Group) {
    let rate = |id: &str| -> Option<f64> {
        group
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| REQUESTS as f64 / r.median.as_secs_f64())
    };
    let cold1 = rate("cold/1-thread").expect("cold/1 result");
    let cold4 = rate("cold/4-thread").expect("cold/4 result");
    let coldgen = rate("cold-genext/1-thread").expect("cold-genext result");
    let tier0 = rate("tier0-first-touch/1-thread").expect("tier0-first-touch result");
    let postpromo = rate("post-promotion/4-thread").expect("post-promotion result");
    let warm4 = rate("warm/4-thread").expect("warm/4 result");
    let warm4_noobs = rate("warm-noobs/4-thread").expect("warm-noobs result");
    let restart4 = rate("warm-restart/4-thread").expect("warm-restart result");
    let redefine = rate("redefine/24-entries").expect("redefine result");
    let shed = rate("overload-shed/reject").expect("overload-shed result");
    println!("  cold 1-thread: {cold1:.0} req/s");
    println!("  cold 4-thread: {cold4:.0} req/s ({:.2}x)", cold4 / cold1);
    println!(
        "  cold-genext 1-thread (24 compiled misses): {coldgen:.0} req/s \
         ({:.2}x cold)",
        coldgen / cold1
    );
    println!(
        "  tier0 first touch 1-thread: {tier0:.0} req/s ({:.1}x cold)",
        tier0 / cold1
    );
    println!("  post-promotion 4-thread: {postpromo:.0} req/s",);
    println!(
        "  warm 4-thread: {warm4:.0} req/s ({:.0}x cold)",
        warm4 / cold1
    );
    println!(
        "  warm 4-thread, metrics off: {warm4_noobs:.0} req/s \
         (obs overhead {:.1}%)",
        (1.0 - warm4 / warm4_noobs) * 100.0
    );
    println!(
        "  warm restart (restore + serve): {restart4:.0} req/s ({:.0}x cold)",
        restart4 / cold1
    );
    println!("  redefine (24-entry invalidation): {redefine:.0} entries/s");
    println!("  overload shed: {shed:.0} rejections/s");

    // Anchor to the workspace root so the trajectory file lands in the
    // same place regardless of cargo's bench working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    harness::write_json(path, group).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");

    // Acceptance floor: 4 cold workers must not be slower than one
    // (small tolerance for core-starved CI machines). On a single-core
    // box the pool can only add scheduling overhead, so the floor is
    // meaningless there and skipped.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= 2 {
        assert!(
            cold4 >= cold1 * 0.9,
            "4-thread cold throughput regressed below single-thread: \
             {cold4:.0} vs {cold1:.0} req/s"
        );
    } else {
        println!("  (single-core machine: 4-thread scaling floor skipped)");
    }
    // A registered program's cold misses run through the compiled
    // gen-ext: the drain must beat the interpreted walker on the same
    // batch (the machine's 2x engine win, less the named-path registry
    // overhead these tiny specializations magnify).
    assert!(
        coldgen > cold1,
        "compiled gen-ext cold misses slower than interpreted: \
         {coldgen:.0} vs {cold1:.0} req/s"
    );
    // First-touch economics of the tiered pipeline: answering a cold
    // miss with the generic image must beat blocking on the specializer
    // by at least 5x (it runs at ~20x on an idle machine; the floor
    // leaves room for shared CI hardware).
    assert!(
        tier0 >= cold1 * 5.0,
        "Tier-0 first touch not 5x over cold: {tier0:.0} vs {cold1:.0} req/s"
    );
    // Convergence: once the background workers have hot-swapped every
    // entry, tiered warm traffic must be within 10% of an eagerly
    // specialized cache — the hit-path tier checks are free.
    assert!(
        postpromo >= warm4 * 0.90,
        "post-promotion warm throughput lags eager specialization: \
         {postpromo:.0} vs {warm4:.0} req/s"
    );
    // The warm path does zero specializer work, so it must dominate cold.
    assert!(
        warm4 > cold4,
        "warm cache no faster than cold: {warm4:.0} vs {cold4:.0} req/s"
    );
    // Observability budget: warm-hit throughput with metrics recording
    // on must stay within a small factor of the metrics-off rate (the
    // tolerance is looser than the 5% design budget because both rows
    // are short, noisy samples on shared CI hardware).
    assert!(
        warm4 >= warm4_noobs * 0.80,
        "metrics overhead on the warm path too high: {warm4:.0} vs {warm4_noobs:.0} req/s"
    );
    // A snapshot-restored cache also skips the specializer entirely;
    // restore cost must not eat the advantage.
    assert!(
        restart4 > cold4,
        "warm restart no faster than cold: {restart4:.0} vs {cold4:.0} req/s"
    );
    // Redefinition is registry + cache surgery, never re-specialization:
    // invalidating entries must beat cold-filling them by a wide margin.
    assert!(
        redefine > cold1 * 10.0,
        "redefinition too slow: {redefine:.0} entries/s vs cold {cold1:.0} req/s"
    );
    // Shedding is the overload safety valve: rejections must be at least
    // as cheap as cold specialization by a wide margin.
    assert!(
        shed > cold1 * 10.0,
        "overload shedding too slow: {shed:.0} rejections/s vs cold {cold1:.0} req/s"
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
