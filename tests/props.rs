//! Property-based tests over random programs and data, driven by the
//! in-repo deterministic generator (`two4one_testkit::Rng`): each test
//! sweeps a fixed seed range, and any failure message names the seed that
//! reproduces it.
//!
//! Programs are generated as `Send`-able sketches and materialized inside
//! a large-stack worker thread (syntax trees use `Rc` internally and the
//! engines recurse deeply). Random programs can diverge, so every engine
//! runs with fuel; a case where any engine times out is skipped — the
//! properties quantify over the *decidable* cases.

use two4one::{compile, with_stack_size, Datum, Image, Interp, Machine, Symbol};
use two4one_testkit::{gen_datum, gen_sketch, program_from_sketch, Rng, Sketch};

// The tree-walking interpreter nests a Rust frame per non-tail call, so
// divergent non-tail recursion consumes stack proportional to fuel; keep
// fuel small enough to hit the meter before the 2 GiB worker stack.
const INTERP_FUEL: u64 = 100_000;
const VM_FUEL: u64 = 2_000_000;
// Debug-build CPS frames are large; keep unfold depth well under the
// 512 MiB worker stack.
const PE_FUEL: u64 = 6_000;

const CASES: u64 = 64;

/// Outcome of running a program under some engine.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Value plus collected output.
    Val(Option<Datum>, String),
    /// A runtime error.
    Fault,
    /// Fuel ran out — undecidable, skip.
    Timeout,
}

fn run_interp(p: &two4one::cs::Program, args: &[Datum]) -> Outcome {
    let mut i = Interp::new(p).with_fuel(INTERP_FUEL);
    let argv = args.iter().map(two4one_interp_value).collect();
    match i.call_global(&Symbol::new("main"), argv) {
        Ok(v) => Outcome::Val(v.to_datum(), i.output),
        Err(two4one::RtError::FuelExhausted) => Outcome::Timeout,
        Err(_) => Outcome::Fault,
    }
}

fn two4one_interp_value(d: &Datum) -> two4one::InterpValue {
    two4one::InterpValue::from(d)
}

fn run_vm(image: &Image, args: &[Datum]) -> Outcome {
    let mut m = Machine::load(image).with_fuel(VM_FUEL);
    let argv = args.iter().map(two4one::Value::from).collect();
    match m.call_global(&Symbol::new("main"), argv) {
        Ok(v) => Outcome::Val(v.to_datum(), m.output),
        Err(two4one::VmError::FuelExhausted) => Outcome::Timeout,
        Err(_) => Outcome::Fault,
    }
}

fn agree(name: &str, a: &Outcome, b: &Outcome) -> Result<(), String> {
    match (a, b) {
        (Outcome::Timeout, _) | (_, Outcome::Timeout) => Ok(()),
        _ if a == b => Ok(()),
        _ => Err(format!("{name}: {a:?} vs {b:?}")),
    }
}

/// One generated case: two program sketches and two small integer args.
fn gen_case(seed: u64) -> (Sketch, Sketch, i64, i64) {
    let mut rng = Rng::new(seed);
    let m = gen_sketch(&mut rng, 5);
    let g = gen_sketch(&mut rng, 4);
    let a = rng.range_i64(-50, 50);
    let b = rng.range_i64(-50, 50);
    (m, g, a, b)
}

/// Engine agreement on random programs.
fn check_engines_agree(m: Sketch, g: Sketch, a: i64, b: i64) -> Result<(), String> {
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let args = [Datum::Int(a), Datum::Int(b)];
        let expect = run_interp(&p, &args);
        let image = compile(&p, "main").map_err(|e| format!("compile: {e}"))?;
        let got = run_vm(&image, &args);
        agree("interp-vs-vm", &expect, &got)
    })
}

fn check_normalizer(m: Sketch, g: Sketch) -> Result<(), String> {
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let anf = two4one::anf::normalize(&p);
        for d in &anf.defs {
            if !two4one::anf::cs_is_anf(&d.body.to_cs()) {
                return Err(format!("not ANF: {}", d.body));
            }
        }
        let args = [Datum::Int(3), Datum::Int(4)];
        agree(
            "normalize",
            &run_interp(&p, &args),
            &run_interp(&anf.to_cs(), &args),
        )?;
        // The optimizer must preserve semantics and the ANF grammar.
        let opt = two4one::anf::optimize(&anf);
        for d in &opt.defs {
            if !two4one::anf::cs_is_anf(&d.body.to_cs()) {
                return Err(format!("optimizer broke ANF: {}", d.body));
            }
        }
        agree(
            "optimize",
            &run_interp(&anf.to_cs(), &args),
            &run_interp(&opt.to_cs(), &args),
        )
    })
}

fn check_all_dynamic_pe(m: Sketch, g: Sketch, a: i64, b: i64) -> Result<(), String> {
    // Debug builds spend ~10 large CPS frames per unfold; give this worker
    // extra address space on top of the lowered fuel.
    with_stack_size(2 * 1024 * 1024 * 1024, move || {
        let p = program_from_sketch(&m, &g);
        let pgg = two4one::Pgg::new().unfold_fuel(PE_FUEL).spec_depth(30_000);
        let genext = pgg
            .cogen(&p, "main", &two4one::Division::all_dynamic(2))
            .map_err(|e| format!("cogen: {e}"))?;
        let args = [Datum::Int(a), Datum::Int(b)];
        let expect = run_interp(&p, &args);
        match genext.specialize_object(&[]) {
            Ok(image) => agree("pe", &expect, &run_vm(&image, &args)),
            // Unfold-fuel/depth exhaustion = spec-time divergence or
            // work exceeding the test budget: undecidable, skip.
            Err(two4one::Error::Pe(two4one::PeError::UnfoldLimit(_)))
            | Err(two4one::Error::Pe(two4one::PeError::DepthLimit { .. })) => Ok(()),
            // Speculative static evaluation may fault where the program
            // faults at run time.
            Err(e) => {
                if matches!(expect, Outcome::Fault | Outcome::Timeout) {
                    Ok(())
                } else {
                    Err(format!("specializer failed ({e}) on a healthy program"))
                }
            }
        }
    })
}

#[test]
fn interpreter_and_vm_agree_on_random_programs() {
    for seed in 0..CASES {
        let (m, g, a, b) = gen_case(seed);
        if let Err(e) = check_engines_agree(m, g, a, b) {
            panic!("seed {seed}: {e}");
        }
    }
}

#[test]
fn normalizer_output_is_valid_anf() {
    for seed in 0..CASES {
        let (m, g, _, _) = gen_case(seed);
        if let Err(e) = check_normalizer(m, g) {
            panic!("seed {seed}: {e}");
        }
    }
}

#[test]
fn all_dynamic_specialization_preserves_semantics() {
    for seed in 0..CASES {
        let (m, g, a, b) = gen_case(seed);
        if let Err(e) = check_all_dynamic_pe(m, g, a / 3, b / 3) {
            panic!("seed {seed}: {e}");
        }
    }
}

#[test]
fn reader_printer_roundtrip() {
    for seed in 0..200 {
        let d = gen_datum(&mut Rng::new(seed), 4);
        let text = d.to_string();
        let back = two4one::reader::read_one(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse `{text}`: {e}"));
        assert_eq!(back, d, "seed {seed}");
    }
}

#[test]
fn pretty_printer_roundtrip() {
    for seed in 0..200 {
        let d = gen_datum(&mut Rng::new(seed), 4);
        let text = two4one::printer::pretty(&d, 30);
        let back = two4one::reader::read_one(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse pretty `{text}`: {e}"));
        assert_eq!(back, d, "seed {seed}");
    }
}
