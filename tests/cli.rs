//! End-to-end tests of the `t4o` command-line driver and the REPL,
//! exercising the real binaries as a user would.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn t4o() -> Command {
    Command::new(env!("CARGO_BIN_EXE_t4o"))
}

fn tmp_dir() -> std::path::PathBuf {
    // Tests run in parallel within one process, so a pid-only name would
    // be shared — and deleted out from under still-running tests. A
    // per-call counter keeps every test in its own directory.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("two4one-cli-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn t4o_compile_run_spec_dis_workflow() {
    let dir = tmp_dir();
    let src = dir.join("pow.scm");
    std::fs::write(
        &src,
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
    )
    .unwrap();
    let obj = dir.join("pow.t4o");

    // compile → object file
    let out = t4o()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "-o",
            obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(obj.exists());

    // run the object file
    let out = t4o()
        .args([
            "run",
            obj.to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "2",
            "--arg",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1024");

    // specialize to source on stdout
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("define"), "{text}");
    assert!(!text.contains("power%0 x"), "{text}");

    // specialize straight to an object file and run it
    let spec_obj = dir.join("pow3.t4o");
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "3",
            "-o",
            spec_obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = t4o()
        .args([
            "run",
            spec_obj.to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "125");

    // disassemble
    let out = t4o()
        .args(["dis", obj.to_str().unwrap(), "--entry", "power"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("jump-if-false"));

    // bad usage fails with a message
    let out = t4o().args(["run", obj.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--entry"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_grammar_compiles_a_recognizer() {
    let dir = tmp_dir();
    let gsrc = dir.join("word.g");
    std::fs::write(&gsrc, "((word (plus letter))\n (letter (alt a b c)))").unwrap();

    // --grammar --source prints the residual recognizer: the grammar
    // walk (gm-lookup / gm-match) is specialized away, the per-
    // nonterminal residual functions remain.
    let out = t4o()
        .args(["spec", gsrc.to_str().unwrap(), "--grammar", "--source"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gm-nt"), "{text}");
    assert!(!text.contains("gm-lookup"), "{text}");
    assert!(!text.contains("gm-match"), "{text}");

    // --grammar -o writes a runnable object: the recognizer accepts and
    // rejects like the matcher interpreter would.
    let obj = dir.join("word.t4o");
    let out = t4o()
        .args([
            "spec",
            gsrc.to_str().unwrap(),
            "--grammar",
            "--optimize",
            "-o",
            obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for (input, expect) in [(r"(#\a #\b #\c)", "#t"), (r"(#\a #\d)", "#f"), ("()", "#f")] {
        let out = t4o()
            .args([
                "run",
                obj.to_str().unwrap(),
                "--entry",
                "gm-main",
                "--arg",
                input,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), expect);
    }

    // The workload owns the entry and division.
    let out = t4o()
        .args([
            "spec",
            gsrc.to_str().unwrap(),
            "--grammar",
            "--entry",
            "word",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--grammar"));

    // Grammar defects are diagnosed, not panicked on.
    std::fs::write(&gsrc, "((word word))").unwrap();
    let out = t4o()
        .args(["spec", gsrc.to_str().unwrap(), "--grammar", "--source"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad grammar"), "{err}");
    assert!(err.contains("left-recursive"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_generic_compiler_flag() {
    let dir = tmp_dir();
    let src = dir.join("g.scm");
    std::fs::write(&src, "(define (g a) (+ (if a 1 2) 10))").unwrap();
    let out = t4o()
        .args([
            "run",
            src.to_str().unwrap(),
            "--entry",
            "g",
            "--generic",
            "--arg",
            "#f",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "12");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_rejects_malformed_inputs_with_a_message() {
    let dir = tmp_dir();

    // Unreadable source text: typed reader error, nonzero exit.
    let bad_src = dir.join("broken.scm");
    std::fs::write(&bad_src, "(define (f x").unwrap();
    let out = t4o()
        .args(["run", bad_src.to_str().unwrap(), "--entry", "f"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("t4o: "), "{err}");

    // Garbage object file: rejected as not an object file.
    let garbage = dir.join("garbage.t4o");
    std::fs::write(&garbage, b"this is not an object file").unwrap();
    let out = t4o()
        .args(["run", garbage.to_str().unwrap(), "--entry", "f"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("object file"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Bit-flipped object file: the checksum catches it.
    let good_src = dir.join("ok.scm");
    std::fs::write(&good_src, "(define (f x) (* x x))").unwrap();
    let obj = dir.join("ok.t4o");
    let out = t4o()
        .args([
            "compile",
            good_src.to_str().unwrap(),
            "--entry",
            "f",
            "-o",
            obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut bytes = std::fs::read(&obj).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&obj, &bytes).unwrap();
    let out = t4o()
        .args(["run", obj.to_str().unwrap(), "--entry", "f", "--arg", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Malformed numeric flag value.
    let out = t4o()
        .args([
            "run",
            good_src.to_str().unwrap(),
            "--entry",
            "f",
            "--fuel",
            "lots",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--fuel"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_run_limits_and_spec_fallback() {
    let dir = tmp_dir();
    let src = dir.join("loop.scm");
    std::fs::write(&src, "(define (spin n) (if (= n 0) 'done (spin (- n 1))))").unwrap();

    // A metered run that cannot finish reports fuel exhaustion and fails.
    let out = t4o()
        .args([
            "run",
            src.to_str().unwrap(),
            "--entry",
            "spin",
            "--arg",
            "100000000",
            "--fuel",
            "1000",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fuel"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Specialization starved of unfold fuel: default degrades (success plus
    // a note), --strict fails with the limit error.
    let pow = dir.join("pow.scm");
    std::fs::write(
        &pow,
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
    )
    .unwrap();
    let out = t4o()
        .args([
            "spec",
            pow.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "40",
            "--unfold-fuel",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("generic fallback"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = t4o()
        .args([
            "spec",
            pow.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "40",
            "--unfold-fuel",
            "3",
            "--strict",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unfold"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_jobs_serves_batches_through_the_cache() {
    let dir = tmp_dir();
    let src = dir.join("powj.scm");
    std::fs::write(
        &src,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let prefix = dir.join("powj.t4o");

    // Four requests (one duplicated) over two workers, written to
    // numbered object files.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--jobs",
            "2",
            "--batch",
            "(2)",
            "--batch",
            "(3)",
            "--batch",
            "(2)",
            "--batch",
            "(5)",
            "-o",
            prefix.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");

    // One line per request, in order, plus a serve-stats summary showing
    // the duplicate was a cache hit (3 runs for 4 requests).
    for i in 0..4 {
        assert!(stdout.contains(&format!(";; [{i}] ")), "{stdout}");
        assert!(dir.join(format!("powj.{i}.t4o")).exists(), "{stdout}");
    }
    assert!(stdout.contains("spec_runs=3"), "{stdout}");
    assert!(stdout.contains("hits=1"), "{stdout}");
    assert!(stdout.contains("jobs=2"), "{stdout}");

    // A specialized image actually runs: 3^4 = 81.
    let out = t4o()
        .args([
            "run",
            dir.join("powj.3.t4o").to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("243"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // --jobs with a single --static tuple (no --batch) also serves.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--jobs",
            "4",
            "--static",
            "3",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("spec_runs=1"), "{stdout}");

    // --source is incompatible with batch serving and says so.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--jobs",
            "2",
            "--static",
            "3",
            "--source",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--source"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_rejects_zero_jobs_and_oversized_batches() {
    let dir = tmp_dir();
    let src = dir.join("powz.scm");
    std::fs::write(
        &src,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();

    // --jobs 0 is a usage error, caught at parse time.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--jobs",
            "0",
            "--static",
            "3",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--jobs"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --max-inflight 0 likewise.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--jobs",
            "1",
            "--max-inflight",
            "0",
            "--static",
            "3",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--max-inflight"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A batch larger than the admission queue can hold is rejected up
    // front instead of half-serving and shedding the rest: with
    // --max-inflight 1 the capacity is 1 + queue_bound (256) = 257.
    let mut args: Vec<String> = [
        "spec",
        src.to_str().unwrap(),
        "--entry",
        "power",
        "--division",
        "SD",
        "--jobs",
        "2",
        "--max-inflight",
        "1",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for n in 0..258 {
        args.push("--batch".to_string());
        args.push(format!("({n})"));
    }
    let out = t4o().args(&args).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("admission capacity"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_cache_file_warm_starts_across_processes() {
    let dir = tmp_dir();
    let src = dir.join("powc.scm");
    std::fs::write(
        &src,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let snap = dir.join("cache.t4os");
    let spec_args = |src: &std::path::Path, snap: &std::path::Path| {
        vec![
            "spec".to_string(),
            src.to_str().unwrap().to_string(),
            "--entry".to_string(),
            "power".to_string(),
            "--division".to_string(),
            "SD".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--batch".to_string(),
            "(4)".to_string(),
            "--batch".to_string(),
            "(6)".to_string(),
            "--cache-file".to_string(),
            snap.to_str().unwrap().to_string(),
        ]
    };

    // Cold process: everything misses, then the cache is snapshotted.
    let out = t4o().args(spec_args(&src, &snap)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("spec_runs=2"), "{stdout}");
    assert!(stdout.contains("snapshot written"), "{stdout}");
    assert!(snap.exists());

    // Fresh process ("after the crash"): restored entries serve every
    // request as a hit — the specializer never runs.
    let out = t4o().args(spec_args(&src, &snap)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("restored 2 entries"), "{stdout}");
    assert!(stdout.contains("spec_runs=0"), "{stdout}");
    assert!(stdout.contains("hits=2"), "{stdout}");

    // A corrupted snapshot is quarantined, not fatal: the run succeeds
    // cold and rewrites a clean snapshot.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap, &bytes).unwrap();
    let out = t4o().args(spec_args(&src, &snap)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("quarantined"), "{stdout}");
    assert!(stdout.contains("snapshot written"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_genext_file_warm_starts_across_processes() {
    let dir = tmp_dir();
    let src = dir.join("powg.scm");
    std::fs::write(
        &src,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let genext = dir.join("power.t4og");
    let cold = dir.join("cold.t4o");
    let warm = dir.join("warm.t4o");
    let walker = dir.join("walker.t4o");

    // Cold process: front end + BTA run, the gen-ext is staged to
    // bytecode, written to disk, and drives the specialization.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--static",
            "5",
            "--genext-file",
            genext.to_str().unwrap(),
            "-o",
            cold.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains(";; genext: compiled"), "{stdout}");
    assert!(stdout.contains("genext: written to"), "{stdout}");
    assert!(genext.exists());

    // Warm process: no source file, no --entry, no --division — the
    // compiled gen-ext alone carries the specializer across processes.
    let out = t4o()
        .args([
            "spec",
            "--genext-file",
            genext.to_str().unwrap(),
            "--static",
            "5",
            "-o",
            warm.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("genext: loaded from"), "{stdout}");

    // The interpreted walker, for reference.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--static",
            "5",
            "-o",
            walker.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // All three processes produced the same residual image, bit for bit.
    let cold_bytes = std::fs::read(&cold).unwrap();
    assert_eq!(cold_bytes, std::fs::read(&warm).unwrap());
    assert_eq!(cold_bytes, std::fs::read(&walker).unwrap());

    // And the warm-started residual actually runs: power_5(2) = 32.
    let out = t4o()
        .args([
            "run",
            warm.to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "2",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("32"), "{stdout}");

    // A corrupted gen-ext file fails the load with a typed error (exit
    // code, not a panic).
    let mut bytes = std::fs::read(&genext).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&genext, &bytes).unwrap();
    let out = t4o()
        .args([
            "spec",
            "--genext-file",
            genext.to_str().unwrap(),
            "--static",
            "5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("t4o:"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_genext_cache_warm_starts_across_processes() {
    let dir = tmp_dir();
    let src = dir.join("powx.scm");
    std::fs::write(
        &src,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let gxs = dir.join("genexts.t4og");
    let spec_args = |src: &std::path::Path, batch: &str| {
        vec![
            "spec".to_string(),
            src.to_str().unwrap().to_string(),
            "--entry".to_string(),
            "power".to_string(),
            "--division".to_string(),
            "SD".to_string(),
            "--name".to_string(),
            "pow".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--batch".to_string(),
            batch.to_string(),
            "--genext-cache".to_string(),
            gxs.to_str().unwrap().to_string(),
        ]
    };

    // Cold process: the first miss compiles the gen-ext; the artifact
    // cache is snapshotted after serving.
    let out = t4o().args(spec_args(&src, "(4)")).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("genext_builds=1"), "{stdout}");
    assert!(
        stdout.contains("genext-cache: snapshot written"),
        "{stdout}"
    );
    assert!(gxs.exists());

    // Fresh process, new statics (so the result cache cannot answer):
    // the restored gen-ext serves the miss without rebuilding.
    let out = t4o().args(spec_args(&src, "(6)")).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("restored 1 gen-ext(s)"), "{stdout}");
    assert!(stdout.contains("genext_builds=0"), "{stdout}");
    assert!(stdout.contains("misses=1"), "{stdout}");

    // Fresh process registering *different* source under the same name:
    // the snapshotted gen-ext no longer matches any live registration
    // and is dropped as stale — never served against the new program.
    let src2 = dir.join("powx2.scm");
    std::fs::write(
        &src2,
        "(define (power n x) (if (= n 0) 2 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let out = t4o().args(spec_args(&src2, "(4)")).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("1 stale dropped"), "{stdout}");
    assert!(stdout.contains("genext_builds=1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_deadline_flag_bounds_requests() {
    let dir = tmp_dir();
    let src = dir.join("spin.scm");
    std::fs::write(&src, "(define (spin n) (if (= n 0) 0 (spin (- n 1))))").unwrap();

    // A specialization that would unfold 50M times is cut off by the
    // request deadline and reported as such.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "spin",
            "--division",
            "S",
            "--jobs",
            "1",
            "--static",
            "50000000",
            "--deadline-ms",
            "50",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_survives_malformed_input() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Unreadable form, unbound variable, bad ,spec usage — then a working
    // definition and call, proving the session survived all of it.
    let script = "(define (f\n\
                  (no-such-function 1)\n\
                  ,spec nothing Q\n\
                  (define (sq x) (* x x))\n\
                  (sq 6)\n\
                  ,quit\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("read error") || text.contains("error"),
        "{text}"
    );
    assert!(text.contains("compiled `sq`"), "{text}");
    assert!(text.contains("36"), "{text}");
}

#[test]
fn repl_session_compiles_and_specializes() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let script = "(define (sq x) (* x x))\n\
                  (sq 9)\n\
                  (define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))\n\
                  ,spec power D S\n\
                  4\n\
                  (power 3)\n\
                  ,quit\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("compiled `sq`"), "{text}");
    assert!(text.contains("81"), "{text}");
    assert!(text.contains("residual program"), "{text}");
    assert!(text.contains("\n81\n") || text.contains("81"), "{text}");
    // power specialized to n=4, then (power 3) = 81.
    let after_spec = text.split("residual program").nth(1).unwrap_or("");
    assert!(after_spec.contains("81"), "{text}");
}

#[test]
fn repl_genext_command_specializes_through_compiled_genext() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let script = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))\n\
                  ,genext power D S\n\
                  5\n\
                  (power 2)\n\
                  ,quit\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    // The staged artifact is reported, the residual installed, and the
    // specialized power_5(2) = 32 runs.
    assert!(text.contains(";; genext: compiled"), "{text}");
    assert!(text.contains("residual program"), "{text}");
    let after = text.split("residual program").nth(1).unwrap_or("");
    assert!(after.contains("32"), "{text}");
}

#[test]
fn t4o_stats_emits_the_full_prometheus_page() {
    let dir = tmp_dir();
    let src = dir.join("pow.scm");
    std::fs::write(
        &src,
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
    )
    .unwrap();

    // A workload run: the page must carry real serve traffic.
    let out = t4o()
        .args([
            "stats",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--jobs",
            "2",
            "--batch",
            "(2)",
            "--batch",
            "(3)",
            "--batch",
            "(2)",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let page = String::from_utf8_lossy(&out.stdout);
    for family in [
        "t4o_serve_requests_total 3",
        "t4o_serve_misses_total 2",
        "t4o_spec_fallbacks_total{kind=\"unfold-fuel\"} 0",
        "t4o_breaker_open 0",
        "t4o_phase_nanos_bucket{phase=\"specialize\",le=\"+Inf\"} 2",
        "t4o_serve_request_nanos_count 3",
    ] {
        assert!(page.contains(family), "missing `{family}` in:\n{page}");
    }
    // The duplicate batch is a hit or (if it raced the first fill) a
    // coalesced wait — either way exactly one request skipped the
    // specializer.
    let count_of = |name: &str| -> u64 {
        page.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing `{name}` in:\n{page}"))
    };
    assert_eq!(
        count_of("t4o_serve_hits_total") + count_of("t4o_serve_coalesced_total"),
        1,
        "{page}"
    );
    // Human summary goes to stderr, keeping stdout valid exposition.
    assert!(String::from_utf8_lossy(&out.stderr).contains(";; serve: jobs=2"));
    assert!(!page.contains(";;"));

    // Without a workload, every family still appears (zero-valued), and
    // --json switches the format.
    let out = t4o().args(["stats", "--json"]).output().unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"t4o_serve_requests_total\": 0"), "{json}");
    assert!(json.contains("t4o_phase_nanos{phase="), "{json}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_spec_metrics_file_and_stats_json() {
    let dir = tmp_dir();
    let src = dir.join("pow.scm");
    std::fs::write(
        &src,
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
    )
    .unwrap();
    let metrics = dir.join("metrics.prom");
    let stats = dir.join("stats.json");
    let obj = dir.join("powj");

    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--jobs",
            "2",
            "--batch",
            "(4)",
            "--batch",
            "(4)",
            "-o",
            obj.to_str().unwrap(),
            "--metrics-file",
            metrics.to_str().unwrap(),
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let page = std::fs::read_to_string(&metrics).unwrap();
    assert!(page.contains("t4o_serve_requests_total 2"), "{page}");
    assert!(page.contains("t4o_serve_hits_total 1"), "{page}");
    assert!(page.contains("# TYPE t4o_phase_nanos histogram"), "{page}");

    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"hits\": 1"), "{json}");
    assert!(json.contains("\"spec_runs\": 1"), "{json}");

    // --stats-json without serve mode is rejected with a clear message.
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "3",
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("serve mode"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_stats_command_prints_metrics() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"(define (sq x) (* x x))\n(sq 6)\n,stats\n,quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The session compiled and ran code, so the page shows phase traffic.
    assert!(
        stdout.contains("# TYPE t4o_phase_nanos histogram"),
        "{stdout}"
    );
    assert!(
        stdout.contains("t4o_phase_nanos_count{phase=\"frontend\"}"),
        "{stdout}"
    );
}

#[test]
fn t4o_spec_redefine_versions_the_cache_across_processes() {
    let dir = tmp_dir();
    let v1 = dir.join("pow-v1.scm");
    let v2 = dir.join("pow-v2.scm");
    std::fs::write(
        &v1,
        "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))",
    )
    .unwrap();
    std::fs::write(
        &v2,
        "(define (power n x) (if (= n 0) 2 (* x (power (- n 1) x))))",
    )
    .unwrap();
    let snap = dir.join("cache.t4os");
    let spec_args = |src: &std::path::Path| {
        vec![
            "spec".to_string(),
            src.to_str().unwrap().to_string(),
            "--entry".to_string(),
            "power".to_string(),
            "--division".to_string(),
            "SD".to_string(),
            "--name".to_string(),
            "pow".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--batch".to_string(),
            "(4)".to_string(),
            "--batch".to_string(),
            "(6)".to_string(),
            "--cache-file".to_string(),
            snap.to_str().unwrap().to_string(),
        ]
    };

    // `--redefine` without `--name` is rejected with guidance.
    let out = t4o()
        .args([
            "spec",
            v1.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--redefine",
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--name"), "{stderr}");

    // Mid-run redefinition: v1 serves, then v2 swaps in, invalidating
    // v1's cached entries; the snapshot carries the live (v2) generation.
    let mut args = spec_args(&v1);
    args.push("--redefine".to_string());
    args.push(v2.to_str().unwrap().to_string());
    let out = t4o().args(args).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("pow registered (epoch 1)"), "{stdout}");
    assert!(
        stdout.contains("pow redefined (epoch 2, 2 invalidated)"),
        "{stdout}"
    );
    assert!(stdout.contains("invalidated=2"), "{stdout}");
    assert!(stdout.contains("snapshot written"), "{stdout}");

    // Fresh process registering the same (v2) source: the snapshot's
    // records match the live registration by identity and warm-start it.
    let out = t4o().args(spec_args(&v2)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("restored 2 entries") && stdout.contains("0 stale dropped"),
        "{stdout}"
    );
    assert!(stdout.contains("spec_runs=0"), "{stdout}");
    assert!(stdout.contains("hits=2"), "{stdout}");

    // Fresh process registering *v1* against the v2 snapshot: every
    // record belongs to a dead generation — dropped as stale, counted,
    // and re-specialized from the live source.
    let out = t4o().args(spec_args(&v1)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("restored 0 entries") && stdout.contains("2 stale dropped"),
        "{stdout}"
    );
    assert!(stdout.contains("stale_dropped=2"), "{stdout}");
    assert!(stdout.contains("spec_runs=2"), "{stdout}");

    // And `t4o stats` exposes the drop on the metrics page: the snapshot
    // now holds v1 records, so registering v2 drops them visibly.
    let out = t4o()
        .args([
            "stats",
            v2.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "SD",
            "--name",
            "pow",
            "--cache-file",
            snap.to_str().unwrap(),
            "--static",
            "4",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("2 stale dropped"), "{stderr}");
    assert!(
        stdout.contains("t4o_serve_stale_dropped_total 2"),
        "{stdout}"
    );
    assert!(stdout.contains("t4o_programs_registered 1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

// ---- t4o serve: the network front end, across a real process boundary --

/// `t4o serve` under real operating conditions: a child process bound to
/// an ephemeral port, mixed binary/HTTP traffic from this process,
/// SIGTERM landing in the middle of a burst, and the contract that the
/// child drains gracefully — exit 0, caches snapshotted, final counter
/// lines printed — and that a warm restart from those snapshots serves
/// the same request as a cache hit.
#[cfg(unix)]
mod serve {
    use super::{t4o, tmp_dir};
    use std::io::{BufRead as _, Read as _, Write as _};
    use std::net::TcpStream;
    use std::process::{Command, Stdio};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use two4one_net::wire;

    /// Spawns `t4o serve` on an ephemeral port and waits for the
    /// `;; net: listening on ADDR` line. Returns the child, the bound
    /// address, and a reader thread that accumulates all of stdout.
    fn spawn_serve(
        src: &std::path::Path,
        extra: &[&str],
    ) -> (std::process::Child, String, std::thread::JoinHandle<String>) {
        let mut cmd = t4o();
        cmd.args([
            "serve",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--name",
            "power",
            "--listen",
            "127.0.0.1:0",
            "--drain-timeout-ms",
            "5000",
        ]);
        cmd.args(extra);
        let mut child = cmd
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let stdout = child.stdout.take().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut all = String::new();
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if let Some(addr) = line.strip_prefix(";; net: listening on ") {
                    let _ = tx.send(addr.to_string());
                }
                all.push_str(&line);
                all.push('\n');
            }
            all
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("serve never printed its listening line");
        (child, addr, reader)
    }

    fn sigterm(child: &std::process::Child) {
        let ok = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        assert!(ok, "kill -TERM failed");
    }

    fn wait_exit(child: &mut std::process::Child, patience: Duration) -> std::process::ExitStatus {
        let start = Instant::now();
        loop {
            if let Some(status) = child.try_wait().unwrap() {
                return status;
            }
            if start.elapsed() > patience {
                let _ = child.kill();
                panic!("serve did not exit within {patience:?} of SIGTERM");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// One binary-protocol spec request; `None` on any socket or framing
    /// failure (the drain sheds late arrivals — that is not an error).
    fn try_spec_meta(addr: &str, statics: &str) -> Option<wire::Frame> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .ok()?;
        let req = wire::SpecWireRequest {
            token: String::new(),
            name: "power".into(),
            statics: statics.into(),
            deadline_ms: 10_000,
            want: wire::WANT_META,
        };
        stream
            .write_all(&wire::encode_frame(wire::REQ_SPEC, &req.encode()))
            .ok()?;
        wire::read_frame(&mut stream, 1 << 20).ok().flatten()
    }

    fn spec_meta(addr: &str, statics: &str) -> wire::Frame {
        try_spec_meta(addr, statics).expect("spec request failed against a live server")
    }

    #[test]
    fn t4o_serve_drains_on_sigterm_and_warm_restarts_from_snapshots() {
        let dir = tmp_dir();
        let src = dir.join("pow.scm");
        std::fs::write(
            &src,
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
        )
        .unwrap();
        let cache = dir.join("cache.t4os");
        let genexts = dir.join("genexts.t4og");
        let cache_args = [
            "--cache-file",
            cache.to_str().unwrap(),
            "--genext-cache",
            genexts.to_str().unwrap(),
        ];

        let (mut child, addr, reader) = spawn_serve(&src, &cache_args);

        // Mixed traffic: a binary spec and an HTTP health check.
        let frame = spec_meta(&addr, "4");
        assert_eq!(frame.ftype, wire::RESP_META);
        let meta = String::from_utf8_lossy(&frame.payload).to_string();
        assert!(meta.contains("\"name\""), "{meta}");
        let mut http = TcpStream::connect(&addr).unwrap();
        http.set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        http.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        http.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

        // SIGTERM lands while a burst is in flight; the burst tolerates
        // shed connections (that is the drain working as designed).
        let stop = Arc::new(AtomicBool::new(false));
        let burst: Vec<_> = (0..4u64)
            .map(|i| {
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let statics = format!("{}", 2 + (n + i) % 6);
                        let _ = try_spec_meta(&addr, &statics);
                        n += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(200));
        sigterm(&child);
        let status = wait_exit(&mut child, Duration::from_secs(60));
        stop.store(true, Ordering::Relaxed);
        for b in burst {
            b.join().unwrap();
        }
        assert!(status.success(), "serve exited with {status:?}");
        let out = reader.join().unwrap();
        assert!(out.contains(";; net: SIGTERM received, draining"), "{out}");
        assert!(out.contains(";; cache: snapshot written"), "{out}");
        assert!(out.contains(";; genext-cache: snapshot written"), "{out}");
        assert!(out.contains(";; serve: jobs="), "{out}");
        assert!(out.contains(";; net: conns_accepted="), "{out}");
        assert!(out.contains("worker_panics=0"), "{out}");
        assert!(cache.exists() && genexts.exists());

        // Warm restart: the snapshot restores, and the request served
        // before the drain is now a cache hit (no new specialization).
        let (mut child2, addr2, reader2) = spawn_serve(&src, &cache_args);
        let frame = spec_meta(&addr2, "4");
        assert_eq!(frame.ftype, wire::RESP_META);
        sigterm(&child2);
        let status2 = wait_exit(&mut child2, Duration::from_secs(60));
        assert!(status2.success(), "warm restart exited with {status2:?}");
        let out2 = reader2.join().unwrap();
        assert!(out2.contains(";; cache: restored"), "{out2}");
        assert!(out2.contains(";; genext-cache: restored"), "{out2}");
        let serve_line = out2
            .lines()
            .find(|l| l.starts_with(";; serve:"))
            .unwrap_or_else(|| panic!("no serve line in {out2}"));
        assert!(serve_line.contains("hits=1"), "{serve_line}");
        assert!(serve_line.contains("spec_runs=0"), "{serve_line}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
