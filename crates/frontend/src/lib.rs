//! Front end: full Scheme subset → Core Scheme.
//!
//! The paper's specializer "desugars input programs to Core Scheme,
//! performs lambda lifting and assignment elimination" (Sec. 4). This crate
//! implements that pipeline:
//!
//! 1. [`desugar`](mod@desugar): concrete syntax → surface IR, expanding
//!    `define`, `cond`, `case`, `and`, `or`, `when`, `unless`, `let*`,
//!    named `let`, `begin`, internal defines, and `quasiquote`;
//! 2. [`rename`](mod@rename): alpha renaming (every binder unique), scope
//!    checking, primitive resolution (including the `cadr` family) and
//!    eta-expansion of primitives used as values;
//! 3. [`assign`](mod@assign): assignment elimination — mutated variables
//!    become heap cells (`box`/`unbox`/`set-box!`), non-lambda `letrec`
//!    is lowered to cells;
//! 4. [`lift`](mod@lift): Johnsson-style lambda lifting of `letrec`-bound
//!    procedure groups to top-level definitions;
//! 5. [`lower`](mod@lower): surface IR → [`two4one_syntax::cs`] core syntax.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = two4one_frontend::frontend(
//!     "(define (fact n)
//!        (let loop ((i n) (acc 1))
//!          (if (= i 0) acc (loop (- i 1) (* acc i)))))",
//! )?;
//! assert!(program.def(&"fact".into()).is_some());
//! assert!(program.unbound_vars().is_empty());
//! # Ok(())
//! # }
//! ```

pub mod assign;
pub mod desugar;
pub mod lift;
pub mod lower;
pub mod rename;
pub mod surface;

use std::fmt;
use two4one_syntax::cs;
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::Limits;
use two4one_syntax::reader::{read_all, read_all_with, ReadError};
use two4one_syntax::symbol::Gensym;

/// Errors from the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontError {
    /// The reader failed.
    Read(ReadError),
    /// A malformed special form.
    Syntax(String),
    /// An unbound variable.
    Unbound(String),
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontError::Read(e) => write!(f, "{e}"),
            FrontError::Syntax(m) => write!(f, "syntax error: {m}"),
            FrontError::Unbound(x) => write!(f, "unbound variable `{x}`"),
        }
    }
}

impl std::error::Error for FrontError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontError::Read(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReadError> for FrontError {
    fn from(e: ReadError) -> Self {
        FrontError::Read(e)
    }
}

/// Runs the whole front end on source text.
///
/// # Errors
///
/// Returns a [`FrontError`] on read, syntax, or scope errors.
pub fn frontend(src: &str) -> Result<cs::Program, FrontError> {
    frontend_data(&read_all(src)?)
}

/// Like [`frontend`], but enforcing the reader caps of `limits`
/// ([`Limits::input_node_cap`] / [`Limits::input_depth_cap`]). Since every
/// later phase is syntax-directed, bounding the input tree bounds the
/// whole front end.
///
/// # Errors
///
/// Returns a [`FrontError`] on read, syntax, scope, or over-limit input.
pub fn frontend_with(src: &str, limits: &Limits) -> Result<cs::Program, FrontError> {
    frontend_data(&read_all_with(src, limits)?)
}

/// Runs the whole front end on already-read top-level data.
///
/// # Errors
///
/// Returns a [`FrontError`] on syntax or scope errors.
pub fn frontend_data(data: &[Datum]) -> Result<cs::Program, FrontError> {
    let mut gensym = Gensym::new();
    let toplevel = desugar::desugar_program(data)?;
    let renamed = rename::rename_program(toplevel, &mut gensym)?;
    let no_assign = assign::eliminate_assignments(renamed, &mut gensym);
    let lifted = lift::lift_program(no_assign, &mut gensym)?;
    let program = lower::lower_program(lifted, &mut gensym);
    debug_assert!(
        program.unbound_vars().is_empty(),
        "front end produced unbound vars: {:?}",
        program.unbound_vars()
    );
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_produces_closed_core_program() {
        let p = frontend(
            "(define (len xs) (if (null? xs) 0 (+ 1 (len (cdr xs)))))
             (define (main xs) (len xs))",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 2);
        assert!(p.unbound_vars().is_empty());
    }

    #[test]
    fn unbound_variables_are_reported() {
        let e = frontend("(define (f x) (+ x missing))").unwrap_err();
        assert!(matches!(e, FrontError::Unbound(ref m) if m.contains("missing")));
    }

    #[test]
    fn read_errors_propagate() {
        assert!(matches!(frontend("(define (f"), Err(FrontError::Read(_))));
    }
}
