//! The byte-code compiler and its combinator form.
//!
//! Act 1 of the paper (Sec. 2.1/6.1): a recursive-descent compiler for
//! A-normal form targeting the byte-code VM. Because ANF makes control flow
//! explicit — "only those function applications wrapped in a `let` are
//! non-tail calls; all others are jumps" — the compiler needs no
//! compile-time continuation, just a compile-time environment and the
//! current stack depth, exactly as described in the paper.
//!
//! Acts 2–3 (Secs. 6.2–6.3): the same per-construct code generators
//! ("compilators", in [`emit`]) are exposed a second time as
//! [`ObjectBuilder`], an implementation of the specializer's
//! [`CodeBuilder`](two4one_anf::build::CodeBuilder) interface. Plugging it into the specializer *fuses*
//! specialization with compilation: residual programs are emitted directly
//! as byte code and the residual syntax tree never exists.

pub mod cenv;
pub mod emit;
pub mod generic;
pub mod object;

pub use cenv::{CEnv, Loc};
pub use generic::compile_program_generic;
pub use object::ObjectBuilder;

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use two4one_anf as anf;
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Asm, AsmError, Image, Template};

/// Compiler errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A variable is neither in the compile-time environment nor global.
    Unbound(Symbol),
    /// Assembler fault (table overflow, unattached label).
    Asm(AsmError),
    /// More parameters or arguments than the instruction encoding allows.
    TooManyArgs(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}` at compile time"),
            CompileError::Asm(e) => write!(f, "{e}"),
            CompileError::TooManyArgs(n) => write!(f, "too many arguments ({n})"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Asm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for CompileError {
    fn from(e: AsmError) -> Self {
        CompileError::Asm(e)
    }
}

/// Compiles a whole ANF program into a runnable [`Image`].
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
///
/// # Example
///
/// ```
/// use two4one_anf::normalize;
/// use two4one_compiler::compile_program;
/// use two4one_frontend::frontend;
/// use two4one_vm::{Machine, Value};
/// use two4one_syntax::{Datum, Symbol};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cs = frontend("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))")?;
/// let image = compile_program(&normalize(&cs), "fact")?;
/// let mut m = Machine::load(&image);
/// let v = m.call_global(&Symbol::new("fact"), vec![Value::Int(5)])?;
/// assert_eq!(v.to_datum(), Some(Datum::Int(120)));
/// # Ok(())
/// # }
/// ```
pub fn compile_program(p: &anf::Program, entry: &str) -> Result<Image, CompileError> {
    let _span = two4one_obs::Span::enter(two4one_obs::Phase::Compile);
    let globals: BTreeSet<Symbol> = p.defs.iter().map(|d| d.name).collect();
    let mut templates = Vec::with_capacity(p.defs.len());
    for d in &p.defs {
        templates.push((d.name, compile_def(d, &globals)?));
    }
    Ok(Image {
        templates,
        entry: Symbol::new(entry),
    })
}

/// Compiles one top-level definition to a template.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_def(
    d: &anf::Def,
    globals: &BTreeSet<Symbol>,
) -> Result<Arc<Template>, CompileError> {
    let arity =
        u8::try_from(d.params.len()).map_err(|_| CompileError::TooManyArgs(d.params.len()))?;
    let mut asm = Asm::new(d.name, arity, 0);
    let mut cenv = CEnv::empty();
    for (i, p) in d.params.iter().enumerate() {
        cenv = cenv.bind(*p, Loc::Local(i as u16));
    }
    let depth = d.params.len() as u16;
    compile_body(&d.body, &mut asm, &cenv, depth, globals)?;
    Ok(asm.finish()?)
}

/// Compiles an ANF body (which is always in tail position) into `asm`.
///
/// This is the recursive-descent core: the syntax dispatch happens here,
/// and each construct is handed to its compilator in [`emit`]. The
/// [`ObjectBuilder`] runs the *same* compilators with the dispatch already
/// performed by the specializer — that is the content of the fusion
/// theorem (Sec. 5.4).
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_body(
    e: &anf::Expr,
    asm: &mut Asm,
    cenv: &CEnv,
    depth: u16,
    globals: &BTreeSet<Symbol>,
) -> Result<(), CompileError> {
    match e {
        anf::Expr::Ret(t) => {
            compile_triv(t, asm, cenv, globals)?;
            emit::emit_return(asm);
            Ok(())
        }
        anf::Expr::Tail(app) => {
            let n = compile_app_args(app, asm, cenv, globals)?;
            match app {
                anf::App::Call(f, _) => {
                    compile_triv(f, asm, cenv, globals)?;
                    emit::emit_tail_call(asm, n);
                }
                anf::App::Prim(p, _) => {
                    emit::emit_prim(asm, *p, n);
                    emit::emit_return(asm);
                }
            }
            Ok(())
        }
        anf::Expr::Let(x, rhs, body) => {
            match rhs {
                anf::Rhs::Triv(t) => compile_triv(t, asm, cenv, globals)?,
                anf::Rhs::App(app) => {
                    let n = compile_app_args(app, asm, cenv, globals)?;
                    match app {
                        anf::App::Call(f, _) => {
                            compile_triv(f, asm, cenv, globals)?;
                            emit::emit_call(asm, n);
                        }
                        anf::App::Prim(p, _) => emit::emit_prim(asm, *p, n),
                    }
                }
            }
            emit::emit_bind(asm);
            let inner = cenv.bind(*x, Loc::Local(depth));
            compile_body(body, asm, &inner, depth + 1, globals)
        }
        anf::Expr::If(t, then, els) => {
            compile_triv(t, asm, cenv, globals)?;
            let alt = emit::emit_branch_false(asm);
            compile_body(then, asm, cenv, depth, globals)?;
            emit::attach(asm, alt);
            compile_body(els, asm, cenv, depth, globals)
        }
    }
}

/// Pushes the arguments of a serious term; returns the argument count.
fn compile_app_args(
    app: &anf::App,
    asm: &mut Asm,
    cenv: &CEnv,
    globals: &BTreeSet<Symbol>,
) -> Result<u8, CompileError> {
    let args = match app {
        anf::App::Call(_, args) => args,
        anf::App::Prim(_, args) => args,
    };
    let n = u8::try_from(args.len()).map_err(|_| CompileError::TooManyArgs(args.len()))?;
    for a in args {
        compile_triv(a, asm, cenv, globals)?;
        emit::emit_push(asm);
    }
    Ok(n)
}

/// Compiles a trivial term, leaving its value in `val`.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_triv(
    t: &anf::Triv,
    asm: &mut Asm,
    cenv: &CEnv,
    globals: &BTreeSet<Symbol>,
) -> Result<(), CompileError> {
    match t {
        anf::Triv::Const(d) => emit::emit_const(asm, d),
        anf::Triv::Var(x) => match cenv.lookup(x) {
            Some(loc) => {
                emit::emit_var(asm, loc);
                Ok(())
            }
            None if globals.contains(x) => emit::emit_global(asm, x),
            None => Err(CompileError::Unbound(*x)),
        },
        anf::Triv::Lambda(l) => {
            let free = lambda_free_vars(l, globals);
            let template = compile_lambda(l, &free, globals)?;
            emit::emit_make_closure(asm, template, &free, |asm, x| match cenv.lookup(x) {
                Some(loc) => {
                    emit::emit_var(asm, loc);
                    Ok(())
                }
                None => Err(CompileError::Unbound(*x)),
            })
        }
    }
}

/// The free variables a lambda must capture, in deterministic order.
pub fn lambda_free_vars(l: &anf::Lambda, globals: &BTreeSet<Symbol>) -> Vec<Symbol> {
    l.body
        .free_vars()
        .into_iter()
        .filter(|v| !l.params.contains(v) && !globals.contains(v))
        .collect()
}

/// Compiles a lambda into its own template, with parameters as locals and
/// `free` as captured slots.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_lambda(
    l: &anf::Lambda,
    free: &[Symbol],
    globals: &BTreeSet<Symbol>,
) -> Result<Arc<Template>, CompileError> {
    let arity =
        u8::try_from(l.params.len()).map_err(|_| CompileError::TooManyArgs(l.params.len()))?;
    let nfree = u16::try_from(free.len()).map_err(|_| CompileError::TooManyArgs(free.len()))?;
    let mut asm = Asm::new(l.name, arity, nfree);
    let mut cenv = CEnv::empty();
    for (i, p) in l.params.iter().enumerate() {
        cenv = cenv.bind(*p, Loc::Local(i as u16));
    }
    for (i, v) in free.iter().enumerate() {
        cenv = cenv.bind(*v, Loc::Captured(i as u16));
    }
    compile_body(&l.body, &mut asm, &cenv, l.params.len() as u16, globals)?;
    Ok(asm.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_anf::normalize;
    use two4one_frontend::frontend;
    use two4one_syntax::datum::Datum;
    use two4one_vm::{Machine, Value};

    fn run(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, two4one_vm::VmError> {
        let cs = frontend(src).unwrap();
        let image = compile_program(&normalize(&cs), entry).unwrap();
        let mut m = Machine::load(&image);
        let argv = args.iter().map(Value::from).collect();
        m.call_global(&Symbol::new(entry), argv)
            .map(|v| v.to_datum().expect("first-order result"))
    }

    #[test]
    fn basics_run_on_the_vm() {
        assert_eq!(
            run("(define (f x) (+ x 1))", "f", &[Datum::Int(1)]).unwrap(),
            Datum::Int(2)
        );
        assert_eq!(
            run(
                "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
                "fact",
                &[Datum::Int(10)]
            )
            .unwrap(),
            Datum::Int(3628800)
        );
    }

    #[test]
    fn closures_and_higher_order() {
        let src = "(define (compose f g) (lambda (x) (f (g x))))
                   (define (inc x) (+ x 1))
                   (define (dbl x) (* x 2))
                   (define (main x) ((compose inc dbl) x))";
        assert_eq!(run(src, "main", &[Datum::Int(5)]).unwrap(), Datum::Int(11));
    }

    #[test]
    fn tail_call_loops_do_not_grow() {
        let src = "(define (loop i acc) (if (= i 0) acc (loop (- i 1) (+ acc 2))))";
        assert_eq!(
            run(src, "loop", &[Datum::Int(500_000), Datum::Int(0)]).unwrap(),
            Datum::Int(1_000_000)
        );
    }

    #[test]
    fn join_points_from_nontail_ifs() {
        let src = "(define (f a b) (+ (if a 1 2) (if b 10 20)))";
        assert_eq!(
            run(src, "f", &[Datum::Bool(true), Datum::Bool(false)]).unwrap(),
            Datum::Int(21)
        );
    }

    #[test]
    fn data_and_quasiquote() {
        let src =
            "(define (pairup xs) (if (null? xs) '() (cons `(v ,(car xs)) (pairup (cdr xs)))))";
        let xs = Datum::list([Datum::Int(1), Datum::Int(2)]);
        assert_eq!(
            run(src, "pairup", &[xs]).unwrap(),
            two4one_syntax::reader::read_one("((v 1) (v 2))").unwrap()
        );
    }

    #[test]
    fn mutation_boxes_work_on_vm() {
        let src = "(define (main)
                     (let ((n 0))
                       (let ((inc (lambda () (set! n (+ n 1)) n)))
                         (inc) (inc) (inc))))";
        assert_eq!(run(src, "main", &[]).unwrap(), Datum::Int(3));
    }

    #[test]
    fn unbound_variable_is_a_compile_error() {
        // Bypass the front end (which would catch it) by building ANF directly.
        let body = anf::Expr::Ret(anf::Triv::Var(Symbol::new("nope")));
        let def = anf::Def {
            name: Symbol::new("f"),
            params: vec![],
            body,
        };
        let e = compile_def(&def, &BTreeSet::new()).unwrap_err();
        assert_eq!(e, CompileError::Unbound(Symbol::new("nope")));
    }

    #[test]
    fn lifted_loops_match_interpreter() {
        let src = "(define (sum-squares n)
                     (let loop ((i 1) (acc 0))
                       (if (> i n) acc (loop (+ i 1) (+ acc (* i i))))))";
        let cs = frontend(src).unwrap();
        let expect = two4one_interp::run_program(&cs, "sum-squares", &[Datum::Int(50)])
            .unwrap()
            .0
            .to_datum()
            .unwrap();
        assert_eq!(run(src, "sum-squares", &[Datum::Int(50)]).unwrap(), expect);
    }

    #[test]
    fn vm_output_matches_interpreter_output() {
        let src = "(define (main) (display '(1 2)) (newline) (write \"s\") 'ok)";
        let cs = frontend(src).unwrap();
        let (_, iout) = two4one_interp::run_program(&cs, "main", &[]).unwrap();
        let image = compile_program(&normalize(&cs), "main").unwrap();
        let mut m = Machine::load(&image);
        m.call_global(&Symbol::new("main"), vec![]).unwrap();
        assert_eq!(m.output, iout);
    }
}
