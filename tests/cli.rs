//! End-to-end tests of the `t4o` command-line driver and the REPL,
//! exercising the real binaries as a user would.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn t4o() -> Command {
    Command::new(env!("CARGO_BIN_EXE_t4o"))
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("two4one-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn t4o_compile_run_spec_dis_workflow() {
    let dir = tmp_dir();
    let src = dir.join("pow.scm");
    std::fs::write(
        &src,
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
    )
    .unwrap();
    let obj = dir.join("pow.t4o");

    // compile → object file
    let out = t4o()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "-o",
            obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(obj.exists());

    // run the object file
    let out = t4o()
        .args([
            "run",
            obj.to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "2",
            "--arg",
            "10",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1024");

    // specialize to source on stdout
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("define"), "{text}");
    assert!(!text.contains("power%0 x"), "{text}");

    // specialize straight to an object file and run it
    let spec_obj = dir.join("pow3.t4o");
    let out = t4o()
        .args([
            "spec",
            src.to_str().unwrap(),
            "--entry",
            "power",
            "--division",
            "DS",
            "--static",
            "3",
            "-o",
            spec_obj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = t4o()
        .args([
            "run",
            spec_obj.to_str().unwrap(),
            "--entry",
            "power",
            "--arg",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "125");

    // disassemble
    let out = t4o()
        .args(["dis", obj.to_str().unwrap(), "--entry", "power"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("jump-if-false"));

    // bad usage fails with a message
    let out = t4o().args(["run", obj.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--entry"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn t4o_generic_compiler_flag() {
    let dir = tmp_dir();
    let src = dir.join("g.scm");
    std::fs::write(&src, "(define (g a) (+ (if a 1 2) 10))").unwrap();
    let out = t4o()
        .args([
            "run",
            src.to_str().unwrap(),
            "--entry",
            "g",
            "--generic",
            "--arg",
            "#f",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "12");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_session_compiles_and_specializes() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let script = "(define (sq x) (* x x))\n\
                  (sq 9)\n\
                  (define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))\n\
                  ,spec power D S\n\
                  4\n\
                  (power 3)\n\
                  ,quit\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("compiled `sq`"), "{text}");
    assert!(text.contains("81"), "{text}");
    assert!(text.contains("residual program"), "{text}");
    assert!(text.contains("\n81\n") || text.contains("81"), "{text}");
    // power specialized to n=4, then (power 3) = 81.
    let after_spec = text.split("residual program").nth(1).unwrap_or("");
    assert!(after_spec.contains("81"), "{text}");
}
