//! Fig. 7 — "Compilation times for the specialization output": the cost of
//! loading the generated *source* code back into the system (read → front
//! end → A-normalize → compile) versus having generated object code
//! directly.
//!
//! Paper shape: "loading the generated source code back into the Scheme
//! system is by far more expensive than direct object code generation" —
//! to produce object code from an ordinary specializer one pays
//! source-generation (Fig. 6) *plus* this compilation time, while the
//! fused system pays only its (slightly higher) generation time.

use std::hint::black_box;
use std::time::Instant;
use two4one::{compile_source_text, with_stack};
use two4one_bench::harness::Criterion;
use two4one_bench::subjects;
use two4one_bench::{criterion_group, criterion_main};

fn bench_load_residual(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_compile_residual");
    group.sample_size(20);
    for subject in subjects() {
        let genext = subject.genext();
        let statics = vec![subject.program.clone()];
        // Prepare the residual source text once.
        let text: String = {
            let g = genext.clone();
            let s = statics.clone();
            with_stack(move || g.specialize_source(&s).expect("specialize").to_source())
        };

        let entry: &'static str = subject.entry;
        let t = text.clone();
        group.bench_function(format!("{}/load-source", subject.name), move |b| {
            b.iter_custom(|iters| {
                let t = t.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(compile_source_text(&t, entry).expect("compile").code_size());
                    }
                    t0.elapsed()
                })
            })
        });

        // For comparison in the same group: the fused path that replaces
        // the load step entirely.
        let g = genext.clone();
        let s = statics.clone();
        group.bench_function(format!("{}/direct-object", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&s).expect("specialize").code_size());
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_residual);
criterion_main!(benches);
