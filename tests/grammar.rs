//! The grammar workload end to end: specializing the matcher interpreter
//! over a fixed grammar yields a compiled recognizer that agrees with the
//! interpreted matcher on accepts and rejects.
//!
//! The grammar travels *inside* the program source (a quoted constant in
//! the `gm-main` entry), so the division has a single dynamic parameter —
//! the input word — and redefining the source is all it takes to
//! invalidate every derived artifact downstream.

use two4one::{interpret, run_image, with_stack, Datum, Division, GenExt, Pgg, BT};
use two4one_langs::grammar;

fn pgg() -> Pgg {
    grammar::grammar_policies()
        .iter()
        .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol))
}

fn genext_for(g: &grammar::Grammar) -> (Pgg, two4one::cs::Program, GenExt) {
    let pgg = pgg();
    let src = grammar::workload_source(g);
    let parsed = pgg.parse(&src).expect("workload source parses");
    let genext = pgg
        .cogen(
            &parsed,
            grammar::WORKLOAD_ENTRY,
            &Division::new([BT::Dynamic]),
        )
        .expect("cogen");
    (pgg, parsed, genext)
}

#[test]
fn ident_grammar_specializes_to_a_recognizer() {
    with_stack(|| {
        let g = grammar::parse(grammar::IDENT_GRAMMAR).expect("ident grammar");
        let (_pgg, parsed, genext) = genext_for(&g);

        // The interpretive layer is gone: no grammar walking, no decision
        // set membership scans survive in the residual program.
        let residual = genext.specialize_source(&[]).expect("specialize");
        let text = residual.to_source();
        assert!(!text.contains("gm-lookup"), "{text}");
        assert!(!text.contains("gm-match"), "{text}");
        assert!(!text.contains("gm-member"), "{text}");
        // One residual function per nonterminal survives (the gm-nt
        // memoization point), so the recognizer is a family of mutually
        // recursive rule functions.
        assert!(text.contains("gm-nt"), "{text}");

        let image = genext.specialize_object(&[]).expect("object");
        for (input, expect) in [
            ("abc", true),
            ("a", true),
            ("x1_2", true),
            ("", false),
            ("1ab", false),
            ("ab!", false),
        ] {
            let w = grammar::input_datum(input);
            let got = run_image(&image, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&w))
                .expect("run")
                .value;
            let base = interpret(&parsed, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&w))
                .expect("interpret")
                .value;
            assert_eq!(got, base, "input {input:?}");
            assert_eq!(got, Datum::Bool(expect), "input {input:?}");
        }
    });
}

#[test]
fn adversarial_grammars_agree_on_accept_and_reject() {
    with_stack(|| {
        for (name, text, accept, reject) in grammar::adversarial_suite() {
            let g = grammar::parse(text).expect(name);
            let (_pgg, parsed, genext) = genext_for(&g);
            let image = genext.specialize_object(&[]).expect("object");
            for (input, expect) in [(accept, true), (reject, false)] {
                let w = grammar::input_datum(&input);
                let got = run_image(&image, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&w))
                    .expect("run")
                    .value;
                let base = interpret(&parsed, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&w))
                    .expect("interpret")
                    .value;
                assert_eq!(got, base, "{name}");
                assert_eq!(got, Datum::Bool(expect), "{name} len {}", input.len());
            }
        }
    });
}

// ---------------------------------------------------------------------
// Random-grammar property test: 80 seeds of generated grammar text. The
// front end decides which are inside the LL(1) subset; for every valid
// one, the specialized recognizer must agree with the interpreted matcher
// on derived (accepted) words and mutated (mostly rejected) words.

/// Deterministic xorshift64* — the property test must not depend on
/// ambient randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const ALPHABET: [char; 4] = ['a', 'b', 'c', 'd'];

/// A random grammar expression in the surface syntax. Shallow by
/// construction; validity is the front end's problem.
fn gen_expr(rng: &mut Rng, rules: &[String], depth: usize, out: &mut String) {
    let choice = if depth == 0 {
        rng.below(3)
    } else {
        rng.below(10)
    };
    match choice {
        // Terminals dominate so generated grammars often validate.
        0 | 1 => out.push(ALPHABET[rng.below(ALPHABET.len())]),
        2 => {
            if rules.is_empty() {
                out.push(ALPHABET[rng.below(ALPHABET.len())]);
            } else {
                out.push_str(&rules[rng.below(rules.len())]);
            }
        }
        3 | 4 => {
            out.push_str("(seq ");
            gen_expr(rng, rules, depth - 1, out);
            out.push(' ');
            gen_expr(rng, rules, depth - 1, out);
            out.push(')');
        }
        5 | 6 => {
            out.push_str("(alt ");
            gen_expr(rng, rules, depth - 1, out);
            out.push(' ');
            gen_expr(rng, rules, depth - 1, out);
            out.push(')');
        }
        7 => {
            out.push_str("(star ");
            gen_expr(rng, rules, depth - 1, out);
            out.push(')');
        }
        8 => {
            out.push_str("(opt ");
            gen_expr(rng, rules, depth - 1, out);
            out.push(')');
        }
        _ => {
            out.push_str("(plus ");
            gen_expr(rng, rules, depth - 1, out);
            out.push(')');
        }
    }
}

fn gen_grammar(rng: &mut Rng) -> String {
    let n_rules = 1 + rng.below(3);
    let names: Vec<String> = (0..n_rules).map(|i| format!("r{i}")).collect();
    let mut out = String::from("(");
    for (i, name) in names.iter().enumerate() {
        // Bodies may reference later rules; the front end rejects the
        // cycles that would break LL(1).
        let callees = &names[i + 1..];
        out.push('(');
        out.push_str(name);
        out.push(' ');
        gen_expr(rng, callees, 3, &mut out);
        out.push_str(") ");
    }
    out.push(')');
    out
}

/// Derives a word the grammar accepts by walking the *encoded* datum
/// (alt → random branch, star → 0–2 iterations). `None` when the depth
/// cap trips (deeply recursive nonterminal chains).
fn derive(rng: &mut Rng, enc: &Datum, node: &Datum, depth: usize, out: &mut String) -> Option<()> {
    if depth == 0 {
        return None;
    }
    let items = node.to_vec()?;
    let tag = items.first()?.to_string();
    match tag.as_str() {
        "eps" => Some(()),
        "chr" => match items.get(1) {
            Some(Datum::Char(c)) => {
                out.push(*c);
                Some(())
            }
            _ => None,
        },
        "seq" => {
            derive(rng, enc, items.get(1)?, depth - 1, out)?;
            derive(rng, enc, items.get(2)?, depth - 1, out)
        }
        "alt" => {
            let first = if rng.below(2) == 0 { 2 } else { 3 };
            let len0 = out.len();
            if derive(rng, enc, items.get(first)?, depth - 1, out).is_some() {
                return Some(());
            }
            out.truncate(len0);
            derive(rng, enc, items.get(5 - first)?, depth - 1, out)
        }
        "star" => {
            for _ in 0..rng.below(3) {
                let len0 = out.len();
                if derive(rng, enc, items.get(2)?, depth - 1, out).is_none() {
                    out.truncate(len0);
                    break;
                }
            }
            Some(())
        }
        "nt" => {
            let name = items.get(1)?.to_string();
            let rules = enc.to_vec()?;
            let rule = rules
                .iter()
                .find(|r| r.car().map(|c| c.to_string()).as_deref() == Some(name.as_str()))?;
            let body = rule.cdr()?.car()?.clone();
            derive(rng, enc, &body, depth - 1, out)
        }
        _ => None,
    }
}

#[test]
fn random_grammars_specialize_faithfully() {
    with_stack(|| {
        let mut valid = 0usize;
        let mut accepts = 0usize;
        let mut rejects = 0usize;
        for seed in 0..80u64 {
            let mut rng = Rng::new(seed + 1);
            let text = gen_grammar(&mut rng);
            let g = match grammar::parse(&text) {
                Ok(g) => g,
                // Outside the LL(1) subset — the front end's veto is the
                // expected outcome for a chunk of random grammars.
                Err(_) => continue,
            };
            valid += 1;
            let (_pgg, parsed, genext) = genext_for(&g);
            let image = genext.specialize_object(&[]).expect("object");
            let enc = g.encode();

            let mut words: Vec<String> = Vec::new();
            // Derived words (accepted by construction, when derivation
            // fits the depth cap).
            for _ in 0..3 {
                let mut w = String::new();
                let start = enc
                    .car()
                    .and_then(|r| r.cdr())
                    .and_then(|d| d.car())
                    .cloned();
                if let Some(body) = start {
                    if derive(&mut rng, &enc, &body, 40, &mut w).is_some() {
                        words.push(w);
                    }
                }
            }
            // Mutations and random words (mostly rejected).
            let base = words.first().cloned().unwrap_or_default();
            words.push(format!("{base}z"));
            words.push(base.chars().rev().collect());
            words.push(String::new());
            for _ in 0..2 {
                let len = rng.below(5);
                words.push((0..len).map(|_| ALPHABET[rng.below(4)]).collect());
            }

            for w in words {
                let d = grammar::input_datum(&w);
                let spec = run_image(&image, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&d))
                    .expect("run")
                    .value;
                let base = interpret(&parsed, grammar::WORKLOAD_ENTRY, std::slice::from_ref(&d))
                    .expect("interpret")
                    .value;
                assert_eq!(spec, base, "seed {seed} grammar {text} word {w:?}");
                match spec {
                    Datum::Bool(true) => accepts += 1,
                    _ => rejects += 1,
                }
            }
        }
        // The generator must actually exercise the subsystem: enough
        // grammars inside the subset, and both verdicts observed often.
        assert!(valid >= 20, "only {valid}/80 seeds were valid");
        assert!(accepts >= 20, "only {accepts} accepted words");
        assert!(rejects >= 20, "only {rejects} rejected words");
    });
}
