//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms, registered by static name and snapshot-able without
//! stopping writers.
//!
//! Everything here is lock-light: a registry takes its mutex only to
//! register a series (once per handle, at setup time) and to enumerate
//! series for a snapshot. The handles themselves ([`Counter`], [`Gauge`],
//! [`Histogram`]) are shared atomic cells — updating one is a handful of
//! relaxed atomic operations, safe to call from any thread at any rate.
//!
//! All updates **saturate**: a counter pinned at `u64::MAX` stays there
//! instead of wrapping to zero, so a monitoring system can never observe
//! a total going backwards (and debug builds cannot panic on overflow).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of finite histogram buckets. Bucket `i` counts values
/// `v <= 2^(i + BUCKET_SHIFT)` nanoseconds; one extra overflow slot
/// catches everything beyond the last bound.
pub const BUCKETS: usize = 24;

/// The first bucket's upper bound is `2^BUCKET_SHIFT` (256 ns); the last
/// finite bound is `2^(BUCKET_SHIFT + BUCKETS - 1)` (≈ 2.1 s).
pub const BUCKET_SHIFT: u32 = 8;

/// Upper bound (inclusive) of finite bucket `i`, in nanoseconds.
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << (BUCKET_SHIFT + i.min(BUCKETS - 1) as u32)
}

/// Index of the bucket that counts `v` (the overflow slot is `BUCKETS`).
fn bucket_of(v: u64) -> usize {
    if v <= bucket_bound(0) {
        return 0;
    }
    // ceil(log2(v)) for v > 1, then shift down to the bucket scale.
    let ceil_log2 = 64 - (v - 1).leading_zeros();
    ((ceil_log2 - BUCKET_SHIFT) as usize).min(BUCKETS)
}

/// Saturating add on an atomic: the cell sticks at `u64::MAX` instead of
/// wrapping. A CAS loop costs the same as `fetch_add` without contention
/// and stays correct with it.
fn saturating_add_u64(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        if next == cur {
            return; // already saturated (or n == 0)
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn saturating_add_i64(cell: &AtomicI64, n: i64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not in any registry) — for tests and for
    /// components that only ever read their own cell.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        saturating_add_u64(&self.0, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A detached gauge (not in any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` (may be negative), saturating at the `i64` extremes.
    pub fn add(&self, n: i64) {
        saturating_add_i64(&self.0, n);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Per-bucket (non-cumulative) counts; the last slot is the overflow
    /// bucket beyond the final finite bound.
    buckets: [AtomicU64; BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket latency histogram with power-of-two nanosecond bounds:
/// 256 ns, 512 ns, …, ≈2.1 s, +Inf. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// A detached histogram (not in any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `nanos`.
    pub fn record(&self, nanos: u64) {
        saturating_add_u64(&self.0.buckets[bucket_of(nanos)], 1);
        saturating_add_u64(&self.0.sum, nanos);
        saturating_add_u64(&self.0.count, 1);
    }

    /// Records a [`Duration`](std::time::Duration).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS + 1];
        for (out, cell) in buckets.iter_mut().zip(&self.0.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (last slot = overflow past the final bound).
    pub buckets: [u64; BUCKETS + 1],
    /// Sum of recorded values, in nanoseconds (saturating).
    pub sum: u64,
    /// Number of observations (saturating).
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS + 1],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count = self.count.saturating_add(other.count);
    }
}

/// Identity of one time series: a static family name plus at most one
/// static label pair (`{key="value"}`). All names in this system are
/// compile-time constants, which keeps registration allocation-free and
/// the exposition deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Metric family name, e.g. `t4o_serve_hits_total`.
    pub name: &'static str,
    /// Optional label pair, e.g. `("phase", "specialize")`.
    pub label: Option<(&'static str, &'static str)>,
}

impl SeriesId {
    fn render(&self) -> String {
        match self.label {
            None => self.name.to_string(),
            Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", self.name),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(SeriesId, Counter)>,
    gauges: Vec<(SeriesId, Gauge)>,
    histograms: Vec<(SeriesId, Histogram)>,
}

/// A set of named metric series. One registry typically lives for the
/// whole process (see [`global`](crate::global)); subsystems with their
/// own lifetime (e.g. one `SpecService`) own private registries so their
/// counters start at zero and die with them.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking writer cannot corrupt monotone atomics; keep serving.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, None)
    }

    /// Gets or creates a labeled counter, e.g.
    /// `counter_with("t4o_spec_fallbacks_total", Some(("kind", "unfold-fuel")))`.
    pub fn counter_with(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Counter {
        let id = SeriesId { name, label };
        let mut inner = lock(&self.inner);
        if let Some((_, c)) = inner.counters.iter().find(|(i, _)| *i == id) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.push((id, c.clone()));
        c
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let id = SeriesId { name, label: None };
        let mut inner = lock(&self.inner);
        if let Some((_, g)) = inner.gauges.iter().find(|(i, _)| *i == id) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.push((id, g.clone()));
        g
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, None)
    }

    /// Gets or creates a labeled histogram, e.g.
    /// `histogram_with("t4o_phase_nanos", Some(("phase", "bta")))`.
    pub fn histogram_with(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Histogram {
        let id = SeriesId { name, label };
        let mut inner = lock(&self.inner);
        if let Some((_, h)) = inner.histograms.iter().find(|(i, _)| *i == id) {
            return h.clone();
        }
        let h = Histogram::new();
        inner.histograms.push((id, h.clone()));
        h
    }

    /// A coherent-enough point-in-time copy of every registered series.
    /// Writers are never stopped: each cell is read once with relaxed
    /// ordering, so values lag at most by in-flight updates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock(&self.inner);
        let mut snap = MetricsSnapshot {
            counters: inner.counters.iter().map(|(i, c)| (*i, c.get())).collect(),
            gauges: inner.gauges.iter().map(|(i, g)| (*i, g.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(i, h)| (*i, h.snapshot()))
                .collect(),
        };
        drop(inner);
        snap.sort();
        snap
    }
}

/// A point-in-time copy of a whole registry, ready for exposition.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter series, sorted by identity.
    pub counters: Vec<(SeriesId, u64)>,
    /// Gauge series, sorted by identity.
    pub gauges: Vec<(SeriesId, i64)>,
    /// Histogram series, sorted by identity.
    pub histograms: Vec<(SeriesId, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    fn sort(&mut self) {
        self.counters.sort_by_key(|(i, _)| *i);
        self.gauges.sort_by_key(|(i, _)| *i);
        self.histograms.sort_by_key(|(i, _)| *i);
    }

    /// Folds `other` into `self` (summing duplicate series), so a process
    /// can expose several registries — say a service's private counters
    /// plus the global pipeline metrics — as one page.
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        for (id, v) in other.counters {
            match self.counters.iter_mut().find(|(i, _)| *i == id) {
                Some((_, cur)) => *cur = cur.saturating_add(v),
                None => self.counters.push((id, v)),
            }
        }
        for (id, v) in other.gauges {
            match self.gauges.iter_mut().find(|(i, _)| *i == id) {
                Some((_, cur)) => *cur = cur.saturating_add(v),
                None => self.gauges.push((id, v)),
            }
        }
        for (id, h) in other.histograms {
            match self.histograms.iter_mut().find(|(i, _)| *i == id) {
                Some((_, cur)) => cur.merge(&h),
                None => self.histograms.push((id, h)),
            }
        }
        self.sort();
        self
    }

    /// Looks up a counter by name (and optional label value).
    pub fn counter_value(&self, name: &str, label_value: Option<&str>) -> Option<u64> {
        self.counters
            .iter()
            .find(|(i, _)| i.name == name && i.label.map(|(_, v)| v) == label_value)
            .map(|(_, v)| *v)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` lines, cumulative `_bucket{le=...}` series, `_sum` and
    /// `_count`). Histogram unit is nanoseconds, matching the `_nanos`
    /// family names.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (id, v) in &self.counters {
            if id.name != last_family {
                out.push_str(&format!("# TYPE {} counter\n", id.name));
                last_family = id.name;
            }
            out.push_str(&format!("{} {v}\n", id.render()));
        }
        for (id, v) in &self.gauges {
            if id.name != last_family {
                out.push_str(&format!("# TYPE {} gauge\n", id.name));
                last_family = id.name;
            }
            out.push_str(&format!("{} {v}\n", id.render()));
        }
        for (id, h) in &self.histograms {
            if id.name != last_family {
                out.push_str(&format!("# TYPE {} histogram\n", id.name));
                last_family = id.name;
            }
            let mut cum = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cum = cum.saturating_add(*n);
                let le = if i < BUCKETS {
                    format!("{}", bucket_bound(i))
                } else {
                    "+Inf".to_string()
                };
                let labels = match id.label {
                    None => format!("le=\"{le}\""),
                    Some((k, v)) => format!("{k}=\"{v}\",le=\"{le}\""),
                };
                out.push_str(&format!("{}_bucket{{{labels}}} {cum}\n", id.name));
            }
            out.push_str(&format!("{}_sum{} {}\n", id.name, label_suffix(id), h.sum));
            out.push_str(&format!(
                "{}_count{} {}\n",
                id.name,
                label_suffix(id),
                h.count
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, with
    /// cumulative bucket counts keyed by their `le` bound.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_scalar_map(&mut out, self.counters.iter().map(|(i, v)| (i, *v as i128)));
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, self.gauges.iter().map(|(i, v)| (i, *v as i128)));
        out.push_str("},\n  \"histograms\": {");
        for (n, (id, h)) in self.histograms.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"buckets\": [",
                escape(&id.render())
            ));
            let mut cum = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                cum = cum.saturating_add(*c);
                if i > 0 {
                    out.push_str(", ");
                }
                if i < BUCKETS {
                    out.push_str(&format!("[{}, {cum}]", bucket_bound(i)));
                } else {
                    out.push_str(&format!("[\"+Inf\", {cum}]"));
                }
            }
            out.push_str(&format!("], \"sum\": {}, \"count\": {}}}", h.sum, h.count));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn label_suffix(id: &SeriesId) -> String {
    match id.label {
        None => String::new(),
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
    }
}

fn push_scalar_map<'a>(out: &mut String, series: impl Iterator<Item = (&'a SeriesId, i128)>) {
    let mut first = true;
    for (id, v) in series {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", escape(&id.render())));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_max_without_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        // Any further add — by 1 or by a huge stride — must stick.
        c.inc();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_saturates_both_directions() {
        let g = Gauge::new();
        g.set(i64::MAX - 1);
        g.add(5);
        assert_eq!(g.get(), i64::MAX);
        g.set(i64::MIN + 1);
        g.add(-5);
        assert_eq!(g.get(), i64::MIN);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(256), 0);
        assert_eq!(bucket_of(257), 1);
        assert_eq!(bucket_of(512), 1);
        assert_eq!(bucket_of(513), 2);
        let last = bucket_bound(BUCKETS - 1);
        assert_eq!(bucket_of(last), BUCKETS - 1);
        assert_eq!(bucket_of(last + 1), BUCKETS); // overflow slot
        assert_eq!(bucket_of(u64::MAX), BUCKETS);
    }

    #[test]
    fn histogram_records_sum_and_count() {
        let h = Histogram::new();
        h.record(100);
        h.record(1000);
        h.record(u64::MAX); // saturates the sum, lands in overflow
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[BUCKETS], 1);
    }

    #[test]
    fn registry_dedups_by_name_and_label() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let l1 = r.counter_with("y_total", Some(("kind", "a")));
        let l2 = r.counter_with("y_total", Some(("kind", "b")));
        l1.inc();
        assert_eq!(l2.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counter_value("x_total", None), Some(2));
        assert_eq!(snap.counter_value("y_total", Some("a")), Some(1));
        assert_eq!(snap.counter_value("y_total", Some("b")), Some(0));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter("t4o_hits_total").add(3);
        r.gauge("t4o_inflight").set(2);
        let h = r.histogram_with("t4o_lat_nanos", Some(("phase", "bta")));
        h.record(300); // bucket 1 (256 < 300 <= 512)
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE t4o_hits_total counter"));
        assert!(text.contains("t4o_hits_total 3"));
        assert!(text.contains("# TYPE t4o_inflight gauge"));
        assert!(text.contains("t4o_inflight 2"));
        assert!(text.contains("# TYPE t4o_lat_nanos histogram"));
        assert!(text.contains("t4o_lat_nanos_bucket{phase=\"bta\",le=\"256\"} 0"));
        assert!(text.contains("t4o_lat_nanos_bucket{phase=\"bta\",le=\"512\"} 1"));
        assert!(text.contains("t4o_lat_nanos_bucket{phase=\"bta\",le=\"+Inf\"} 1"));
        assert!(text.contains("t4o_lat_nanos_sum{phase=\"bta\"} 300"));
        assert!(text.contains("t4o_lat_nanos_count{phase=\"bta\"} 1"));
        // One TYPE line per family even with several labeled series.
        let r2 = MetricsRegistry::new();
        r2.counter_with("f_total", Some(("kind", "a")));
        r2.counter_with("f_total", Some(("kind", "b")));
        let text2 = r2.snapshot().to_prometheus();
        assert_eq!(text2.matches("# TYPE f_total counter").count(), 1);
    }

    #[test]
    fn json_exposition_parses_shape() {
        let r = MetricsRegistry::new();
        r.counter("a_total").add(7);
        r.histogram("h_nanos").record(100);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"a_total\": 7"));
        assert!(json.contains("\"h_nanos\""));
        assert!(json.contains("\"count\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn merge_sums_duplicates_and_keeps_disjoint() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("shared_total").add(2);
        b.counter("shared_total").add(3);
        b.counter("only_b_total").add(1);
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.counter_value("shared_total", None), Some(5));
        assert_eq!(merged.counter_value("only_b_total", None), Some(1));
    }
}
