//! Persistent environments: immutable linked frames with O(1) extension.
//!
//! Shared by the interpreter and the specializer (which stores
//! partial-evaluation-time values in the same shape).

use std::sync::Arc;
use two4one_syntax::symbol::Symbol;

/// A persistent environment mapping symbols to values of type `V`.
///
/// Extension is O(1) and does not affect other holders of the environment;
/// lookup is O(depth). Scopes in Core Scheme are shallow, so this is both
/// simple and fast.
#[derive(Debug)]
pub struct Env<V>(Option<Arc<Node<V>>>);

#[derive(Debug)]
struct Node<V> {
    name: Symbol,
    value: V,
    next: Env<V>,
}

impl<V> Clone for Env<V> {
    fn clone(&self) -> Self {
        Env(self.0.clone())
    }
}

impl<V> Default for Env<V> {
    fn default() -> Self {
        Env(None)
    }
}

impl<V> Env<V> {
    /// The empty environment.
    pub fn empty() -> Self {
        Env(None)
    }
}

impl<V: Clone> Env<V> {
    /// Extends with one binding, returning the new environment.
    pub fn extend(&self, name: Symbol, value: V) -> Env<V> {
        Env(Some(Arc::new(Node {
            name,
            value,
            next: self.clone(),
        })))
    }

    /// Looks up the innermost binding of `name`.
    pub fn lookup(&self, name: &Symbol) -> Option<V> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if &node.name == name {
                return Some(node.value.clone());
            }
            cur = &node.next.0;
        }
        None
    }

    /// True if `name` is bound.
    pub fn contains(&self, name: &Symbol) -> bool {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if &node.name == name {
                return true;
            }
            cur = &node.next.0;
        }
        false
    }

    /// Number of bindings (including shadowed ones).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = &self.0;
        while let Some(node) = cur {
            n += 1;
            cur = &node.next.0;
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_and_lookup() {
        let e = Env::empty();
        let e1 = e.extend(Symbol::new("x"), 1);
        let e2 = e1.extend(Symbol::new("y"), 2);
        assert_eq!(e2.lookup(&Symbol::new("x")), Some(1));
        assert_eq!(e2.lookup(&Symbol::new("y")), Some(2));
        assert_eq!(e1.lookup(&Symbol::new("y")), None);
        assert_eq!(e.lookup(&Symbol::new("x")), None);
    }

    #[test]
    fn shadowing_finds_innermost() {
        let e = Env::empty()
            .extend(Symbol::new("x"), 1)
            .extend(Symbol::new("x"), 2);
        assert_eq!(e.lookup(&Symbol::new("x")), Some(2));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn persistence() {
        let base = Env::empty().extend(Symbol::new("a"), 0);
        let left = base.extend(Symbol::new("b"), 1);
        let right = base.extend(Symbol::new("b"), 2);
        assert_eq!(left.lookup(&Symbol::new("b")), Some(1));
        assert_eq!(right.lookup(&Symbol::new("b")), Some(2));
        assert!(base.contains(&Symbol::new("a")));
        assert!(!base.contains(&Symbol::new("b")));
        assert!(Env::<i32>::empty().is_empty());
    }
}
