//! The compile-time environment: names → locations.
//!
//! Mirrors the `cenv` parameter of the paper's compilators. A location is
//! an argument/`let` slot of the current frame, a captured slot of the
//! running closure, or (by omission — see the global table in
//! [`crate::compile_triv`]) a global.
//!
//! The environment is persistent (an immutable linked list) because the
//! fused code-generation combinators capture it inside closures.

use std::sync::Arc;
use two4one_syntax::symbol::Symbol;

/// Where a variable lives at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Local slot `i` of the current frame (arguments, then `let`s).
    Local(u16),
    /// Captured slot `i` of the running closure.
    Captured(u16),
}

/// A persistent compile-time environment.
#[derive(Debug, Clone, Default)]
pub struct CEnv(Option<Arc<Node>>);

#[derive(Debug)]
struct Node {
    name: Symbol,
    loc: Loc,
    next: CEnv,
}

impl CEnv {
    /// The empty environment.
    pub fn empty() -> Self {
        CEnv(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Symbol, loc: Loc) -> CEnv {
        CEnv(Some(Arc::new(Node {
            name,
            loc,
            next: self.clone(),
        })))
    }

    /// Looks up the innermost binding.
    pub fn lookup(&self, name: &Symbol) -> Option<Loc> {
        let mut cur = &self.0;
        while let Some(n) = cur {
            if &n.name == name {
                return Some(n.loc);
            }
            cur = &n.next.0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_shadowing() {
        let e = CEnv::empty()
            .bind(Symbol::new("x"), Loc::Local(0))
            .bind(Symbol::new("y"), Loc::Captured(1))
            .bind(Symbol::new("x"), Loc::Local(5));
        assert_eq!(e.lookup(&Symbol::new("x")), Some(Loc::Local(5)));
        assert_eq!(e.lookup(&Symbol::new("y")), Some(Loc::Captured(1)));
        assert_eq!(e.lookup(&Symbol::new("z")), None);
    }

    #[test]
    fn persistence() {
        let base = CEnv::empty().bind(Symbol::new("a"), Loc::Local(0));
        let ext = base.bind(Symbol::new("b"), Loc::Local(1));
        assert_eq!(base.lookup(&Symbol::new("b")), None);
        assert_eq!(ext.lookup(&Symbol::new("a")), Some(Loc::Local(0)));
    }
}
