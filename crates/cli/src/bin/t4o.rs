//! `t4o` — command-line driver for the two4one system.
//!
//! ```text
//! t4o compile <file.scm> --entry <name> [-o out.t4o] [--generic]
//! t4o run <file.scm|file.t4o> --entry <name> [--arg <datum>]...
//!         [--fuel <steps>] [--timeout-ms <ms>]
//! t4o spec <file.scm> --entry <name> --division SDSD
//!          [--static <datum>]... [-o out.t4o | --source] [--optimize]
//!          [--unfold-fuel <n>] [--timeout-ms <ms>] [--strict]
//!          [--jobs <n>] [--batch '(<datum>...)']...
//! t4o spec <file.g> --grammar [--source | -o out.t4o] [--optimize]
//! t4o serve <file.scm> --entry <name> --division SDSD [--name <logical>]
//!           [--listen <addr:port>] [--tenants-file <f>]
//!           [--drain-timeout-ms <ms>] [--cache-file <f.t4os>]
//!           [--genext-cache <f.t4og>] [--max-inflight <n>] [--deadline-ms <ms>]
//! t4o stats [<file.scm> --entry <name> --division SDSD ...] [--json] [-o out]
//! t4o dis <file.scm|file.t4o> --entry <name>
//! ```
//!
//! Data arguments are written as Scheme literals, e.g. `--arg '(1 2 3)'`.
//!
//! Resource governance: `--fuel` meters execution steps, `--timeout-ms`
//! bounds wall-clock time (specialization and runs), `--unfold-fuel`
//! bounds specialization effort. By default a starved specialization
//! degrades to generic code (and says so); `--strict` makes it fail with
//! the limit error instead.
//!
//! Batch serving: `--jobs N` routes `spec` through the concurrent
//! [`SpecService`], which caches residual code and deduplicates repeated
//! requests. Each `--batch '(<datum>...)'` is one request's static
//! argument list; without `--batch`, the `--static` arguments form the
//! single request. With `-o out`, batch results are written to
//! `out.0.t4o`, `out.1.t4o`, ....
//!
//! Serving robustness: `--deadline-ms` bounds each request end to end
//! (queueing included), `--max-inflight` caps concurrent specializations
//! (the batch must fit the admission queue behind it), and
//! `--cache-file <f.t4os>` warm-starts the service from a crash-safe
//! snapshot and re-snapshots it after serving.
//!
//! Live redefinition: `--name <logical>` registers the program in the
//! service's versioned registry (requests resolve by name, cache entries
//! carry `(name, epoch)` backedges, and snapshot records from an older
//! generation are dropped as stale on restore); `--redefine <file2.scm>`
//! swaps in new source mid-run — the old generation's cached
//! specializations are invalidated and the batch is served again from
//! the new one.
//!
//! Compiled gen-exts: `--genext` stages the generating extension to
//! bytecode (the second Futamura projection, compiled) and specializes
//! through the gen-ext machine instead of the annotation walker — same
//! residual image, bit for bit. `--genext-file <f.t4og>` loads the
//! compiled gen-ext from the file when it exists (warm start, skipping
//! front-end + BTA + staging) and writes it there after compiling
//! otherwise. In serve mode the service compiles gen-exts for named
//! programs by itself; `--genext-cache <f.t4og>` persists that artifact
//! cache across runs, mirroring `--cache-file` for residuals.
//!
//! Tiered serving: `--tier0` answers a cold miss with the
//! generically-compiled image immediately (tens of microseconds) instead
//! of blocking the request on the full specializer, then promotes hot
//! entries to specialized code in the background and hot-swaps them into
//! the cache. `--promote-after <n>` sets the hit threshold (default 2;
//! 0 promotes immediately), `--promote-workers <n>` sizes the
//! background worker pool (default 1).
//!
//! Grammar matching: `--grammar` switches the input file from Scheme to
//! the grammar language of `two4one_langs::grammar` — one rule list,
//! LL(1)-checked at parse time. The grammar becomes a quoted constant in
//! the matcher-interpreter workload, so `t4o spec g.g --grammar --source`
//! prints the compiled recognizer (one residual function per
//! nonterminal) and `t4o serve g.g --grammar` serves it by name (default:
//! the start rule) — clients can also register grammars live over the
//! wire with a `REQ_GRAMMAR` frame.
//!
//! Network serving: `t4o serve` keeps the process alive behind the
//! fault-hardened socket front end (HTTP/1.1 plus the binary wire
//! protocol) until SIGTERM, then drains gracefully — in-flight requests
//! finish, caches are snapshotted, and the final counters are printed.
//!
//! Observability: `t4o stats` prints the metrics exposition page
//! (Prometheus text, or JSON with `--json`), optionally after serving a
//! workload; `t4o spec --metrics-file <f>` dumps the same page after a
//! spec run, and `--stats-json <f>` writes the final serve counters as
//! JSON in serve mode.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use two4one::obs;
use two4one::{
    compile, load_image, reader, run_image_with, save_image, with_stack, Datum, Division, Image,
    Limits, Pgg, BT,
};
use two4one_langs::grammar;
use two4one_net::{net_stats_line, tenants::TenantTable, NetConfig, NetServer};
use two4one_server::{serve_stats_line, ServeConfig, SpecRequest, SpecService};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    with_stack(move || match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("t4o: {msg}");
            ExitCode::FAILURE
        }
    })
}

struct Opts {
    positional: Vec<String>,
    entry: Option<String>,
    output: Option<String>,
    division: Option<String>,
    statics: Vec<String>,
    args: Vec<String>,
    source: bool,
    optimize: bool,
    generic: bool,
    fuel: Option<u64>,
    timeout_ms: Option<u64>,
    unfold_fuel: Option<u64>,
    strict: bool,
    jobs: Option<usize>,
    batches: Vec<String>,
    name: Option<String>,
    grammar: bool,
    redefine: Option<String>,
    cache_file: Option<String>,
    genext: bool,
    genext_file: Option<String>,
    genext_cache: Option<String>,
    deadline_ms: Option<u64>,
    max_inflight: Option<usize>,
    tier0: bool,
    promote_after: Option<u64>,
    promote_workers: Option<usize>,
    metrics_file: Option<String>,
    stats_json: Option<String>,
    json: bool,
    listen: Option<String>,
    tenants_file: Option<String>,
    drain_timeout_ms: Option<u64>,
}

impl Opts {
    /// Limits for *running* a program: step fuel and deadline.
    fn run_limits(&self) -> Limits {
        let mut l = Limits::none();
        if let Some(fuel) = self.fuel {
            l = l.with_step_fuel(fuel);
        }
        if let Some(ms) = self.timeout_ms {
            l = l.with_timeout(Duration::from_millis(ms));
        }
        l
    }

    /// Limits for *specializing*: the governed defaults plus overrides.
    fn spec_limits(&self) -> Limits {
        let mut l = Limits::default();
        if let Some(fuel) = self.unfold_fuel {
            l = l.with_unfold_fuel(fuel);
        }
        if let Some(ms) = self.timeout_ms {
            l = l.with_timeout(Duration::from_millis(ms));
        }
        l
    }
}

fn parse_u64(name: &str, text: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("`{name}` needs a non-negative integer, got `{text}`"))
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        entry: None,
        output: None,
        division: None,
        statics: Vec::new(),
        args: Vec::new(),
        source: false,
        optimize: false,
        generic: false,
        fuel: None,
        timeout_ms: None,
        unfold_fuel: None,
        strict: false,
        jobs: None,
        batches: Vec::new(),
        name: None,
        grammar: false,
        redefine: None,
        cache_file: None,
        genext: false,
        genext_file: None,
        genext_cache: None,
        deadline_ms: None,
        max_inflight: None,
        tier0: false,
        promote_after: None,
        promote_workers: None,
        metrics_file: None,
        stats_json: None,
        json: false,
        listen: None,
        tenants_file: None,
        drain_timeout_ms: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--entry" | "-e" => o.entry = Some(take("--entry")?),
            "-o" | "--output" => o.output = Some(take("--output")?),
            "--division" | "-d" => o.division = Some(take("--division")?),
            "--static" | "-s" => o.statics.push(take("--static")?),
            "--arg" | "-a" => o.args.push(take("--arg")?),
            "--source" => o.source = true,
            "--optimize" => o.optimize = true,
            "--generic" => o.generic = true,
            "--fuel" => o.fuel = Some(parse_u64("--fuel", &take("--fuel")?)?),
            "--timeout-ms" => {
                o.timeout_ms = Some(parse_u64("--timeout-ms", &take("--timeout-ms")?)?)
            }
            "--unfold-fuel" => {
                o.unfold_fuel = Some(parse_u64("--unfold-fuel", &take("--unfold-fuel")?)?)
            }
            "--strict" => o.strict = true,
            "--jobs" | "-j" => {
                let n = parse_u64("--jobs", &take("--jobs")?)?;
                if n == 0 {
                    return Err("`--jobs` needs at least 1".to_string());
                }
                o.jobs = Some(n as usize);
            }
            "--batch" | "-b" => o.batches.push(take("--batch")?),
            "--name" | "-n" => o.name = Some(take("--name")?),
            "--grammar" | "-g" => o.grammar = true,
            "--redefine" => o.redefine = Some(take("--redefine")?),
            "--cache-file" => o.cache_file = Some(take("--cache-file")?),
            "--genext" => o.genext = true,
            "--genext-file" => o.genext_file = Some(take("--genext-file")?),
            "--genext-cache" => o.genext_cache = Some(take("--genext-cache")?),
            "--metrics-file" => o.metrics_file = Some(take("--metrics-file")?),
            "--stats-json" => o.stats_json = Some(take("--stats-json")?),
            "--json" => o.json = true,
            "--deadline-ms" => {
                o.deadline_ms = Some(parse_u64("--deadline-ms", &take("--deadline-ms")?)?)
            }
            "--listen" | "-l" => o.listen = Some(take("--listen")?),
            "--tenants-file" => o.tenants_file = Some(take("--tenants-file")?),
            "--drain-timeout-ms" => {
                o.drain_timeout_ms = Some(parse_u64(
                    "--drain-timeout-ms",
                    &take("--drain-timeout-ms")?,
                )?)
            }
            "--max-inflight" => {
                let n = parse_u64("--max-inflight", &take("--max-inflight")?)?;
                if n == 0 {
                    return Err("`--max-inflight` needs at least 1".to_string());
                }
                o.max_inflight = Some(n as usize);
            }
            "--tier0" => o.tier0 = true,
            "--promote-after" => {
                o.promote_after = Some(parse_u64("--promote-after", &take("--promote-after")?)?)
            }
            "--promote-workers" => {
                let n = parse_u64("--promote-workers", &take("--promote-workers")?)?;
                if n == 0 {
                    return Err("`--promote-workers` needs at least 1".to_string());
                }
                o.promote_workers = Some(n as usize);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = parse_opts(rest)?;
    match cmd.as_str() {
        "compile" => cmd_compile(&opts),
        "run" => cmd_run(&opts),
        "spec" => cmd_spec(&opts),
        "serve" => cmd_serve(&opts),
        "stats" => cmd_stats(&opts),
        "dis" => cmd_dis(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     t4o compile <file.scm> --entry <name> [-o out.t4o] [--generic]\n  \
     t4o run <file.scm|file.t4o> --entry <name> [--arg <datum>]... \
     [--fuel <steps>] [--timeout-ms <ms>]\n  \
     t4o spec <file.scm> --entry <name> --division <S|D letters> \
     [--static <datum>]... [-o out.t4o | --source] [--optimize] \
     [--unfold-fuel <n>] [--timeout-ms <ms>] [--strict] \
     [--jobs <n>] [--batch '(<datum>...)']... \
     [--name <logical> [--redefine <file2.scm>]] \
     [--genext] [--genext-file <f.t4og>] \
     [--cache-file <f.t4os>] [--genext-cache <f.t4og>] \
     [--deadline-ms <ms>] [--max-inflight <n>] \
     [--tier0 [--promote-after <n>] [--promote-workers <n>]] \
     [--metrics-file <f.prom>] [--stats-json <f.json>]\n  \
     t4o spec <file.g> --grammar [--source | -o out.t4o] [--optimize]\n  \
     t4o serve <file.scm|file.g --grammar> --entry <name> --division <S|D letters> \
     [--name <logical>] [--listen <addr:port>] [--tenants-file <f>] \
     [--drain-timeout-ms <ms>] [--cache-file <f.t4os>] \
     [--genext-cache <f.t4og>] [--max-inflight <n>] [--deadline-ms <ms>] \
     [--tier0 [--promote-after <n>] [--promote-workers <n>]]\n  \
     t4o stats [<file.scm> --entry <name> --division <S|D letters> \
     [--static <datum>]... [--batch '(<datum>...)']... [--jobs <n>] \
     [--name <logical>] [--cache-file <f.t4os>]] \
     [--json] [-o <file>]\n  \
     t4o dis <file.scm|file.t4o> --entry <name>"
        .to_string()
}

fn need_file(o: &Opts) -> Result<&str, String> {
    o.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| format!("missing input file\n{}", usage()))
}

fn need_entry(o: &Opts) -> Result<&str, String> {
    o.entry
        .as_deref()
        .ok_or_else(|| "missing --entry".to_string())
}

fn read_data(texts: &[String]) -> Result<Vec<Datum>, String> {
    texts
        .iter()
        .map(|t| reader::read_one(t).map_err(|e| e.to_string()))
        .collect()
}

/// Loads an image either from a `.t4o` object file or by compiling source.
fn load_or_compile(path: &str, entry: &str, generic: bool) -> Result<Image, String> {
    if path.ends_with(".t4o") {
        return load_image(path).map_err(|e| e.to_string());
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = Pgg::new().parse(&src).map_err(|e| e.to_string())?;
    if generic {
        two4one_compiler::compile_program_generic(&program, entry).map_err(|e| e.to_string())
    } else {
        compile(&program, entry).map_err(|e| e.to_string())
    }
}

fn cmd_compile(o: &Opts) -> Result<(), String> {
    let file = need_file(o)?;
    let entry = need_entry(o)?;
    let image = load_or_compile(file, entry, o.generic)?;
    let out = o
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.t4o", file.trim_end_matches(".scm")));
    save_image(&image, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} ({} templates, {} instructions)",
        image.templates.len(),
        image.code_size()
    );
    Ok(())
}

fn cmd_run(o: &Opts) -> Result<(), String> {
    let file = need_file(o)?;
    let entry = need_entry(o)?;
    let image = load_or_compile(file, entry, o.generic)?;
    let args = read_data(&o.args)?;
    let out = run_image_with(&image, entry, &args, &o.run_limits()).map_err(|e| e.to_string())?;
    print!("{}", out.output);
    println!("{}", out.value);
    Ok(())
}

/// Parses a division string like `SD` or `DSS` into binding times.
fn parse_division(text: &str) -> Result<Vec<BT>, String> {
    let mut division = Vec::new();
    for c in text.chars() {
        match c.to_ascii_uppercase() {
            'S' => division.push(BT::Static),
            'D' => division.push(BT::Dynamic),
            other => return Err(format!("bad division letter `{other}` (use S/D)")),
        }
    }
    Ok(division)
}

/// Front-end + BTA for `spec`/`stats`: reads the file, parses, and runs
/// cogen under the requested division, yielding the generating extension.
fn build_genext(o: &Opts) -> Result<two4one::GenExt, String> {
    build_genext_from(o, need_file(o)?)
}

/// Same pipeline against an explicit source path — `--redefine <file>`
/// reuses the entry point and division of the original registration.
fn build_genext_from(o: &Opts, file: &str) -> Result<two4one::GenExt, String> {
    if o.grammar {
        return build_grammar_genext(o, file);
    }
    let entry = need_entry(o)?;
    let division_text = o
        .division
        .as_deref()
        .ok_or_else(|| "missing --division (e.g. `SD` or `DSS`)".to_string())?;
    let division = parse_division(division_text)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let pgg = Pgg::new().limits(o.spec_limits()).fallback(!o.strict);
    let program = pgg.parse(&src).map_err(|e| e.to_string())?;
    pgg.cogen(&program, entry, &Division::new(division))
        .map_err(|e| e.to_string())
}

/// The `--grammar` pipeline: the positional file is grammar text, not
/// Scheme. The grammar is parsed and LL(1)-checked, embedded as a quoted
/// constant in the matcher-interpreter workload, and cogen'd under the
/// fixed all-dynamic division (the input word is the one argument) with
/// the matcher's unfold/memoize policies — so the resulting gen-ext
/// specializes to a compiled recognizer. `--entry` and `--division` are
/// owned by the workload and must not be given.
fn build_grammar_genext(o: &Opts, file: &str) -> Result<two4one::GenExt, String> {
    if o.entry.is_some() || o.division.is_some() {
        return Err("`--grammar` fixes the entry (gm-main) and division (D); \
                    drop --entry/--division"
            .to_string());
    }
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let g = grammar::parse(&text).map_err(|e| format!("{file}: bad grammar: {e}"))?;
    let pgg = grammar::grammar_policies().iter().fold(
        Pgg::new().limits(o.spec_limits()).fallback(!o.strict),
        |p, (name, pol)| p.policy(name, *pol),
    );
    let program = pgg
        .parse(&grammar::workload_source(&g))
        .map_err(|e| e.to_string())?;
    pgg.cogen(
        &program,
        grammar::WORKLOAD_ENTRY,
        &Division::new(vec![BT::Dynamic]),
    )
    .map_err(|e| e.to_string())
}

/// The registry name a `--grammar` workload serves under when `--name`
/// is not given: the grammar's start rule.
fn grammar_default_name(o: &Opts) -> Result<String, String> {
    let file = need_file(o)?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let g = grammar::parse(&text).map_err(|e| format!("{file}: bad grammar: {e}"))?;
    Ok(g.start().to_string())
}

/// The single-shot `--genext` pipeline: with `--genext-file` pointing at
/// an existing `.t4og`, the compiled gen-ext is loaded and the Scheme
/// front end never runs — a cross-process warm start, so the positional
/// source file, `--entry`, and `--division` are all optional. Otherwise
/// the gen-ext is built the usual way, staged to bytecode, and written
/// back to `--genext-file` (when given) for the next process.
fn obtain_compiled(o: &Opts) -> Result<two4one::CompiledGenExt, String> {
    if let Some(path) = &o.genext_file {
        if std::path::Path::new(path).exists() {
            let options = two4one::SpecOptions {
                limits: o.spec_limits(),
                fallback: !o.strict,
            };
            let compiled =
                two4one::load_genext(path, options).map_err(|e| format!("{path}: {e}"))?;
            println!(
                ";; genext: loaded from {path} ({} defs, {} ops)",
                compiled.staged().defs.len(),
                compiled.staged().code.len()
            );
            return Ok(compiled);
        }
    }
    let compiled = build_genext(o)?.compile().map_err(|e| e.to_string())?;
    println!(
        ";; genext: compiled ({} defs, {} ops, {} bytes)",
        compiled.staged().defs.len(),
        compiled.staged().code.len(),
        compiled.to_bytes().len()
    );
    if let Some(path) = &o.genext_file {
        two4one::save_genext(&compiled, path).map_err(|e| format!("{path}: {e}"))?;
        println!(";; genext: written to {path}");
    }
    Ok(compiled)
}

/// The two single-shot specialization backends behind a common face: the
/// interpreted annotation walker ([`two4one::GenExt`]) and the compiled
/// gen-ext bytecode ([`two4one::CompiledGenExt`]). Both produce
/// bit-identical residual programs; only the machinery differs.
enum Backend {
    Walker(two4one::GenExt),
    Compiled(two4one::CompiledGenExt),
}

impl Backend {
    fn source(
        &self,
        statics: &[Datum],
    ) -> Result<(two4one::AnfProgram, two4one::SpecStats), String> {
        match self {
            Backend::Walker(g) => g.specialize_source_with_stats(statics),
            Backend::Compiled(c) => c.specialize_source_with_stats(statics),
        }
        .map_err(|e| e.to_string())
    }

    fn object(&self, statics: &[Datum]) -> Result<(Image, two4one::SpecStats), String> {
        match self {
            Backend::Walker(g) => g.specialize_object_with_stats(statics),
            Backend::Compiled(c) => c.specialize_object_with_stats(statics),
        }
        .map_err(|e| e.to_string())
    }
}

/// Writes the Prometheus rendering of `snap` to `path`.
fn write_metrics_file(path: &str, snap: &obs::MetricsSnapshot) -> Result<(), String> {
    std::fs::write(path, snap.to_prometheus()).map_err(|e| format!("{path}: {e}"))?;
    println!(";; metrics: written to {path}");
    Ok(())
}

fn cmd_spec(o: &Opts) -> Result<(), String> {
    if o.redefine.is_some() && o.name.is_none() {
        return Err("`--redefine` needs `--name <logical>` (the program to redefine)".to_string());
    }
    let use_compiled = o.genext || o.genext_file.is_some();
    if o.jobs.is_some() || !o.batches.is_empty() || o.name.is_some() {
        if use_compiled {
            return Err(
                "`--genext`/`--genext-file` are single-shot flags; serve mode \
                        compiles gen-exts by itself (persist them across runs with \
                        `--genext-cache <f.t4og>`)"
                    .to_string(),
            );
        }
        return cmd_spec_serve(o, build_genext(o)?);
    }
    if o.genext_cache.is_some() {
        return Err(
            "`--genext-cache` needs serve mode (`--jobs`/`--batch`/`--name`); \
                    single-shot warm starts use `--genext-file`"
                .to_string(),
        );
    }
    if o.stats_json.is_some() {
        return Err("`--stats-json` needs serve mode (`--jobs`/`--batch`); \
                    single-shot spec has no serve counters"
            .to_string());
    }
    // Register every pipeline-level family up front, so the metrics file
    // is complete (zero-valued included) even for a trivial request.
    if o.metrics_file.is_some() {
        two4one::init_metrics();
        two4one_net::init_metrics();
    }
    let backend = if use_compiled {
        Backend::Compiled(obtain_compiled(o)?)
    } else {
        Backend::Walker(build_genext(o)?)
    };
    let statics = read_data(&o.statics)?;
    let mut degraded = false;
    if o.source || o.output.is_none() {
        let (residual, stats) = backend.source(&statics)?;
        degraded |= stats.degraded();
        let residual = if o.optimize {
            two4one::anf::optimize(&residual)
        } else {
            residual
        };
        println!("{}", residual.to_source());
    }
    if let Some(out) = &o.output {
        let (image, stats) = backend.object(&statics)?;
        degraded |= stats.degraded();
        save_image(&image, out).map_err(|e| e.to_string())?;
        println!(
            ";; wrote {out} ({} templates, {} instructions)",
            image.templates.len(),
            image.code_size()
        );
    }
    if degraded {
        eprintln!(
            "t4o: note: specialization hit a resource limit and emitted \
             generic fallback code (raise --unfold-fuel/--timeout-ms, or \
             pass --strict to fail instead)"
        );
    }
    if let Some(path) = &o.metrics_file {
        write_metrics_file(path, &obs::global().snapshot())?;
    }
    Ok(())
}

/// Converts a read `(a b c)` literal into its element data.
fn datum_list(d: &Datum) -> Result<Vec<Datum>, String> {
    let mut items = Vec::new();
    let mut cur = d;
    loop {
        match cur {
            Datum::Nil => return Ok(items),
            Datum::Pair(p) => {
                items.push(p.car.clone());
                cur = &p.cdr;
            }
            other => return Err(format!("`--batch` needs a proper list, got `{other}`")),
        }
    }
}

/// One static-argument list per request: each `--batch '(<datum>...)'`,
/// or the single `--static` list when no batches were given.
fn build_batches(o: &Opts) -> Result<Vec<Vec<Datum>>, String> {
    if o.batches.is_empty() {
        return Ok(vec![read_data(&o.statics)?]);
    }
    o.batches
        .iter()
        .map(|text| {
            let d = reader::read_one(text).map_err(|e| e.to_string())?;
            datum_list(&d)
        })
        .collect()
}

/// A service configured from the CLI's serving flags.
fn build_service(o: &Opts) -> SpecService {
    let mut config = ServeConfig::default();
    if let Some(n) = o.max_inflight {
        config.max_inflight = n;
    }
    if let Some(ms) = o.deadline_ms {
        config.default_deadline = Some(Duration::from_millis(ms));
    }
    config.tier0 = o.tier0;
    if let Some(n) = o.promote_after {
        config.promote_after = n;
    }
    if let Some(n) = o.promote_workers {
        config.promote_workers = n;
    }
    SpecService::with_config(config)
}

/// Prints (and with `-o`, writes) one serve pass's results; returns
/// whether any specialization degraded and how many requests failed.
fn report_results(
    o: &Opts,
    results: &[two4one_server::ServeResult],
    batches: &[Vec<Datum>],
) -> Result<(bool, usize), String> {
    let mut degraded = false;
    let mut failures = 0usize;
    for (i, (result, statics)) in results.iter().zip(batches).enumerate() {
        let rendered: Vec<String> = statics.iter().map(Datum::to_string).collect();
        let rendered = rendered.join(" ");
        match result {
            Ok(outcome) => {
                degraded |= outcome.stats.degraded();
                if let Some(prefix) = &o.output {
                    let path = if results.len() == 1 {
                        prefix.clone()
                    } else {
                        format!("{}.{i}.t4o", prefix.trim_end_matches(".t4o"))
                    };
                    save_image(&outcome.image, &path).map_err(|e| e.to_string())?;
                    println!(
                        ";; [{i}] ({rendered}) -> {path} ({} templates, {} instructions)",
                        outcome.image.templates.len(),
                        outcome.code_size()
                    );
                } else {
                    println!(
                        ";; [{i}] ({rendered}) {} templates, {} instructions",
                        outcome.image.templates.len(),
                        outcome.code_size()
                    );
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("t4o: request {i} ({rendered}): {e}");
            }
        }
    }
    Ok((degraded, failures))
}

/// The `spec --jobs/--batch/--name` path: a request per batch (or one
/// request from `--static`), served through the concurrent `SpecService`
/// over a bounded worker pool. With `--name` the program is registered
/// in the service's versioned registry and requests resolve through it;
/// `--redefine <file>` then swaps in the new source mid-run, invalidates
/// every cached specialization of the old generation, and serves the
/// same batch again from the new one (with `-o`, the second pass's
/// object files overwrite the first — the live generation wins).
fn cmd_spec_serve(o: &Opts, genext: two4one::GenExt) -> Result<(), String> {
    if o.source {
        return Err("`--source` cannot be combined with `--jobs`/`--batch` \
                    (the service caches object code)"
            .to_string());
    }
    let jobs = o.jobs.unwrap_or(1);
    let batches = build_batches(o)?;
    let requests: Vec<SpecRequest> = match &o.name {
        Some(name) => batches
            .iter()
            .map(|statics| SpecRequest::named(name, statics.clone()))
            .collect(),
        None => batches
            .iter()
            .map(|statics| SpecRequest::new(genext.clone(), statics.clone()))
            .collect(),
    };

    let service = build_service(o);
    if requests.len() > service.admission_capacity() {
        return Err(format!(
            "{} batch requests exceed the admission capacity of {} \
             (raise --max-inflight or split the batch)",
            requests.len(),
            service.admission_capacity()
        ));
    }
    // Register before restoring: snapshot records carry `(name, epoch)`
    // backedges, and restore can only judge them stale or live against a
    // populated registry.
    if let Some(name) = &o.name {
        let epoch = service.register(name, &genext);
        println!(";; program: {name} registered (epoch {epoch})");
    }
    if let Some(path) = &o.cache_file {
        if std::path::Path::new(path).exists() {
            let report = service.restore(path).map_err(|e| format!("{path}: {e}"))?;
            println!(
                ";; cache: restored {} entries from {path} \
                 ({} quarantined, {} stale dropped)",
                report.restored, report.quarantined, report.stale_dropped
            );
        }
    }
    // Like `--cache-file`, but for compiled gen-ext artifacts: restore
    // after registration (records are judged against the live registry),
    // so a registered program's first cache miss skips the gen-ext build.
    if let Some(path) = &o.genext_cache {
        if std::path::Path::new(path).exists() {
            let report = service
                .restore_genexts(path)
                .map_err(|e| format!("{path}: {e}"))?;
            println!(
                ";; genext-cache: restored {} gen-ext(s) from {path} \
                 ({} quarantined, {} stale dropped)",
                report.restored, report.quarantined, report.stale_dropped
            );
        }
    }
    let results = service.specialize_many(&requests, jobs);
    let (mut degraded, mut failures) = report_results(o, &results, &batches)?;

    if let Some(path) = &o.redefine {
        let name = o
            .name
            .as_ref()
            .ok_or_else(|| "`--redefine` needs `--name <logical>`".to_string())?;
        let next = build_genext_from(o, path)?;
        let outcome = service.redefine(name, &next);
        println!(
            ";; program: {name} redefined (epoch {}, {} invalidated)",
            outcome.epoch, outcome.invalidated
        );
        let results = service.specialize_many(&requests, jobs);
        let (d, f) = report_results(o, &results, &batches)?;
        degraded |= d;
        failures += f;
    }
    println!("{}", serve_stats_line(jobs, &service.stats()));
    if let Some(path) = &o.cache_file {
        service.snapshot(path).map_err(|e| format!("{path}: {e}"))?;
        println!(";; cache: snapshot written to {path}");
    }
    if let Some(path) = &o.genext_cache {
        service
            .snapshot_genexts(path)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(";; genext-cache: snapshot written to {path}");
    }
    if let Some(path) = &o.stats_json {
        std::fs::write(path, service.stats().to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!(";; stats: json written to {path}");
    }
    if let Some(path) = &o.metrics_file {
        write_metrics_file(path, &service.metrics())?;
    }
    if degraded {
        eprintln!(
            "t4o: note: specialization hit a resource limit and emitted \
             generic fallback code (raise --unfold-fuel/--timeout-ms, or \
             pass --strict to fail instead)"
        );
    }
    if failures > 0 {
        Err(format!("{failures} of {} requests failed", requests.len()))
    } else {
        Ok(())
    }
}

/// `t4o serve`: the long-running network front end.
///
/// Builds the generating extension once, registers it in the service's
/// versioned registry under `--name` (defaulting to the entry point),
/// warm-starts the residual and gen-ext caches when `--cache-file` /
/// `--genext-cache` point at existing snapshots, and binds the socket
/// front end on `--listen`. The process then serves both protocols —
/// HTTP/1.1 (`/healthz`, `/metrics`, `/stats`, `POST /spec`) and the
/// length-prefixed binary framing — until SIGTERM, at which point it
/// drains: the listener sheds new connections, in-flight requests finish
/// (bounded by `--drain-timeout-ms`), caches are re-snapshotted, the
/// final serve and net counter lines are printed, and the process exits
/// 0. `--tenants-file` enables per-tenant bearer-token auth with
/// fair-share quotas (one `token name quota` triple per line).
fn cmd_serve(o: &Opts) -> Result<(), String> {
    let genext = build_genext(o)?;
    let name = match &o.name {
        Some(name) => name.clone(),
        None if o.grammar => grammar_default_name(o)?,
        None => need_entry(o)?.to_string(),
    };
    let service = Arc::new(build_service(o));
    let epoch = service.register(&name, &genext);
    println!(";; program: {name} registered (epoch {epoch})");
    if let Some(path) = &o.cache_file {
        if std::path::Path::new(path).exists() {
            let report = service.restore(path).map_err(|e| format!("{path}: {e}"))?;
            println!(
                ";; cache: restored {} entries from {path} \
                 ({} quarantined, {} stale dropped)",
                report.restored, report.quarantined, report.stale_dropped
            );
        }
    }
    if let Some(path) = &o.genext_cache {
        if std::path::Path::new(path).exists() {
            let report = service
                .restore_genexts(path)
                .map_err(|e| format!("{path}: {e}"))?;
            println!(
                ";; genext-cache: restored {} gen-ext(s) from {path} \
                 ({} quarantined, {} stale dropped)",
                report.restored, report.quarantined, report.stale_dropped
            );
        }
    }

    let mut config = NetConfig::default();
    if let Some(listen) = &o.listen {
        config.listen = listen.clone();
    }
    if let Some(ms) = o.deadline_ms {
        config.request_deadline = Duration::from_millis(ms);
    }
    if let Some(ms) = o.drain_timeout_ms {
        config.drain_timeout = Duration::from_millis(ms);
    }
    if let Some(path) = &o.tenants_file {
        let table = TenantTable::load(path).map_err(|e| format!("{path}: {e}"))?;
        println!(";; tenants: {} loaded from {path}", table.len());
        config.tenants = Some(table);
    }
    let server = NetServer::bind(Arc::clone(&service), config).map_err(|e| e.to_string())?;
    two4one_net::install_sigterm_drain();
    // The cross-process tests (and any supervisor) parse this line for
    // the bound address, so it must reach the pipe before the first
    // client connects — flush past stdout's pipe buffering.
    println!(";; net: listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !two4one_net::sigterm_received() {
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(";; net: SIGTERM received, draining");
    let _ = std::io::stdout().flush();
    let net_snap = server.join();

    if let Some(path) = &o.cache_file {
        service.snapshot(path).map_err(|e| format!("{path}: {e}"))?;
        println!(";; cache: snapshot written to {path}");
    }
    if let Some(path) = &o.genext_cache {
        service
            .snapshot_genexts(path)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(";; genext-cache: snapshot written to {path}");
    }
    println!(
        "{}",
        serve_stats_line(o.jobs.unwrap_or(1), &service.stats())
    );
    println!("{}", net_stats_line(&net_snap));
    Ok(())
}

/// `t4o stats`: the metrics exposition page.
///
/// With no input file, a fresh service is constructed and its (zero-
/// valued, but fully registered) exposition is printed — useful to see
/// every metric family the system exports. With a `.scm` file plus
/// `--entry`/`--division`, the requests (`--static` or `--batch`, under
/// `--jobs`) are served first, so the page shows real traffic. Output is
/// Prometheus text by default, JSON with `--json`; `-o` writes to a file
/// instead of stdout.
fn cmd_stats(o: &Opts) -> Result<(), String> {
    // The exposition page advertises every family the system exports,
    // including the network front end's `t4o_net_*` counters and the
    // VM's per-opcode `t4o_vm_dispatch_total` family (zero-valued when
    // no server ran / no code executed in this process).
    two4one::init_metrics();
    two4one_net::init_metrics();
    let service = build_service(o);
    if !o.positional.is_empty() {
        let genext = build_genext(o)?;
        let jobs = o.jobs.unwrap_or(1);
        let batches = build_batches(o)?;
        let requests: Vec<SpecRequest> = match &o.name {
            Some(name) => batches
                .iter()
                .map(|statics| SpecRequest::named(name, statics.clone()))
                .collect(),
            None => batches
                .iter()
                .map(|statics| SpecRequest::new(genext.clone(), statics.clone()))
                .collect(),
        };
        if let Some(name) = &o.name {
            let epoch = service.register(name, &genext);
            eprintln!(";; program: {name} registered (epoch {epoch})");
        }
        // Restoring after registration lets the page show `stale_dropped`
        // for snapshot records whose program has since been redefined.
        if let Some(path) = &o.cache_file {
            if std::path::Path::new(path).exists() {
                let report = service.restore(path).map_err(|e| format!("{path}: {e}"))?;
                eprintln!(
                    ";; cache: restored {} entries from {path} \
                     ({} quarantined, {} stale dropped)",
                    report.restored, report.quarantined, report.stale_dropped
                );
            }
        }
        let results = service.specialize_many(&requests, jobs);
        let failures = results.iter().filter(|r| r.is_err()).count();
        // Keep stdout pure exposition; the human summary goes to stderr.
        eprintln!("{}", serve_stats_line(jobs, &service.stats()));
        if failures > 0 {
            eprintln!(
                "t4o: note: {failures} of {} requests failed",
                requests.len()
            );
        }
    }
    let snap = service.metrics();
    let page = if o.json {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    match &o.output {
        Some(path) => {
            std::fs::write(path, &page).map_err(|e| format!("{path}: {e}"))?;
            println!(";; metrics: written to {path}");
        }
        None => print!("{page}"),
    }
    Ok(())
}

fn cmd_dis(o: &Opts) -> Result<(), String> {
    let file = need_file(o)?;
    let entry = need_entry(o)?;
    let image = load_or_compile(file, entry, o.generic)?;
    print!("{}", image.disassemble());
    Ok(())
}
