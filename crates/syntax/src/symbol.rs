//! Symbols, the global symbol interner, and fresh-name generation.
//!
//! A [`Symbol`] is a `NonZeroU32` id into a process-wide, append-only
//! intern table. Interning happens once per distinct name; from then on
//! every equality test, hash, ordering comparison, environment lookup,
//! free-variable-set operation, and memoization probe works on the id —
//! machine-word speed instead of string speed. This is what makes the
//! specialization hot path cheap enough for run-time code generation
//! (the paper's Sec. 6 economics): the specializer compares and hashes
//! symbols constantly, and none of those operations should ever touch
//! the characters of a name again after the first time it is seen.
//!
//! Names live for the lifetime of the process (the table is append-only
//! and never shrinks), which is the standard compiler-interner trade-off:
//! symbol universes are small — source identifiers plus gensyms — and the
//! payoff is that [`Symbol::as_str`] can hand out `&'static str`.
//!
//! Ordering ([`Ord`]) is **by id**, i.e. by first-intern order, not
//! lexicographic. It is deterministic for a deterministic program (the
//! same sequence of interns yields the same ids) and consistent within a
//! process, which is all the engine needs: sorted free-variable lists and
//! B-tree iteration just need *a* total order that every pass agrees on.
//! On-disk formats (`.t4o` object files, cache snapshots) store names,
//! never ids, so ids are free to differ between processes.

use std::fmt;
use std::num::NonZeroU32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

/// An identifier in source programs, abstract syntax, and generated code.
///
/// Symbols are `Copy`-cheap to clone (a 4-byte id internally) and compare
/// by identity in the global intern table, which coincides with comparing
/// by string content. They are `Send + Sync` so syntax trees can be moved
/// onto the large-stack worker threads used by the specializer.
///
/// # Example
///
/// ```
/// use two4one_syntax::Symbol;
/// let a = Symbol::new("eval");
/// let b = Symbol::new("eval");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "eval");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(NonZeroU32);

impl Symbol {
    /// Creates (interns) a symbol with the given name.
    pub fn new(name: &str) -> Self {
        Symbol(global().intern(name))
    }

    /// The symbol's name. Interned names live as long as the process, so
    /// the returned string needs no lifetime tie to `self`.
    pub fn as_str(&self) -> &'static str {
        global().name(self.0)
    }

    /// The raw intern id (stable within this process only; on-disk
    /// formats must store [`Symbol::as_str`] instead).
    pub fn id(&self) -> u32 {
        self.0.get()
    }

    /// A process-independent 64-bit digest of the symbol's *name*
    /// (FNV-1a over its bytes), computed once at intern time and cached.
    /// Structural hashes of data containing symbols (see
    /// `Datum::digest`) are built from this, so they depend only on
    /// content, never on interning order.
    pub fn digest(&self) -> u64 {
        global().digest(self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

// NOTE: deliberately *no* `Borrow<str> for Symbol`. With id-based
// hashing, `hash(Symbol) != hash(str)`, so a `HashMap<Symbol, _>` can
// never be probed by `&str`; a `Borrow` impl would make such lookups
// compile and then silently miss. Intern explicitly instead:
// `map.get(&Symbol::new(name))`.

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One intern-table entry: the leaked name and its cached content digest.
#[derive(Clone, Copy)]
struct Entry {
    name: &'static str,
    digest: u64,
}

/// Number of name→id map shards. A power of two so shard selection is a
/// mask of the content digest.
const SHARDS: usize = 16;

/// A thread-safe, append-only symbol interner.
///
/// The global instance backs [`Symbol`]; independent instances exist so
/// tests can check determinism from a clean slate. Ids are handed out in
/// first-intern order, starting at 1 (`NonZeroU32` lets `Option<Symbol>`
/// stay 4 bytes).
///
/// The name→id map is split into [`SHARDS`] independent locks, selected
/// by the name's content digest. A single global `RwLock` put every
/// intern — even warm fast-path reads — through one reader-count cache
/// line, and the specializer interns constantly from every worker; under
/// 4-thread cold traffic the resulting ping-pong made the parallel run
/// *slower* than the serial one. Sharding spreads both the reader counts
/// and the new-name (gensym-heavy) write locks. Id allocation stays in
/// the single `entries` append lock, so ids remain globally sequential
/// in first-intern order regardless of sharding — the determinism
/// contract on-disk formats and tests rely on.
pub struct Interner {
    /// name → id, for interning; sharded by content digest.
    shards: [RwLock<std::collections::HashMap<&'static str, NonZeroU32>>; SHARDS],
    /// id − 1 → entry, for `as_str`/`digest`. Entries are `Copy`, and the
    /// names are leaked, so readers copy an entry out and drop the lock.
    /// This is the single id-allocation point.
    entries: RwLock<Vec<Entry>>,
    /// Times a new-name insert found its shard's write lock held by
    /// another thread (surfaced as `t4o_intern_contention`).
    contended: AtomicU64,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            shards: [(); SHARDS].map(|()| RwLock::new(std::collections::HashMap::new())),
            entries: RwLock::new(Vec::new()),
            contended: AtomicU64::new(0),
        }
    }

    /// Interns `name`, returning its id. The first intern of a name
    /// assigns the next id; later interns (from any thread) return the
    /// same id.
    pub fn intern(&self, name: &str) -> NonZeroU32 {
        // The digest doubles as the shard selector and the cached content
        // digest stored on first intern.
        let digest = fnv1a(name.as_bytes());
        let shard = &self.shards[digest as usize & (SHARDS - 1)];
        if let Some(id) = read(shard).get(name) {
            return *id;
        }
        // Slow path: take the shard's write lock (entries inside) and
        // re-check — another thread may have interned `name` meanwhile.
        let mut map = match shard.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                write(shard)
            }
        };
        if let Some(id) = map.get(name) {
            return *id;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let mut entries = write(&self.entries);
        entries.push(Entry {
            name: leaked,
            digest,
        });
        // Table position n-1 ⇒ id n; a symbol table big enough to overflow
        // u32 is unreachable in practice (it would hold 4 billion names).
        let id = NonZeroU32::new(entries.len() as u32).unwrap_or(NonZeroU32::MIN);
        drop(entries);
        map.insert(leaked, id);
        id
    }

    /// Times a new-name insert had to wait for its shard's write lock.
    pub fn contention(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// The name behind `id`.
    fn name(&self, id: NonZeroU32) -> &'static str {
        self.entry(id).name
    }

    /// The cached content digest behind `id`.
    fn digest(&self, id: NonZeroU32) -> u64 {
        self.entry(id).digest
    }

    fn entry(&self, id: NonZeroU32) -> Entry {
        let entries = read(&self.entries);
        match entries.get(id.get() as usize - 1) {
            Some(e) => *e,
            // Unreachable for ids produced by this interner; keep it
            // panic-free anyway (robustness contract, DESIGN.md §7).
            None => Entry {
                name: "<bad-symbol-id>",
                digest: 0,
            },
        }
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        read(&self.entries).len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lock helpers that recover from poisoning: the interner's state is
/// always consistent (each mutation is completed inside one critical
/// section), so a panicking writer elsewhere must not wedge the table.
fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

/// Shard-lock contention observed by the process-wide interner: how many
/// new-name inserts found their shard's write lock held. Exposed so the
/// serving layer can surface it as a metric (`t4o_intern_contention`).
pub fn intern_contention() -> u64 {
    global().contention()
}

/// Number of distinct names interned by the process-wide interner.
pub fn interned_count() -> usize {
    global().len()
}

/// A deterministic fresh-name generator.
///
/// Generated names contain a `%`, which the [reader](crate::reader) never
/// produces inside identifiers read from source text that follows the
/// conventions of this workspace, so fresh names cannot capture user names.
///
/// The counter is atomic, so a single generator can be shared by reference
/// across threads and still never hand out the same name twice. Draws from
/// a single thread remain deterministic (`x%0`, `x%1`, ...).
///
/// # Example
///
/// ```
/// use two4one_syntax::Gensym;
/// let g = Gensym::new();
/// let a = g.fresh("x");
/// let b = g.fresh("x");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("x%"));
/// ```
#[derive(Debug, Default)]
pub struct Gensym {
    counter: AtomicU64,
}

impl Clone for Gensym {
    /// Snapshots the current counter; the clone continues independently.
    fn clone(&self) -> Self {
        Gensym {
            counter: AtomicU64::new(self.counter.load(Ordering::Relaxed)),
        }
    }
}

impl Gensym {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Gensym {
            counter: AtomicU64::new(0),
        }
    }

    /// Returns a fresh symbol whose name starts with `base`.
    pub fn fresh(&self, base: &str) -> Symbol {
        // Strip an existing `%NNN` suffix so repeated renaming does not grow
        // names without bound.
        let stem = match base.find('%') {
            Some(i) => &base[..i],
            None => base,
        };
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Format into a stack buffer: stems are short identifiers, and the
        // specializer draws fresh names on its hot path.
        let mut buf = [0u8; 96];
        let mut w = Cursor {
            buf: &mut buf,
            at: 0,
        };
        use std::fmt::Write;
        if write!(w, "{stem}%{n}").is_ok() {
            let at = w.at;
            if let Ok(s) = std::str::from_utf8(&buf[..at]) {
                return Symbol::new(s);
            }
        }
        // Oversized stem: fall back to the heap.
        Symbol::new(&format!("{stem}%{n}"))
    }

    /// The number of names generated so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// Minimal `fmt::Write` adapter over a stack buffer.
struct Cursor<'a> {
    buf: &'a mut [u8],
    at: usize,
}

impl fmt::Write for Cursor<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let bytes = s.as_bytes();
        if self.at + bytes.len() > self.buf.len() {
            return Err(fmt::Error);
        }
        self.buf[self.at..self.at + bytes.len()].copy_from_slice(bytes);
        self.at += bytes.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symbols_compare_by_content() {
        assert_eq!(Symbol::new("a"), Symbol::from("a"));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
    }

    #[test]
    fn ordering_is_total_and_id_based() {
        let a = Symbol::new("interner-ord-a");
        let b = Symbol::new("interner-ord-b");
        // First-intern order, not lexicographic: `a` was interned before
        // `b` in this test, but other tests may have interned either
        // earlier — the guarantee is a total order consistent with ids.
        assert_eq!(a.cmp(&b), a.id().cmp(&b.id()));
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn symbol_display_is_bare_name() {
        assert_eq!(Symbol::new("lambda").to_string(), "lambda");
    }

    #[test]
    fn symbol_is_small() {
        assert_eq!(std::mem::size_of::<Symbol>(), 4);
        assert_eq!(std::mem::size_of::<Option<Symbol>>(), 4);
    }

    #[test]
    fn digest_depends_on_content_only() {
        assert_eq!(Symbol::new("digest-probe").digest(), fnv1a(b"digest-probe"));
        assert_ne!(
            Symbol::new("digest-probe").digest(),
            Symbol::new("digest-probe2").digest()
        );
    }

    #[test]
    fn fresh_interner_ids_are_deterministic() {
        // The same sequence of interns yields the same ids — the property
        // that makes symbol ids reproducible across runs of a
        // deterministic program.
        let names = ["eval", "apply", "x", "eval", "y%3", "apply"];
        let a: Vec<u32> = {
            let i = Interner::new();
            names.iter().map(|n| i.intern(n).get()).collect()
        };
        let b: Vec<u32> = {
            let i = Interner::new();
            names.iter().map(|n| i.intern(n).get()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3, 1, 4, 2]);
    }

    #[test]
    fn concurrent_interning_yields_one_id_per_name() {
        const THREADS: usize = 8;
        const NAMES: usize = 400;
        let interner = Interner::new();
        // Every thread interns the same name set (racing on each name);
        // all must agree on every id, and round-trip through the table.
        let per_thread: Vec<Vec<(String, u32)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        (0..NAMES)
                            .map(|i| {
                                let name = format!("sym-{i}");
                                let id = interner.intern(&name).get();
                                (name, id)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("interner thread"))
                .collect()
        });
        let first = &per_thread[0];
        for got in &per_thread {
            assert_eq!(got, first, "threads disagree on interned ids");
        }
        let distinct: HashSet<u32> = first.iter().map(|(_, id)| *id).collect();
        assert_eq!(distinct.len(), NAMES);
        assert_eq!(interner.len(), NAMES);
        for (name, id) in first {
            let id = NonZeroU32::new(*id).expect("nonzero id");
            assert_eq!(interner.name(id), name.as_str(), "as_str round-trip");
        }
    }

    #[test]
    fn global_concurrent_interning_round_trips() {
        const THREADS: usize = 8;
        let syms: Vec<Vec<Symbol>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        (0..200)
                            .map(|i| Symbol::new(&format!("global-race-{i}")))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("symbol thread"))
                .collect()
        });
        for other in &syms[1..] {
            assert_eq!(other, &syms[0]);
        }
        for (i, s) in syms[0].iter().enumerate() {
            assert_eq!(s.as_str(), format!("global-race-{i}"));
        }
    }

    #[test]
    fn contention_counter_stays_zero_single_threaded() {
        let i = Interner::new();
        for n in 0..100 {
            i.intern(&format!("solo-{n}"));
        }
        assert_eq!(i.contention(), 0);
        // The global accessors exist and are monotone.
        let before = intern_contention();
        Symbol::new("contention-probe");
        assert!(intern_contention() >= before);
        assert!(interned_count() > 0);
    }

    #[test]
    fn gensym_is_fresh_and_deterministic() {
        let g = Gensym::new();
        let names: HashSet<_> = (0..100).map(|_| g.fresh("tmp")).collect();
        assert_eq!(names.len(), 100);
        let g2 = Gensym::new();
        assert_eq!(g2.fresh("tmp"), Symbol::new("tmp%0"));
        assert_eq!(g2.fresh("tmp"), Symbol::new("tmp%1"));
    }

    #[test]
    fn gensym_strips_previous_suffix() {
        let g = Gensym::new();
        let a = g.fresh("x");
        let b = g.fresh(a.as_str());
        assert_eq!(b.as_str(), "x%1");
    }

    #[test]
    fn gensym_survives_oversized_stems() {
        let g = Gensym::new();
        let stem = "s".repeat(200);
        let a = g.fresh(&stem);
        assert!(a.as_str().starts_with(&stem));
        assert!(a.as_str().ends_with("%0"));
    }

    #[test]
    fn gensym_clone_snapshots_counter() {
        let g = Gensym::new();
        g.fresh("a");
        let h = g.clone();
        assert_eq!(h.count(), 1);
        assert_eq!(h.fresh("a"), Symbol::new("a%1"));
    }

    #[test]
    fn gensym_is_unique_across_threads() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let g = Gensym::new();
        let names: Vec<Symbol> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| s.spawn(|| (0..PER_THREAD).map(|_| g.fresh("t")).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("gensym thread"))
                .collect()
        });
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), THREADS * PER_THREAD);
        assert_eq!(g.count(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn symbols_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }

    #[test]
    fn hashmap_lookup_requires_explicit_interning() {
        // `Borrow<str>` is gone on purpose: probe with an interned key.
        let mut m = std::collections::HashMap::new();
        m.insert(Symbol::new("k"), 1);
        assert_eq!(m.get(&Symbol::new("k")), Some(&1));
    }
}
