//! Fault-hardened network front end for the specialization service.
//!
//! This crate puts a [`SpecService`](two4one_server::SpecService) on a
//! socket without adding a single dependency: a hand-rolled HTTP/1.1
//! surface (`/healthz`, `/metrics`, `/stats`, `POST /spec`) and a
//! length-prefixed binary protocol ([`wire`]) that streams `.t4o`/`.t4og`
//! object bytes straight from the cache to the socket.
//!
//! The design brief is *a wire that cannot be knocked over*:
//!
//! - **Every read and write runs under a deadline.** Slow-loris peers,
//!   stalled writers, half-open connections, and idle keep-alives are
//!   reaped, never waited on (`t4o_net_conns_reaped_total`).
//! - **Every byte from the network is distrusted.** Frame lengths are
//!   capped before allocation, payloads are CRC-checked, HTTP heads and
//!   bodies are bounded, JSON nesting is bounded — and every violation
//!   is a typed error ([`ProtocolError`]), never a panic.
//! - **Budgets are layered.** A global connection budget at accept, a
//!   per-tenant fair-share quota ([`tenants`]) in front of the service's
//!   own admission gate; both speak the same `429` + `Retry-After`
//!   language as `ServeError::Overloaded`.
//! - **Disconnects cancel work.** A reaper thread notices peers that hang
//!   up mid-request and fires the request's
//!   [`CancelToken`](two4one::CancelToken) child, so the specializer
//!   stops burning fuel for an answer nobody will read.
//! - **Drain is graceful.** On SIGTERM ([`install_sigterm_drain`]) the
//!   server stops accepting, lets in-flight requests finish inside the
//!   drain timeout, sheds the rest, and hands control back so the caller
//!   can snapshot caches and exit 0.
//! - **A panic cannot escape.** Each connection handler runs behind a
//!   `catch_unwind` barrier counted in `t4o_net_worker_panics_total`;
//!   the storm tests assert the counter stays at zero.

#![warn(missing_docs)]

mod http;
mod json;
mod server;
mod stats;
pub mod tenants;
pub mod wire;

pub use server::{NetConfig, NetServer};
pub use stats::{init_metrics, net_stats_line, NetSnapshot};
pub use wire::ProtocolError;

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM handler; polled by [`sigterm_received`].
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler that records the signal for
/// [`sigterm_received`]. Async-signal-safe by construction: the handler
/// only stores to an atomic. Uses the C `signal(2)` entry point that std
/// already links — no new dependency.
#[cfg(unix)]
pub fn install_sigterm_drain() {
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm);
    }
}

/// No-op off Unix (there is no SIGTERM to catch).
#[cfg(not(unix))]
pub fn install_sigterm_drain() {}

/// True once SIGTERM has been delivered (after
/// [`install_sigterm_drain`]). The serving loop polls this and starts a
/// graceful drain when it flips.
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::Acquire)
}
