//! Core Scheme (CS) abstract syntax — Fig. 1 of the paper.
//!
//! CS is the higher-order call-by-value core that the front end lowers full
//! programs into and that the binding-time analysis annotates. A program is
//! a set of first-order top-level definitions (the result of lambda lifting)
//! whose bodies are CS expressions; lambdas may still occur first-class
//! inside bodies.

use crate::datum::Datum;
use crate::prim::Prim;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A Core Scheme expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant datum (already quoted).
    Const(Datum),
    /// A variable reference (local or top-level).
    Var(Symbol),
    /// A lambda abstraction.
    Lambda(Arc<Lambda>),
    /// `(if test then else)`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(let (x rhs) body)` — single binding, as in the paper.
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// Application of a computed procedure.
    App(Box<Expr>, Vec<Expr>),
    /// Application of a primitive operation.
    PrimApp(Prim, Vec<Expr>),
}

/// A lambda abstraction with a name hint used for template naming and
/// diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Name hint (e.g. the variable the lambda was bound to).
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The body.
    pub body: Expr,
}

/// A top-level definition `(define (name params...) body)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// The global name.
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The body expression.
    pub body: Expr,
}

/// A whole CS program: top-level definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The definitions, in source order.
    pub defs: Vec<Def>,
}

impl Expr {
    /// Convenience constructor for applications.
    pub fn app(f: Expr, args: Vec<Expr>) -> Expr {
        Expr::App(Box::new(f), args)
    }

    /// Convenience constructor for conditionals.
    pub fn if_(t: Expr, c: Expr, a: Expr) -> Expr {
        Expr::If(Box::new(t), Box::new(c), Box::new(a))
    }

    /// Convenience constructor for let.
    pub fn let_(x: Symbol, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(x, Box::new(rhs), Box::new(body))
    }

    /// Convenience constructor for lambdas.
    pub fn lambda(name: &str, params: Vec<Symbol>, body: Expr) -> Expr {
        Expr::Lambda(Arc::new(Lambda {
            name: Symbol::new(name),
            params,
            body,
        }))
    }

    /// The free variables of this expression (top-level names included —
    /// callers that want only locals subtract the globals).
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        fn go(e: &Expr, bound: &mut Vec<Symbol>, acc: &mut BTreeSet<Symbol>) {
            match e {
                Expr::Const(_) => {}
                Expr::Var(x) => {
                    if !bound.contains(x) {
                        acc.insert(*x);
                    }
                }
                Expr::Lambda(l) => {
                    let n = bound.len();
                    bound.extend(l.params.iter().cloned());
                    go(&l.body, bound, acc);
                    bound.truncate(n);
                }
                Expr::If(a, b, c) => {
                    go(a, bound, acc);
                    go(b, bound, acc);
                    go(c, bound, acc);
                }
                Expr::Let(x, rhs, body) => {
                    go(rhs, bound, acc);
                    bound.push(*x);
                    go(body, bound, acc);
                    bound.pop();
                }
                Expr::App(f, args) => {
                    go(f, bound, acc);
                    for a in args {
                        go(a, bound, acc);
                    }
                }
                Expr::PrimApp(_, args) => {
                    for a in args {
                        go(a, bound, acc);
                    }
                }
            }
        }
        let mut acc = BTreeSet::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// Number of AST nodes, for tests and growth accounting.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Lambda(l) => 1 + l.body.size(),
            Expr::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Let(_, rhs, body) => 1 + rhs.size() + body.size(),
            Expr::App(f, args) => 1 + f.size() + args.iter().map(Expr::size).sum::<usize>(),
            Expr::PrimApp(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Renders back to concrete syntax.
    pub fn to_datum(&self) -> Datum {
        match self {
            Expr::Const(d) => {
                if d.is_self_evaluating() {
                    d.clone()
                } else {
                    Datum::list([Datum::sym("quote"), d.clone()])
                }
            }
            Expr::Var(x) => Datum::Sym(*x),
            Expr::Lambda(l) => Datum::list([
                Datum::sym("lambda"),
                Datum::list(l.params.iter().cloned().map(Datum::Sym).collect::<Vec<_>>()),
                l.body.to_datum(),
            ]),
            Expr::If(a, b, c) => {
                Datum::list([Datum::sym("if"), a.to_datum(), b.to_datum(), c.to_datum()])
            }
            Expr::Let(x, rhs, body) => Datum::list([
                Datum::sym("let"),
                Datum::list([Datum::list([Datum::Sym(*x), rhs.to_datum()])]),
                body.to_datum(),
            ]),
            Expr::App(f, args) => {
                let mut items = vec![f.to_datum()];
                items.extend(args.iter().map(Expr::to_datum));
                Datum::list(items)
            }
            Expr::PrimApp(p, args) => {
                let mut items = vec![Datum::sym(p.name())];
                items.extend(args.iter().map(Expr::to_datum));
                Datum::list(items)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datum())
    }
}

impl Def {
    /// Renders back to a `(define (name params...) body)` datum.
    pub fn to_datum(&self) -> Datum {
        let mut head = vec![Datum::Sym(self.name)];
        head.extend(self.params.iter().cloned().map(Datum::Sym));
        Datum::list([
            Datum::sym("define"),
            Datum::list(head),
            self.body.to_datum(),
        ])
    }
}

impl Program {
    /// Looks up a definition by name.
    pub fn def(&self, name: &Symbol) -> Option<&Def> {
        self.defs.iter().find(|d| &d.name == name)
    }

    /// The set of global (top-level) names.
    pub fn globals(&self) -> BTreeSet<Symbol> {
        self.defs.iter().map(|d| d.name).collect()
    }

    /// Renders the program back to concrete syntax.
    pub fn to_data(&self) -> Vec<Datum> {
        self.defs.iter().map(Def::to_datum).collect()
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        self.defs.iter().map(|d| d.body.size() + 1).sum()
    }

    /// Checks that every variable is bound by a parameter, `let`, `lambda`,
    /// or a top-level definition. Returns offending names.
    pub fn unbound_vars(&self) -> BTreeSet<Symbol> {
        let globals = self.globals();
        let mut bad = BTreeSet::new();
        for d in &self.defs {
            let params: BTreeSet<_> = d.params.iter().cloned().collect();
            for v in d.body.free_vars() {
                if !params.contains(&v) && !globals.contains(&v) {
                    bad.insert(v);
                }
            }
        }
        bad
    }
}

/// Errors from the strict CS parser ([`parse_expr`], [`parse_program`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsParseError(pub String);

impl fmt::Display for CsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core-scheme parse error: {}", self.0)
    }
}

impl std::error::Error for CsParseError {}

fn sym_of(d: &Datum) -> Result<Symbol, CsParseError> {
    d.as_sym()
        .cloned()
        .ok_or_else(|| CsParseError(format!("expected identifier, got `{d}`")))
}

/// Parses a datum that is already in the *core* grammar (no sugar). The
/// full front end lives in `two4one-frontend`; this strict parser exists so
/// lower-level crates can build CS terms in tests without a dependency
/// cycle.
///
/// # Errors
///
/// Returns a [`CsParseError`] for anything outside the core grammar.
pub fn parse_expr(d: &Datum) -> Result<Expr, CsParseError> {
    match d {
        Datum::Sym(s) => Ok(Expr::Var(*s)),
        _ if d.is_self_evaluating() => Ok(Expr::Const(d.clone())),
        Datum::Nil => Err(CsParseError("empty application `()`".into())),
        Datum::Pair(_) => {
            let items = d
                .to_vec()
                .ok_or_else(|| CsParseError(format!("improper list `{d}`")))?;
            let head = items[0].as_sym().map(|s| s.as_str());
            match head {
                Some("quote") if items.len() == 2 => Ok(Expr::Const(items[1].clone())),
                Some("if") if items.len() == 4 => Ok(Expr::if_(
                    parse_expr(&items[1])?,
                    parse_expr(&items[2])?,
                    parse_expr(&items[3])?,
                )),
                Some("let") if items.len() == 3 => {
                    let bindings = items[1]
                        .to_vec()
                        .ok_or_else(|| CsParseError("bad let bindings".into()))?;
                    if bindings.len() != 1 {
                        return Err(CsParseError("core let has exactly one binding".into()));
                    }
                    let b = bindings[0]
                        .to_vec()
                        .filter(|v| v.len() == 2)
                        .ok_or_else(|| CsParseError("bad let binding".into()))?;
                    Ok(Expr::let_(
                        sym_of(&b[0])?,
                        parse_expr(&b[1])?,
                        parse_expr(&items[2])?,
                    ))
                }
                Some("lambda") if items.len() == 3 => {
                    let params = items[1]
                        .to_vec()
                        .ok_or_else(|| CsParseError("bad lambda parameter list".into()))?
                        .iter()
                        .map(sym_of)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Expr::lambda("lam", params, parse_expr(&items[2])?))
                }
                Some(name) if Prim::from_name(name).is_some() => {
                    let p = Prim::from_name(name).expect("checked");
                    let args = items[1..]
                        .iter()
                        .map(parse_expr)
                        .collect::<Result<Vec<_>, _>>()?;
                    if !p.arity().admits(args.len()) {
                        return Err(CsParseError(format!(
                            "`{name}` expects {} args, got {}",
                            p.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::PrimApp(p, args))
                }
                _ => {
                    let f = parse_expr(&items[0])?;
                    let args = items[1..]
                        .iter()
                        .map(parse_expr)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Expr::app(f, args))
                }
            }
        }
        _ => Err(CsParseError(format!("cannot parse `{d}`"))),
    }
}

/// Parses a sequence of `(define (f x...) body)` data into a [`Program`]
/// using the strict core grammar.
///
/// # Errors
///
/// Returns a [`CsParseError`] on malformed definitions.
pub fn parse_program(ds: &[Datum]) -> Result<Program, CsParseError> {
    let mut defs = Vec::new();
    for d in ds {
        let parts = d
            .as_form("define")
            .ok_or_else(|| CsParseError(format!("expected a definition, got `{d}`")))?;
        if parts.len() != 2 {
            return Err(CsParseError(format!("bad definition `{d}`")));
        }
        let head = parts[0]
            .to_vec()
            .ok_or_else(|| CsParseError("bad definition head".into()))?;
        if head.is_empty() {
            return Err(CsParseError("empty definition head".into()));
        }
        let name = sym_of(&head[0])?;
        let params = head[1..]
            .iter()
            .map(sym_of)
            .collect::<Result<Vec<_>, _>>()?;
        defs.push(Def {
            name,
            params,
            body: parse_expr(&parts[1])?,
        });
    }
    Ok(Program { defs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    fn pe(src: &str) -> Expr {
        parse_expr(&read_one(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_core_forms() {
        assert_eq!(pe("42"), Expr::Const(Datum::Int(42)));
        assert_eq!(pe("x"), Expr::Var(Symbol::new("x")));
        assert_eq!(pe("'(1 2)"), Expr::Const(read_one("(1 2)").unwrap()));
        assert!(matches!(pe("(if #t 1 2)"), Expr::If(..)));
        assert!(matches!(pe("(let ((x 1)) x)"), Expr::Let(..)));
        assert!(matches!(pe("(lambda (x) x)"), Expr::Lambda(_)));
        assert!(matches!(pe("(+ 1 2)"), Expr::PrimApp(Prim::Add, _)));
        assert!(matches!(pe("(f 1 2)"), Expr::App(..)));
    }

    #[test]
    fn parse_errors() {
        let bad = read_one("(let ((x 1) (y 2)) x)").unwrap();
        assert!(parse_expr(&bad).is_err());
        let bad = read_one("(car 1 2)").unwrap();
        assert!(parse_expr(&bad).is_err());
        assert!(parse_expr(&Datum::Nil).is_err());
    }

    #[test]
    fn free_vars_respect_binders() {
        let e = pe("(lambda (x) (let ((y (+ x z))) (f y)))");
        let fv = e.free_vars();
        let names: Vec<&str> = fv.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["f", "z"]);
    }

    #[test]
    fn to_datum_round_trips() {
        for src in [
            "(lambda (x y) (if (< x y) x (quote sym)))",
            "(let ((k 1)) (f k (+ k 2)))",
            "'(a b)",
        ] {
            let e = pe(src);
            let d = e.to_datum();
            assert_eq!(parse_expr(&d).unwrap(), e, "{src} → {d}");
        }
    }

    #[test]
    fn program_roundtrip_and_scoping() {
        let ds = crate::reader::read_all("(define (f x) (g x)) (define (g y) (+ y free))").unwrap();
        let p = parse_program(&ds).unwrap();
        assert_eq!(p.defs.len(), 2);
        assert!(p.def(&Symbol::new("f")).is_some());
        let unbound = p.unbound_vars();
        assert_eq!(unbound.len(), 1);
        assert!(unbound.contains(&Symbol::new("free")));
        let back = parse_program(&p.to_data()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(pe("x").size(), 1);
        assert_eq!(pe("(+ x 1)").size(), 3);
        assert_eq!(pe("(if a b c)").size(), 4);
    }
}
