//! The assembler: the code-constructor vocabulary of the paper's
//! compilators.
//!
//! The Scheme 48 compiler builds object code with `sequentially`,
//! `make-label`, `attach-label`, and `instruction-using-label` (Sec. 6.1).
//! [`Asm`] provides the same operations: instructions are emitted
//! sequentially into a growing code vector, labels are allocated eagerly
//! and attached later, and jump instructions referencing unattached labels
//! are backpatched when the template is finished — the "relocation step"
//! the paper mentions, done with backpatching as suggested there.

use crate::{Instr, Template};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::symbol::Symbol;

/// A forward-referenceable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Assembler errors (all indicate compiler bugs, not user errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// `finish` called while a label was never attached.
    UnattachedLabel(u32),
    /// A table overflowed its 16-bit index space.
    TableOverflow(&'static str),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnattachedLabel(l) => write!(f, "label {l} was never attached"),
            AsmError::TableOverflow(which) => write!(f, "{which} table overflow"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An in-progress template.
///
/// # Example
///
/// Compiling `(if x 1 2)` by hand, the way a compilator does:
///
/// ```
/// use two4one_vm::{Asm, Instr, Machine, Value};
/// use two4one_syntax::{Datum, Symbol};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Asm::new(Symbol::new("choose"), 1, 0);
/// let alt = asm.make_label();
/// asm.emit(Instr::Local(0));
/// asm.emit_jump_if_false(alt);
/// let one = asm.const_index(&Datum::Int(1))?;
/// asm.emit(Instr::Const(one));
/// asm.emit(Instr::Return);
/// asm.attach_label(alt);
/// let two = asm.const_index(&Datum::Int(2))?;
/// asm.emit(Instr::Const(two));
/// asm.emit(Instr::Return);
/// let template = asm.finish()?;
///
/// let mut m = Machine::empty();
/// m.define_template(Symbol::new("choose"), template);
/// let v = m.call_global(&Symbol::new("choose"), vec![Value::Bool(false)])?;
/// assert_eq!(v.to_datum(), Some(Datum::Int(2)));
/// # Ok(())
/// # }
/// ```
pub struct Asm {
    name: Symbol,
    arity: u8,
    nfree: u16,
    code: Vec<Instr>,
    consts: Vec<Datum>,
    const_index: HashMap<Datum, u16>,
    globals: Vec<Symbol>,
    global_index: HashMap<Symbol, u16>,
    templates: Vec<Arc<Template>>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Starts assembling a template.
    pub fn new(name: Symbol, arity: u8, nfree: u16) -> Self {
        Asm {
            name,
            arity,
            nfree,
            code: Vec::new(),
            consts: Vec::new(),
            const_index: HashMap::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            templates: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Emits one instruction (`sequentially` is just consecutive calls).
    pub fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Current code position (for tests and peephole checks).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Allocates a fresh, unattached label (`make-label`).
    pub fn make_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Attaches a label to the current position (`attach-label`).
    ///
    /// # Panics
    ///
    /// Panics if the label is already attached (a compiler bug).
    pub fn attach_label(&mut self, l: Label) {
        let slot = &mut self.labels[l.0 as usize];
        assert!(slot.is_none(), "label attached twice");
        *slot = Some(self.code.len());
    }

    /// Emits a jump to `l`, backpatching later if `l` is still unattached
    /// (`instruction-using-label`).
    pub fn emit_jump(&mut self, l: Label) {
        self.fixups.push((self.code.len(), l));
        self.emit(Instr::Jump(u32::MAX));
    }

    /// Emits a conditional jump to `l` taken when `val` is `#f`.
    pub fn emit_jump_if_false(&mut self, l: Label) {
        self.fixups.push((self.code.len(), l));
        self.emit(Instr::JumpIfFalse(u32::MAX));
    }

    /// Interns a constant, returning its index.
    ///
    /// # Errors
    ///
    /// Fails if the constant table exceeds 2¹⁶ entries.
    pub fn const_index(&mut self, d: &Datum) -> Result<u16, AsmError> {
        if let Some(&i) = self.const_index.get(d) {
            return Ok(i);
        }
        let i =
            u16::try_from(self.consts.len()).map_err(|_| AsmError::TableOverflow("constant"))?;
        self.consts.push(d.clone());
        self.const_index.insert(d.clone(), i);
        Ok(i)
    }

    /// Interns a global name, returning its index.
    ///
    /// # Errors
    ///
    /// Fails if the global table exceeds 2¹⁶ entries.
    pub fn global_index(&mut self, s: &Symbol) -> Result<u16, AsmError> {
        if let Some(&i) = self.global_index.get(s) {
            return Ok(i);
        }
        let i = u16::try_from(self.globals.len()).map_err(|_| AsmError::TableOverflow("global"))?;
        self.globals.push(*s);
        self.global_index.insert(*s, i);
        Ok(i)
    }

    /// Registers a sub-template, returning its index.
    ///
    /// # Errors
    ///
    /// Fails if the template table exceeds 2¹⁶ entries.
    pub fn template_index(&mut self, t: Arc<Template>) -> Result<u16, AsmError> {
        let i =
            u16::try_from(self.templates.len()).map_err(|_| AsmError::TableOverflow("template"))?;
        self.templates.push(t);
        Ok(i)
    }

    /// Resolves all labels and produces the finished template.
    ///
    /// # Errors
    ///
    /// Fails if any referenced label was never attached.
    pub fn finish(mut self) -> Result<Arc<Template>, AsmError> {
        for (pos, label) in &self.fixups {
            let target =
                self.labels[label.0 as usize].ok_or(AsmError::UnattachedLabel(label.0))? as u32;
            match &mut self.code[*pos] {
                Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
                other => unreachable!("fixup points at non-jump {other:?}"),
            }
        }
        Ok(Arc::new(Template {
            name: self.name,
            arity: self.arity,
            nfree: self.nfree,
            code: self.code,
            consts: self.consts,
            globals: self.globals,
            templates: self.templates,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpatching_forward_jump() {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let l = a.make_label();
        a.emit_jump_if_false(l);
        let k = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(k));
        a.emit(Instr::Return);
        a.attach_label(l);
        let k2 = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(k2));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        assert_eq!(t.code[0], Instr::JumpIfFalse(3));
    }

    #[test]
    fn backward_jump_works_too() {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let top = a.make_label();
        a.attach_label(top);
        a.emit(Instr::Push);
        a.emit_jump(top);
        let t = a.finish().unwrap();
        assert_eq!(t.code[1], Instr::Jump(0));
    }

    #[test]
    fn constants_and_globals_are_interned() {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let i1 = a.const_index(&Datum::Int(42)).unwrap();
        let i2 = a.const_index(&Datum::Int(42)).unwrap();
        let i3 = a.const_index(&Datum::Int(43)).unwrap();
        assert_eq!(i1, i2);
        assert_ne!(i1, i3);
        let g1 = a.global_index(&Symbol::new("f")).unwrap();
        let g2 = a.global_index(&Symbol::new("f")).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn unattached_label_is_an_error() {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let l = a.make_label();
        a.emit_jump(l);
        assert_eq!(a.finish().unwrap_err(), AsmError::UnattachedLabel(0));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let l = a.make_label();
        a.attach_label(l);
        a.attach_label(l);
    }
}
