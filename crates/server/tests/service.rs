//! Integration tests for the concurrent specialization service: cache
//! correctness (keying, eviction, error paths), single-flight dedup, the
//! zero-work warm path, and the fault-tolerance layer (admission control,
//! deadlines, retry, circuit breaking, crash-safe snapshots, and panic
//! recovery).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use two4one::{CancelToken, Datum, Division, Limits, Pgg, BT};
use two4one_server::{
    BreakerPolicy, FillHook, RetryPolicy, ServeConfig, ServeError, SpecRequest, SpecService,
};
use two4one_testkit::faults::{corrupt, PanicPlan};
use two4one_testkit::rng::Rng;

const POWER: &str = "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))";

fn power_ext(pgg: &Pgg) -> two4one::GenExt {
    let program = pgg.parse(POWER).expect("parse power");
    pgg.cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
        .expect("cogen power")
}

fn int(n: i64) -> Vec<Datum> {
    vec![Datum::Int(n)]
}

#[test]
fn warm_hit_runs_zero_specializer_work() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());

    let cold = service.specialize(&ext, &int(5)).expect("cold");
    let after_cold = service.stats();
    assert_eq!(after_cold.misses, 1);
    assert_eq!(after_cold.spec_runs, 1);
    assert_eq!(after_cold.hits, 0);

    let warm = service.specialize(&ext, &int(5)).expect("warm");
    let after_warm = service.stats();
    // Zero specializer work: the run counter did not move, and the handle
    // is the very same image (templates shared via Arc, no deep copy).
    assert_eq!(after_warm.spec_runs, 1);
    assert_eq!(after_warm.misses, 1);
    assert_eq!(after_warm.hits, 1);
    assert!(Arc::ptr_eq(&cold.image, &warm.image));

    // The cached residual code actually works.
    let out =
        two4one::run_image(&warm.image, warm.image.entry.as_str(), &int(2)).expect("run residual");
    assert_eq!(out.value, Datum::Int(32));
}

#[test]
fn differing_static_args_miss() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    let a = service.specialize(&ext, &int(3)).expect("n=3");
    let b = service.specialize(&ext, &int(4)).expect("n=4");
    assert!(!Arc::ptr_eq(&a.image, &b.image));
    let stats = service.stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.spec_runs, 2);
}

/// Renders a random near-miss sibling of `POWER`: same shape, one token
/// nudged. Textually different programs must never share cache entries,
/// however similar they look — even inside a single shard, where any
/// digest collision would land.
fn near_miss_program(rng: &mut Rng) -> String {
    let base = 1 + rng.range_i64(1, 9);
    let op = *rng.pick(&["*", "+"]);
    format!("(define (power n x) (if (= n 0) {base} ({op} x (power (- n 1) x))))")
}

#[test]
fn near_miss_programs_do_not_collide() {
    // One shard: every key routes to the same map, so this exercises the
    // full-key comparison rather than shard separation.
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    let pgg = Pgg::new();
    let mut rng = Rng::new(0x5e1f_c0de);

    let mut programs: Vec<String> = vec![POWER.to_string()];
    while programs.len() < 8 {
        let candidate = near_miss_program(&mut rng);
        if !programs.contains(&candidate) {
            programs.push(candidate);
        }
    }

    let mut images = Vec::new();
    for src in &programs {
        let program = pgg.parse(src).expect("parse near-miss");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen near-miss");
        images.push(service.specialize(&ext, &int(4)).expect("specialize"));
    }

    // Every program got its own entry and its own specializer run.
    let stats = service.stats();
    assert_eq!(stats.misses, programs.len() as u64);
    assert_eq!(stats.spec_runs, programs.len() as u64);
    assert_eq!(stats.hits, 0);
    assert_eq!(service.len(), programs.len());
    for (i, a) in images.iter().enumerate() {
        for b in &images[i + 1..] {
            assert!(!Arc::ptr_eq(&a.image, &b.image));
        }
    }

    // And the variants compute what their source says, not what a cache
    // collision would have handed them: (power 4 x) with `+` and base b
    // is b + 4x; with `*` it is b * x^4.
    for (src, outcome) in programs.iter().zip(&images) {
        let result = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(3))
            .expect("run variant")
            .value;
        let expected = expected_power4(src);
        assert_eq!(result, Datum::Int(expected), "program: {src}");
    }
}

/// Ground truth for `(power 4 3)` under the near-miss grammar.
fn expected_power4(src: &str) -> i64 {
    let base: i64 = src
        .split("(= n 0) ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse base from source");
    if src.contains("(+ x (power") {
        base + 3 * 4
    } else {
        base * 3_i64.pow(4)
    }
}

#[test]
fn concurrent_same_key_specializes_once() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    const THREADS: usize = 8;

    let images: Vec<Arc<two4one::Image>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let ext = &ext;
                let service = &service;
                s.spawn(move || {
                    service
                        .specialize(ext, &int(6))
                        .expect("specialize")
                        .image
                        .clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("requester thread"))
            .collect()
    });

    let stats = service.stats();
    // Single-flight: exactly one specializer run however the threads
    // interleave; everyone else hit the cache or joined the flight.
    assert_eq!(stats.spec_runs, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, THREADS as u64 - 1);
    for img in &images[1..] {
        assert!(Arc::ptr_eq(&images[0], img));
    }
}

#[test]
fn batch_api_dedups_and_preserves_order() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    let requests: Vec<SpecRequest> = [2, 3, 2, 4, 3, 2]
        .into_iter()
        .map(|n| SpecRequest::new(ext.clone(), int(n)))
        .collect();

    let results = service.specialize_many(&requests, 4);
    assert_eq!(results.len(), requests.len());
    let outcomes: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("batch result"))
        .collect();

    // Three distinct keys → exactly three specializer runs.
    assert_eq!(service.stats().spec_runs, 3);
    // Order is preserved: duplicates share the same image.
    assert!(Arc::ptr_eq(&outcomes[0].image, &outcomes[2].image));
    assert!(Arc::ptr_eq(&outcomes[0].image, &outcomes[5].image));
    assert!(Arc::ptr_eq(&outcomes[1].image, &outcomes[4].image));
    assert!(!Arc::ptr_eq(&outcomes[0].image, &outcomes[1].image));
    assert!(!Arc::ptr_eq(&outcomes[0].image, &outcomes[3].image));

    // Warm batch: all hits, no new runs.
    let again = service.specialize_many(&requests, 2);
    assert!(again.iter().all(|r| r.is_ok()));
    assert_eq!(service.stats().spec_runs, 3);
}

#[test]
fn eviction_keeps_cache_bounded() {
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        max_entries: 3,
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    for n in 1..=6 {
        service.specialize(&ext, &int(n)).expect("fill");
    }
    assert!(service.len() <= 3);
    let stats = service.stats();
    assert_eq!(stats.spec_runs, 6);
    assert_eq!(stats.evictions, 3);

    // The most recent keys survived; an evicted key is a fresh miss.
    service.specialize(&ext, &int(6)).expect("warm recent");
    assert_eq!(service.stats().spec_runs, 6);
    service.specialize(&ext, &int(1)).expect("refill evicted");
    assert_eq!(service.stats().spec_runs, 7);
}

#[test]
fn code_budget_evicts_lru() {
    // A tiny code cap (in instructions) forces size-based eviction.
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        max_entries: 1024,
        limits: Limits::default().with_code_cap(1),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    service.specialize(&ext, &int(2)).expect("first");
    service.specialize(&ext, &int(3)).expect("second");
    // Budget of 1 instruction cannot hold two images; the older one went.
    assert_eq!(service.len(), 1);
    assert!(service.stats().evictions >= 1);
}

#[test]
fn errors_are_reported_and_not_cached() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());

    // Wrong number of static arguments → specialization error.
    let err = service
        .specialize(&ext, &[Datum::Int(1), Datum::Int(2)])
        .expect_err("arity mismatch must fail");
    assert!(matches!(err, ServeError::Spec(_)));
    let stats = service.stats();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.misses, 0);
    assert!(service.is_empty());

    // Errors are not cached: the same request fails afresh (and the
    // specializer runs again), rather than serving a poisoned entry.
    let _ = service
        .specialize(&ext, &[Datum::Int(1), Datum::Int(2)])
        .expect_err("still fails");
    assert_eq!(service.stats().errors, 2);

    // The service remains fully usable afterwards.
    let ok = service.specialize(&ext, &int(3)).expect("healthy request");
    let out =
        two4one::run_image(&ok.image, ok.image.entry.as_str(), &int(2)).expect("run residual");
    assert_eq!(out.value, Datum::Int(8));
}

#[test]
fn degraded_fills_are_counted() {
    // Starve the specializer of unfold fuel so it falls back to generic
    // code (PR 1 machinery), and check the service surfaces that.
    let pgg = Pgg::new().unfold_fuel(1);
    let ext = power_ext(&pgg);
    let service = SpecService::new();
    let outcome = service.specialize(&ext, &int(40)).expect("degraded fill");
    assert!(outcome.stats.degraded());
    let stats = service.stats();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.spec_runs, 1);

    // Degraded residual code is still correct.
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run degraded");
    assert_eq!(out.value, Datum::Int(1_099_511_627_776));
}

#[test]
fn distinct_options_do_not_share_entries() {
    // Same program, same statics, different limits: the key must differ,
    // because the residual code can differ (e.g. degraded vs. full).
    let service = SpecService::new();
    let full = power_ext(&Pgg::new());
    let starved = power_ext(&Pgg::new().unfold_fuel(1));
    let a = service.specialize(&full, &int(10)).expect("full");
    let b = service.specialize(&starved, &int(10)).expect("starved");
    assert_eq!(service.stats().spec_runs, 2);
    assert!(!Arc::ptr_eq(&a.image, &b.image));
    assert!(!a.stats.degraded());
    assert!(b.stats.degraded());
}

// ---------------------------------------------------------------------
// Fault tolerance: admission control and load shedding
// ---------------------------------------------------------------------

/// A gate fill workers block on until the test opens it, so overload is
/// reproducible rather than racing against specializer speed.
#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn wait(&self) {
        let mut open = self.open.lock().expect("latch lock");
        while !*open {
            open = self.cv.wait(open).expect("latch wait");
        }
    }

    fn release(&self) {
        *self.open.lock().expect("latch lock") = true;
        self.cv.notify_all();
    }
}

/// Polls `cond` until it holds or ~5 s pass.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let give_up = Instant::now() + Duration::from_secs(5);
    while Instant::now() < give_up {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn overload_sheds_beyond_gate_capacity_and_recovers() {
    const BURST: usize = 32;
    const CAPACITY: usize = 6; // max_inflight 2 + queue_bound 4

    let latch = Arc::new(Latch::default());
    let hook_latch = latch.clone();
    let service = SpecService::with_config(ServeConfig {
        max_inflight: 2,
        queue_bound: 4,
        fill_hook: Some(FillHook::new(move || hook_latch.wait())),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());

    let (admitted, shed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|n| {
                let service = &service;
                let ext = &ext;
                // Distinct statics: every request is a leader, so each
                // must pass the admission gate.
                s.spawn(move || service.specialize(ext, &int(n as i64 + 1)))
            })
            .collect();
        // The burst settles into: 2 filling (blocked on the latch),
        // 4 queued for admission, everyone else shed immediately.
        assert!(
            eventually(|| service.stats().shed == (BURST - CAPACITY) as u64),
            "expected {} sheds, saw {} ({})",
            BURST - CAPACITY,
            service.stats().shed,
            service.stats()
        );
        latch.release();
        let mut admitted = 0;
        let mut shed = 0;
        for h in handles {
            match h.join().expect("request thread") {
                Ok(_) => admitted += 1,
                Err(ServeError::Overloaded {
                    queue_depth,
                    retry_after_ms,
                }) => {
                    shed += 1;
                    assert_eq!(queue_depth, 4);
                    assert!(retry_after_ms > 0);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        (admitted, shed)
    });

    // At most capacity requests were ever admitted (2 running + 4
    // queued); the queued ones completed once the latch opened.
    assert_eq!(admitted, CAPACITY);
    assert_eq!(shed, BURST - CAPACITY);
    let stats = service.stats();
    assert_eq!(stats.shed, (BURST - CAPACITY) as u64);
    assert_eq!(stats.spec_runs, CAPACITY as u64);

    // The service is fully usable after the storm: shed keys are plain
    // misses now, nothing is wedged.
    let outcome = service.specialize(&ext, &int(40)).expect("after storm");
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(1))
        .expect("run residual");
    assert_eq!(out.value, Datum::Int(1));
}

#[test]
fn disconnected_waiter_detaches_without_cancelling_leader() {
    // Regression for the waiter/leader deadline interaction on coalesced
    // flights: a network client that disconnects while parked as a
    // coalesced waiter must detach promptly — without cancelling the
    // leader, whose result must still land in the cache.
    let latch = Arc::new(Latch::default());
    let hook_latch = latch.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || hook_latch.wait())),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());

    std::thread::scope(|s| {
        let service = &service;
        let ext = &ext;
        // Leader: parked inside the fill on the latch.
        let leader = s.spawn(move || service.specialize(ext, &int(7)));
        assert!(eventually(|| service.inflight() == 1));
        // Waiter: coalesces onto the same key, carrying its own token.
        let token = CancelToken::new();
        let wtoken = token.clone();
        let waiter = s.spawn(move || {
            let req = SpecRequest::new(ext.clone(), int(7)).with_cancel(wtoken);
            service.specialize_request(&req)
        });
        assert!(eventually(|| service.stats().coalesced == 1));
        // The client disconnects: fire the waiter's token. The waiter
        // detaches while the leader is still blocked in its fill.
        token.cancel();
        let got = waiter.join().expect("waiter thread");
        assert!(
            matches!(got, Err(ServeError::Cancelled)),
            "waiter should detach as Cancelled, got {got:?}"
        );
        // The leader was never cancelled: release it and it completes.
        latch.release();
        assert!(leader.join().expect("leader thread").is_ok());
    });

    // No stranded flight, and the leader's result was cached normally.
    assert_eq!(service.inflight(), 0);
    assert_eq!(service.len(), 1);
    let hits_before = service.stats().hits;
    assert!(service.specialize(&ext, &int(7)).is_ok());
    assert_eq!(service.stats().hits, hits_before + 1);
}

// ---------------------------------------------------------------------
// Fault tolerance: deadlines and cancellation
// ---------------------------------------------------------------------

/// A program whose full specialization is far too slow for the tests'
/// deadlines: each unfolding peels one recursion, and `SPIN_N` is huge.
const SPIN: &str = "(define (spin n) (if (= n 0) 0 (spin (- n 1))))";
const SPIN_N: i64 = 50_000_000;

fn spin_ext(pgg: &Pgg) -> two4one::GenExt {
    let program = pgg.parse(SPIN).expect("parse spin");
    pgg.cogen(&program, "spin", &Division::new([BT::Static]))
        .expect("cogen spin")
}

#[test]
fn deadline_aborts_long_specialization_promptly() {
    let service = SpecService::with_config(ServeConfig {
        max_inflight: 1,
        ..ServeConfig::default()
    });
    let ext = spin_ext(&Pgg::new());

    let t0 = Instant::now();
    let req = SpecRequest::new(ext.clone(), int(SPIN_N)).with_deadline(Duration::from_millis(20));
    let err = service.specialize_request(&req).expect_err("must time out");
    assert!(matches!(err, ServeError::DeadlineExceeded), "got: {err}");
    // Prompt: worst case is one deadline-check stride in the specializer,
    // not the seconds the full 50M-unfold run would take.
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "deadline abort took {:?}",
        t0.elapsed()
    );
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert!(service.is_empty(), "aborted fill must not be cached");

    // The worker and its admission permit were reclaimed: with
    // max_inflight 1, a leaked permit would park this next fill in the
    // admission queue until its deadline.
    let ok =
        SpecRequest::new(power_ext(&Pgg::new()), int(5)).with_deadline(Duration::from_secs(30));
    let outcome = service.specialize_request(&ok).expect("service usable");
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run residual");
    assert_eq!(out.value, Datum::Int(32));
}

#[test]
fn explicit_cancellation_stops_a_running_fill() {
    let service = SpecService::new();
    let ext = spin_ext(&Pgg::new());
    let token = CancelToken::new();
    let req = SpecRequest::new(ext, int(SPIN_N)).with_cancel(token.clone());

    let err = std::thread::scope(|s| {
        let handle = s.spawn(|| service.specialize_request(&req));
        // Let the fill get going, then pull the plug.
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        handle
            .join()
            .expect("request thread")
            .expect_err("cancelled")
    });
    assert!(matches!(err, ServeError::Cancelled), "got: {err}");
    assert!(service.is_empty());
}

#[test]
fn waiter_deadline_does_not_cancel_the_leader() {
    // A waiter with a short deadline gives up on a slow flight; the
    // leader keeps running and its result lands in the cache.
    let latch = Arc::new(Latch::default());
    let hook_latch = latch.clone();
    let entered = Arc::new(AtomicUsize::new(0));
    let hook_entered = entered.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || {
            hook_entered.fetch_add(1, Ordering::SeqCst);
            hook_latch.wait();
        })),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());

    std::thread::scope(|s| {
        let leader = s.spawn(|| service.specialize(&ext, &int(7)));
        assert!(eventually(|| entered.load(Ordering::SeqCst) == 1));
        // Same key, tight deadline: coalesces onto the flight, times out.
        let req = SpecRequest::new(ext.clone(), int(7)).with_deadline(Duration::from_millis(20));
        let err = service.specialize_request(&req).expect_err("waiter");
        assert!(matches!(err, ServeError::DeadlineExceeded), "got: {err}");
        latch.release();
        leader
            .join()
            .expect("leader thread")
            .expect("leader result");
    });

    // One run, cached: the waiter's deadline cost the system nothing.
    let stats = service.stats();
    assert_eq!(stats.spec_runs, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(service.len(), 1);
}

// ---------------------------------------------------------------------
// Fault tolerance: escalated-budget retry
// ---------------------------------------------------------------------

#[test]
fn transient_starvation_is_retried_with_a_bigger_budget() {
    // Fuel 4 cannot finish power^20 (21 unfoldings); the escalated retry
    // at 4 * 16 = 64 can. The caller sees a clean, undegraded result.
    let service = SpecService::with_config(ServeConfig {
        retry: RetryPolicy {
            max_retries: 1,
            escalation: 16,
            backoff: Duration::from_millis(1),
        },
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new().unfold_fuel(4));
    let outcome = service.specialize(&ext, &int(20)).expect("retried fill");
    assert!(!outcome.stats.degraded(), "escalated retry should finish");
    let stats = service.stats();
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.spec_runs, 1, "retry happens inside one fill");

    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run residual");
    assert_eq!(out.value, Datum::Int(1 << 20));
}

#[test]
fn retry_disabled_keeps_the_degraded_result() {
    let service = SpecService::with_config(ServeConfig {
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new().unfold_fuel(4));
    let outcome = service.specialize(&ext, &int(20)).expect("degraded fill");
    assert!(outcome.stats.degraded());
    assert_eq!(service.stats().retried, 0);
    assert_eq!(service.stats().degraded, 1);
}

// ---------------------------------------------------------------------
// Fault tolerance: circuit breaker
// ---------------------------------------------------------------------

#[test]
fn open_breaker_serves_generic_fallback_without_specializing() {
    let service = SpecService::with_config(ServeConfig {
        breaker: BreakerPolicy {
            threshold: 2,
            cooldown: Duration::from_secs(600),
        },
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    let bad = [Datum::Int(1), Datum::Int(2)]; // arity mismatch: hard failure

    for _ in 0..2 {
        let err = service.specialize(&ext, &bad).expect_err("arity mismatch");
        assert!(matches!(err, ServeError::Spec(_)));
    }

    // Tripped: even a well-formed request is answered with generic
    // fallback code instead of running the specializer.
    let runs_before = service.stats().spec_runs;
    let outcome = service.specialize(&ext, &int(5)).expect("fallback");
    let stats = service.stats();
    assert_eq!(stats.breaker_open, 1);
    assert_eq!(stats.spec_runs, runs_before, "no specializer run");
    assert!(service.is_empty(), "fallback code is never cached");

    // Generic fallback is still *correct* code for these statics.
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run fallback");
    assert_eq!(out.value, Datum::Int(32));
}

#[test]
fn breaker_recovers_through_a_half_open_probe() {
    let service = SpecService::with_config(ServeConfig {
        breaker: BreakerPolicy {
            threshold: 1,
            cooldown: Duration::ZERO,
        },
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    let bad = [Datum::Int(1), Datum::Int(2)];

    let _ = service.specialize(&ext, &bad).expect_err("trips breaker");
    // Cooldown zero: the next request is the half-open probe. A failing
    // probe re-opens the breaker...
    let _ = service.specialize(&ext, &bad).expect_err("probe fails");
    // ...and a succeeding probe closes it for good.
    let ok = service.specialize(&ext, &int(3)).expect("probe succeeds");
    assert!(!ok.stats.degraded());
    let warm = service.specialize(&ext, &int(3)).expect("healthy again");
    assert!(Arc::ptr_eq(&ok.image, &warm.image));
    assert_eq!(service.stats().breaker_open, 0);
}

// ---------------------------------------------------------------------
// Fault tolerance: panic recovery (no deadlocked waiters, ever)
// ---------------------------------------------------------------------

#[test]
fn panic_during_spawned_fill_is_an_error_not_a_deadlock() {
    let plan = PanicPlan::once();
    let hook_plan = plan.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || hook_plan.tick())),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());

    let err = service.specialize(&ext, &int(9)).expect_err("worker died");
    assert!(matches!(err, ServeError::Worker(_)), "got: {err}");
    assert_eq!(service.stats().errors, 1);
    assert!(service.is_empty(), "no stuck in-flight slot");

    // The same key works on the next attempt (the plan only fires once).
    let outcome = service.specialize(&ext, &int(9)).expect("recovered");
    assert_eq!(plan.calls(), 2);
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run residual");
    assert_eq!(out.value, Datum::Int(512));
}

#[test]
fn panic_during_inline_pool_fill_fails_only_that_request() {
    // Pool workers (specialize_many) run fills inline on their own big
    // stacks; a panic there must convert to a Worker error for that one
    // request, not tear down the batch.
    let plan = PanicPlan::once();
    let hook_plan = plan.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || hook_plan.tick())),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    let requests: Vec<SpecRequest> = (1..=4)
        .map(|n| SpecRequest::new(ext.clone(), int(n)))
        .collect();

    let results = service.specialize_many(&requests, 2);
    let failed = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Worker(_))))
        .count();
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(failed, 1, "exactly the injected panic fails");
    assert_eq!(succeeded, 3);

    // And the poisoned key is retryable afterwards.
    let retry = service.specialize_many(&requests, 2);
    assert!(retry.iter().all(|r| r.is_ok()));
}

#[test]
fn waiters_on_a_panicking_leader_are_woken_with_an_error() {
    // The leader panics mid-fill while others are coalesced on its
    // flight: every waiter must come back (error or a successful
    // re-lead), and a fresh request afterwards must succeed. Before the
    // flight guard, this scenario deadlocked the waiters forever.
    let entered = Arc::new(AtomicUsize::new(0));
    let hook_entered = entered.clone();
    let latch = Arc::new(Latch::default());
    let hook_latch = latch.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || {
            // First fill: wait until the test saw the waiters pile up,
            // then panic. Later fills run clean.
            if hook_entered.fetch_add(1, Ordering::SeqCst) == 0 {
                hook_latch.wait();
                panic!("injected fault: leader dies with waiters parked");
            }
        })),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());

    std::thread::scope(|s| {
        let leader = s.spawn(|| service.specialize(&ext, &int(11)));
        assert!(eventually(|| entered.load(Ordering::SeqCst) == 1));
        let waiters: Vec<_> = (0..3)
            .map(|_| s.spawn(|| service.specialize(&ext, &int(11))))
            .collect();
        assert!(eventually(|| service.stats().coalesced == 3));
        latch.release();
        let lead_result = leader.join().expect("leader thread");
        assert!(
            matches!(lead_result, Err(ServeError::Worker(_))),
            "leader sees the panic"
        );
        for w in waiters {
            // Waiters either shared the leader's error or re-led after
            // the slot was cleaned up; both are fine — hanging is not.
            let _ = w.join().expect("waiter thread returned");
        }
    });

    let outcome = service.specialize(&ext, &int(11)).expect("usable after");
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run residual");
    assert_eq!(out.value, Datum::Int(2048));
}

// ---------------------------------------------------------------------
// Fault tolerance: crash-safe snapshots
// ---------------------------------------------------------------------

#[test]
fn snapshot_restore_round_trip_restores_warm_hits() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    for n in [3, 5, 8] {
        service.specialize(&ext, &int(n)).expect("fill");
    }
    let bytes = service.snapshot_bytes();
    // Deterministic: equal cache contents, equal bytes.
    assert_eq!(bytes, service.snapshot_bytes());
    drop(service); // the "crash"

    let revived = SpecService::new();
    let report = revived.restore_bytes(&bytes);
    assert_eq!(report.restored, 3);
    assert_eq!(report.quarantined, 0);
    assert_eq!(revived.len(), 3);

    // First request after restart: warm hit, zero specializer work.
    let outcome = revived.specialize(&ext, &int(5)).expect("warm restart");
    let stats = revived.stats();
    assert_eq!(stats.spec_runs, 0);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.restored, 3);
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run restored");
    assert_eq!(out.value, Datum::Int(32));

    // A restored snapshot re-snapshots bit-exactly.
    assert_eq!(revived.snapshot_bytes(), bytes);
}

#[test]
fn corrupted_snapshots_are_quarantined_never_fatal() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    for n in [2, 4, 6, 9] {
        service.specialize(&ext, &int(n)).expect("fill");
    }
    let good = service.snapshot_bytes();

    for seed in 0..80 {
        let mut rng = Rng::new(seed);
        let (bad, kind) = corrupt(&good, &mut rng);
        let revived = SpecService::new();
        // Must never panic, whatever the damage; losses are counted.
        let report = revived.restore_bytes(&bad);
        assert!(
            report.restored + report.quarantined > 0 || revived.is_empty(),
            "seed {seed} ({kind:?}): empty report on damaged input"
        );
        assert!(
            revived.len() as u64 == report.restored,
            "seed {seed} ({kind:?}): cache size disagrees with report"
        );
        // Whatever survived must serve real hits afterwards.
        let outcome = revived.specialize(&ext, &int(2)).expect("usable");
        let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(3))
            .expect("run after restore");
        assert_eq!(out.value, Datum::Int(9));
    }

    // A wholesale-garbage file quarantines and leaves the service empty
    // but healthy.
    let revived = SpecService::new();
    let report = revived.restore_bytes(b"not a snapshot at all");
    assert_eq!(report.restored, 0);
    assert!(report.quarantined > 0);
    assert!(revived.is_empty());
    assert!(revived.stats().quarantined > 0);
    revived.specialize(&ext, &int(3)).expect("healthy");
}

#[test]
fn snapshot_file_round_trip_via_tempfile() {
    let dir = std::env::temp_dir().join(format!(
        "t4o-snap-test-{}-{:x}",
        std::process::id(),
        Rng::new(0xfeed).next_u64()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("cache.t4os");

    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    service.specialize(&ext, &int(6)).expect("fill");
    service.snapshot(&path).expect("snapshot to disk");

    let revived = SpecService::new();
    let report = revived.restore(&path).expect("restore from disk");
    assert_eq!(report.restored, 1);
    assert_eq!(report.quarantined, 0);
    revived.specialize(&ext, &int(6)).expect("warm");
    assert_eq!(revived.stats().spec_runs, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_hit_records_hit_metric_and_no_specializer_spans() {
    use two4one::obs;

    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());

    // Cold fill: the request's trace (absorbed back from the big-stack
    // worker) must contain a specialize-phase span.
    obs::clear_trace();
    service.specialize(&ext, &int(9)).expect("cold");
    let cold_trace = obs::take_trace();
    assert!(
        cold_trace
            .iter()
            .any(|e| matches!(e.what, obs::TraceWhat::Enter(obs::Phase::Specialize))),
        "cold fill should trace a specialize span: {}",
        obs::render_trace(&cold_trace)
    );

    // Warm hit: a cache-hit event and not a single specializer span.
    obs::clear_trace();
    service.specialize(&ext, &int(9)).expect("warm");
    let warm_trace = obs::take_trace();
    assert!(
        warm_trace
            .iter()
            .any(|e| matches!(e.what, obs::TraceWhat::Point(obs::EventKind::CacheHit, _))),
        "warm hit should trace a cache-hit event: {}",
        obs::render_trace(&warm_trace)
    );
    assert!(
        !warm_trace.iter().any(|e| matches!(
            e.what,
            obs::TraceWhat::Enter(obs::Phase::Specialize)
                | obs::TraceWhat::Exit {
                    phase: obs::Phase::Specialize,
                    ..
                }
        )),
        "warm hit must not touch the specializer: {}",
        obs::render_trace(&warm_trace)
    );

    // The same facts appear in the exposition page.
    let page = service.metrics().to_prometheus();
    assert!(page.contains("t4o_serve_hits_total 1\n"), "{page}");
    assert!(page.contains("t4o_serve_requests_total 2\n"), "{page}");
}

// ---------------------------------------------------------------------
// Live redefinition: versioned registry, backedges, tombstones
// ---------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, AtomicU64};
use two4one_server::SpecOutcome;

/// One generation of the hammer's program: the epoch number is baked
/// into the source, so running a residual image reveals which
/// generation it was specialized from (`value = 1000*epoch + s*d`).
fn epoch_src(epoch: u64) -> String {
    format!("(define (hot s d) (+ {} (* s d)))", epoch * 1000)
}

fn epoch_ext(epoch: u64) -> two4one::GenExt {
    let pgg = Pgg::new();
    let program = pgg.parse(&epoch_src(epoch)).expect("parse generation");
    pgg.cogen(&program, "hot", &Division::new([BT::Static, BT::Dynamic]))
        .expect("cogen generation")
}

/// Runs a served outcome with `d = 1` and decodes `(epoch, s)`.
fn decode(outcome: &SpecOutcome) -> (u64, i64) {
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(1))
        .expect("run residual");
    let Datum::Int(v) = out.value else {
        panic!("non-integer residual result: {:?}", out.value)
    };
    ((v / 1000) as u64, v % 1000)
}

#[test]
fn named_requests_resolve_register_and_unknown_names_error() {
    let service = SpecService::new();
    let err = service
        .specialize_named("nowhere", &int(1))
        .expect_err("unregistered name");
    assert!(matches!(err, ServeError::UnknownProgram(_)), "got: {err}");

    let e1 = service.register("hot", &epoch_ext(1));
    assert_eq!(e1.get(), 1);
    // Identical content re-registered: same generation, not a new one.
    assert_eq!(service.register("hot", &epoch_ext(1)), e1);

    let cold = service.specialize_named("hot", &int(4)).expect("cold");
    assert_eq!(decode(&cold), (1, 4));
    let warm = service.specialize_named("hot", &int(4)).expect("warm");
    assert!(Arc::ptr_eq(&cold.image, &warm.image));
    let stats = service.stats();
    assert_eq!(stats.spec_runs, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(service.programs().len(), 1);

    // Batch requests can address programs by name too.
    let reqs = vec![
        SpecRequest::named("hot", int(4)),
        SpecRequest::named("hot", int(5)),
    ];
    let results = service.specialize_many(&reqs, 2);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(service.stats().spec_runs, 2);
}

#[test]
fn redefine_invalidates_only_the_redefined_program() {
    let service = SpecService::new();
    service.register("hot", &epoch_ext(1));
    let other_src = "(define (scale s d) (* s d))";
    let other = {
        let pgg = Pgg::new();
        let p = pgg.parse(other_src).expect("parse other");
        pgg.cogen(&p, "scale", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen other")
    };
    service.register("other", &other);
    let anon = power_ext(&Pgg::new());

    for s in [1, 2, 3] {
        service.specialize_named("hot", &int(s)).expect("fill hot");
    }
    service
        .specialize_named("other", &int(7))
        .expect("fill other");
    service.specialize(&anon, &int(5)).expect("fill anon");
    assert_eq!(service.len(), 5);

    let outcome = service.redefine("hot", &epoch_ext(2));
    assert_eq!(outcome.epoch.get(), 2);
    assert_eq!(outcome.invalidated, 3, "exactly hot's entries dropped");
    assert_eq!(service.len(), 2, "other + anonymous survive");
    assert_eq!(service.epoch_of("hot").map(|e| e.get()), Some(2));

    // The survivors are still warm; the redefined program re-specializes
    // from the new source and returns the new generation's result.
    let runs = service.stats().spec_runs;
    service
        .specialize_named("other", &int(7))
        .expect("other warm");
    service.specialize(&anon, &int(5)).expect("anon warm");
    assert_eq!(service.stats().spec_runs, runs, "unrelated entries warm");
    let fresh = service.specialize_named("hot", &int(2)).expect("refill");
    assert_eq!(decode(&fresh), (2, 2));
    let stats = service.stats();
    assert_eq!(stats.spec_runs, runs + 1);
    assert_eq!(stats.invalidated, 3);
}

#[test]
fn redefine_tombstones_an_in_flight_leader_of_the_old_epoch() {
    // The leader starts filling under epoch 1; while it is blocked
    // mid-fill the program is redefined. The leader's caller still gets
    // its (old-generation) result — the request predates the
    // redefinition — but the publication is tombstoned: never cached,
    // never served again.
    let latch = Arc::new(Latch::default());
    let entered = Arc::new(AtomicUsize::new(0));
    let hook_latch = latch.clone();
    let hook_entered = entered.clone();
    let service = SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || {
            // Only the first fill blocks; post-redefinition fills run
            // clean.
            if hook_entered.fetch_add(1, Ordering::SeqCst) == 0 {
                hook_latch.wait();
            }
        })),
        ..ServeConfig::default()
    });
    service.register("hot", &epoch_ext(1));

    std::thread::scope(|s| {
        let leader = s.spawn(|| service.specialize_named("hot", &int(3)));
        assert!(eventually(|| entered.load(Ordering::SeqCst) == 1));
        let outcome = service.redefine("hot", &epoch_ext(2));
        assert_eq!(outcome.epoch.get(), 2);
        assert_eq!(outcome.invalidated, 0, "nothing published yet");
        latch.release();
        let led = leader.join().expect("leader thread").expect("leader ok");
        // The old-generation result went to the caller that asked for it…
        assert_eq!(decode(&led), (1, 3));
    });

    // …but was never cached: the cache is empty, the conflicts counted
    // (one for the gen-ext build that outlived its generation, one for
    // the tombstoned result publication), and the next request
    // specializes fresh from the new source.
    assert!(service.is_empty(), "tombstoned publication must not cache");
    assert_eq!(service.stats().epoch_conflicts, 2);
    assert!(
        service.genext_of("hot").is_none(),
        "the dead generation's gen-ext build must not be cached"
    );
    let fresh = service.specialize_named("hot", &int(3)).expect("new gen");
    assert_eq!(decode(&fresh), (2, 3));
    assert_eq!(service.stats().spec_runs, 2);
}

#[test]
fn redefine_hammer_never_serves_stale_epochs() {
    // 8 threads: one redefines in a loop while seven workers specialize
    // and serve. Linearizability claim under test: a request *started*
    // after `redefine(e)` returned never yields a generation older than
    // `e` (requests already in flight may legitimately finish with the
    // generation they started under).
    const EPOCHS: u64 = 12;
    const WORKERS: usize = 7;
    const KEYS: i64 = 3;

    let service = SpecService::new();
    service.register("hot", &epoch_ext(1));
    let published = AtomicU64::new(1);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let service = &service;
        let published = &published;
        let done = &done;
        s.spawn(move || {
            for e in 2..=EPOCHS {
                let outcome = service.redefine("hot", &epoch_ext(e));
                assert_eq!(outcome.epoch.get(), e);
                published.store(e, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::SeqCst);
        });
        for w in 0..WORKERS {
            s.spawn(move || {
                let mut served = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let s_arg = (w as i64 + served as i64) % KEYS + 1;
                    let lo = published.load(Ordering::SeqCst);
                    let outcome = service
                        .specialize_named("hot", &int(s_arg))
                        .expect("serve during redefinition");
                    let (epoch, s_res) = decode(&outcome);
                    assert_eq!(s_res, s_arg, "wrong key's residual");
                    assert!(
                        epoch >= lo,
                        "stale-epoch result: got generation {epoch}, \
                         but {lo} was already live before the request"
                    );
                    served += 1;
                }
                assert!(served > 0, "worker {w} never served");
            });
        }
    });

    let stats = service.stats();
    // Per (epoch, key) the single-flight cache runs the specializer at
    // most once, plus a bounded number of races where a fill resolved
    // the old epoch just before a bump (its publication is tombstoned
    // and counted as an epoch conflict, never served stale).
    assert!(
        stats.spec_runs <= 2 * EPOCHS * KEYS as u64,
        "specializer ran {} times for {} epochs x {} keys",
        stats.spec_runs,
        EPOCHS,
        KEYS
    );
    assert_eq!(service.epoch_of("hot").map(|e| e.get()), Some(EPOCHS));

    // Deterministic invalidation accounting once the dust settles: fill
    // all keys, then one more redefinition drops exactly those.
    for s_arg in 1..=KEYS {
        service.specialize_named("hot", &int(s_arg)).expect("fill");
    }
    let outcome = service.redefine("hot", &epoch_ext(EPOCHS + 1));
    assert_eq!(outcome.invalidated, KEYS as u64);
    assert!(service.stats().invalidated >= KEYS as u64);
    let last = service.specialize_named("hot", &int(1)).expect("fresh");
    assert_eq!(decode(&last), (EPOCHS + 1, 1));
}

#[test]
fn redefine_resets_breaker_so_v1_failures_do_not_block_v2() {
    let service = SpecService::with_config(ServeConfig {
        breaker: BreakerPolicy {
            threshold: 2,
            cooldown: Duration::from_secs(600),
        },
        ..ServeConfig::default()
    });
    service.register("hot", &epoch_ext(1));
    let bad = [Datum::Int(1), Datum::Int(2)]; // arity mismatch: hard failure

    for _ in 0..2 {
        let err = service
            .specialize_named("hot", &bad)
            .expect_err("arity mismatch");
        assert!(matches!(err, ServeError::Spec(_)));
    }
    // Open: a good request is served generic fallback, not specialized.
    let runs = service.stats().spec_runs;
    service.specialize_named("hot", &int(2)).expect("fallback");
    assert_eq!(service.stats().breaker_open, 1);
    assert_eq!(service.stats().spec_runs, runs);

    // v2 is a new generation: the breaker state keyed to the logical
    // name is voided by the epoch change, so the first v2 request
    // specializes normally — no cooldown wait, no fallback.
    service.redefine("hot", &epoch_ext(2));
    let healthy = service.specialize_named("hot", &int(2)).expect("v2 clean");
    assert_eq!(decode(&healthy), (2, 2));
    let stats = service.stats();
    assert_eq!(stats.spec_runs, runs + 1, "v2 ran the specializer");
    assert_eq!(stats.breaker_open, 1, "no new fallbacks after redefine");
}

#[test]
fn redefine_makes_snapshot_records_stale_exactly_per_program() {
    // Service A: two named programs plus anonymous traffic.
    let a = SpecService::new();
    a.register("hot", &epoch_ext(1));
    a.register("cool", &epoch_ext(9));
    let anon = power_ext(&Pgg::new());
    for s in [1, 2] {
        a.specialize_named("hot", &int(s)).expect("fill hot");
        a.specialize_named("cool", &int(s)).expect("fill cool");
        a.specialize(&anon, &int(s)).expect("fill anon");
    }
    let bytes = a.snapshot_bytes();
    assert_eq!(bytes, a.snapshot_bytes(), "snapshot is deterministic");

    // Service B ("after the crash"): `hot` was redefined before the
    // restore, `cool` was not. Exactly hot's records drop as stale.
    let b = SpecService::new();
    b.register("hot", &epoch_ext(2));
    b.register("cool", &epoch_ext(9));
    let report = b.restore_bytes(&bytes);
    assert_eq!(report.restored, 4, "cool + anonymous records survive");
    assert_eq!(report.stale_dropped, 2, "exactly hot's records drop");
    assert_eq!(report.quarantined, 0);
    assert_eq!(b.stats().stale_dropped, 2);

    // Survivors are warm (zero specializer work)…
    for s in [1, 2] {
        b.specialize_named("cool", &int(s)).expect("cool warm");
        b.specialize(&anon, &int(s)).expect("anon warm");
    }
    assert_eq!(b.stats().spec_runs, 0);
    assert_eq!(b.stats().hits, 4);
    // …and the redefined program re-specializes from its new source.
    let fresh = b.specialize_named("hot", &int(1)).expect("hot refill");
    assert_eq!(decode(&fresh), (2, 1));

    // Bit-exactness of the survivors: a reference service that never had
    // `hot` entries at all snapshots to the same bytes as B did before
    // refilling hot (restore preserved the surviving records exactly).
    let reference = SpecService::new();
    reference.register("cool", &epoch_ext(9));
    for s in [1, 2] {
        reference
            .specialize_named("cool", &int(s))
            .expect("reference fill");
        reference
            .specialize(&anon, &int(s))
            .expect("reference anon");
    }
    let c = SpecService::new();
    c.register("hot", &epoch_ext(2));
    c.register("cool", &epoch_ext(9));
    c.restore_bytes(&bytes);
    assert_eq!(c.snapshot_bytes(), reference.snapshot_bytes());
}

#[test]
fn redefine_restore_races_are_counted_not_served() {
    // A redefinition racing the restore itself: records judged live at
    // parse time may be tombstoned at publication time. Here the program
    // is redefined *between* snapshot and restore into the same service,
    // so every one of its records is already stale by identity.
    let service = SpecService::new();
    service.register("hot", &epoch_ext(1));
    service.specialize_named("hot", &int(1)).expect("fill");
    let bytes = service.snapshot_bytes();
    service.redefine("hot", &epoch_ext(2));
    let report = service.restore_bytes(&bytes);
    assert_eq!(report.restored, 0);
    assert_eq!(report.stale_dropped, 1);
    assert!(service.is_empty());
}

#[test]
fn corrupted_named_snapshots_are_quarantined_never_fatal() {
    // The 80-seed corruption sweep against the epoch-aware (v3) record
    // format: named records carry `(name, epoch)` payload fields, and no
    // damage to them may panic the restore.
    let service = SpecService::new();
    service.register("hot", &epoch_ext(1));
    for s in [1, 2, 3] {
        service.specialize_named("hot", &int(s)).expect("fill");
    }
    service
        .specialize(&power_ext(&Pgg::new()), &int(4))
        .expect("anon fill");
    let good = service.snapshot_bytes();

    for seed in 0..80 {
        let mut rng = Rng::new(seed);
        let (bad, kind) = corrupt(&good, &mut rng);
        let revived = SpecService::new();
        revived.register("hot", &epoch_ext(1));
        let report = revived.restore_bytes(&bad);
        assert!(
            revived.len() as u64 == report.restored,
            "seed {seed} ({kind:?}): cache size disagrees with report"
        );
        // Whatever survived, the service serves correct results after.
        let outcome = revived.specialize_named("hot", &int(2)).expect("usable");
        assert_eq!(decode(&outcome), (1, 2), "seed {seed} ({kind:?})");
    }
}

// ----- the gen-ext artifact cache ---------------------------------------

#[test]
fn genext_builds_once_per_generation_and_dies_on_redefine() {
    let service = SpecService::new();
    service.register("hot", &epoch_ext(1));
    assert!(
        service.genext_of("hot").is_none(),
        "the artifact is built lazily, on the first miss"
    );

    // The first miss builds the artifact; later misses and warm hits
    // reuse it.
    let a = service.specialize_named("hot", &int(3)).expect("cold");
    assert_eq!(decode(&a), (1, 3));
    let built = service.genext_of("hot").expect("artifact cached");
    assert_eq!(service.stats().genext_builds, 1);
    service
        .specialize_named("hot", &int(4))
        .expect("second miss");
    service.specialize_named("hot", &int(3)).expect("warm");
    assert_eq!(service.stats().genext_builds, 1, "one build per generation");
    assert!(Arc::ptr_eq(
        &built,
        &service.genext_of("hot").expect("still cached")
    ));

    // Redefinition kills the artifact with its generation…
    service.redefine("hot", &epoch_ext(2));
    assert!(
        service.genext_of("hot").is_none(),
        "stale gen-ext must die on redefine"
    );

    // …and the next miss builds — and serves from — the new generation's.
    let b = service.specialize_named("hot", &int(3)).expect("new gen");
    assert_eq!(decode(&b), (2, 3), "no stale gen-ext output post-redefine");
    assert_eq!(service.stats().genext_builds, 2);
    assert!(service.genext_of("hot").is_some());
}

#[test]
fn genext_and_walker_serve_identical_images() {
    // The compiled gen-ext path (named fills) and the interpreted walker
    // path (anonymous fills) must produce bit-identical residual images
    // and equal specializer stats.
    let named = SpecService::new();
    named.register("hot", &epoch_ext(1));
    let anon = SpecService::new();
    for s in [0i64, 1, 5] {
        let n = named.specialize_named("hot", &int(s)).expect("named");
        let w = anon.specialize(&epoch_ext(1), &int(s)).expect("anon");
        assert_eq!(
            two4one::encode_image(&n.image),
            two4one::encode_image(&w.image),
            "s={s}: gen-ext image differs from walker image"
        );
        assert_eq!(n.stats, w.stats);
    }
    assert_eq!(named.stats().genext_builds, 1);
    assert_eq!(
        anon.stats().genext_builds,
        0,
        "anonymous fills stay interpreted"
    );
}

#[test]
fn genext_snapshot_warm_starts_a_second_process() {
    let first = SpecService::new();
    first.register("hot", &epoch_ext(1));
    first.specialize_named("hot", &int(3)).expect("fill");
    assert_eq!(first.stats().genext_builds, 1);
    let snapshot = first.genext_snapshot_bytes();
    assert_eq!(
        snapshot,
        first.genext_snapshot_bytes(),
        "equal registry contents must snapshot identically"
    );

    // "Second process": the same program re-registered from source
    // (epochs are per-process), the gen-ext restored from the snapshot —
    // its cold miss runs the staged bytecode without ever building it.
    let second = SpecService::new();
    second.register("hot", &epoch_ext(1));
    let report = second.restore_genexts_bytes(&snapshot);
    assert_eq!(report.restored, 1);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.stale_dropped, 0);
    assert!(second.genext_of("hot").is_some());
    let out = second
        .specialize_named("hot", &int(3))
        .expect("cold via restored gen-ext");
    assert_eq!(decode(&out), (1, 3));
    assert_eq!(
        second.stats().genext_builds,
        0,
        "restored artifact — the cold miss must not build"
    );

    // A process whose registration has *different* source drops the
    // record as stale; so does one that never registered the name.
    let third = SpecService::new();
    third.register("hot", &epoch_ext(2));
    let report = third.restore_genexts_bytes(&snapshot);
    assert_eq!(report.restored, 0);
    assert_eq!(report.stale_dropped, 1);
    assert!(third.genext_of("hot").is_none());
    let fourth = SpecService::new();
    assert_eq!(fourth.restore_genexts_bytes(&snapshot).stale_dropped, 1);

    // Corruption quarantines the record instead of restoring garbage.
    let mut corrupted = snapshot.clone();
    let n = corrupted.len();
    corrupted[n - 9] ^= 0x41;
    let fifth = SpecService::new();
    fifth.register("hot", &epoch_ext(1));
    let report = fifth.restore_genexts_bytes(&corrupted);
    assert_eq!(report.restored, 0);
    assert!(report.quarantined >= 1);
    assert!(fifth.genext_of("hot").is_none());
}

// ---------------------------------------------------------------------
// Tiered execution: Tier-0 generic serving and background promotion
// ---------------------------------------------------------------------

fn tier0_config(promote_after: u64, promote_workers: usize) -> ServeConfig {
    ServeConfig {
        tier0: true,
        promote_after,
        promote_workers,
        ..ServeConfig::default()
    }
}

#[test]
fn tier0_first_response_is_bit_identical_to_generic_fallback() {
    // Threshold high enough that promotion never fires: the Tier-0
    // image stays in the cache for inspection.
    let service = SpecService::with_config(tier0_config(u64::MAX, 1));
    let ext = power_ext(&Pgg::new());
    let cold = service.specialize(&ext, &int(5)).expect("tier0 cold");

    // The requester paid for generic compilation only: the miss is
    // recorded as a Tier-0 serve, not a specializer run.
    let stats = service.stats();
    let tier = service.tier_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(tier.tier0_served, 1);
    assert_eq!(stats.spec_runs, 0, "requester must not pay the specializer");

    // Tier-0 uses the breaker's fallback recipe verbatim: the same
    // generating extension run with zero unfold fuel and graceful
    // fallback on. Encoding both images proves bit-identity.
    let mut generic_options = ext.options().clone();
    generic_options.limits.unfold_fuel = Some(0);
    generic_options.fallback = true;
    let (generic_image, _) = ext
        .specialize_object_governed(&int(5), &generic_options, None)
        .expect("generic specialize");
    assert_eq!(
        two4one::encode_image(&cold.image),
        two4one::encode_image(&generic_image),
        "Tier-0 image must be bit-identical to the generic fallback"
    );

    // And the generic residual still computes the right answers.
    let out = two4one::run_image(&cold.image, cold.image.entry.as_str(), &int(2))
        .expect("run tier0 residual");
    assert_eq!(out.value, Datum::Int(32));

    // A warm hit shares the cached generic image; still no promotion.
    let warm = service.specialize(&ext, &int(5)).expect("tier0 warm");
    assert!(Arc::ptr_eq(&cold.image, &warm.image));
    assert_eq!(service.tier_stats().promotions, 0);
}

#[test]
fn tier0_promotion_swaps_in_specialized_image() {
    let service = SpecService::with_config(tier0_config(2, 1));
    let ext = power_ext(&Pgg::new());

    let cold = service.specialize(&ext, &int(5)).expect("tier0 cold");
    // Two warm hits cross the promotion threshold and enqueue the key.
    for _ in 0..2 {
        let warm = service.specialize(&ext, &int(5)).expect("warm generic");
        assert!(Arc::ptr_eq(&cold.image, &warm.image), "still generic");
    }
    assert!(
        eventually(|| service.tier_stats().promotions >= 1),
        "promotion never landed: {:?}",
        service.tier_stats()
    );

    // The hot-swapped entry is a *different* image that was actually
    // specialized (the full unfold of power for n = 5), served from the
    // same cache slot with zero work for the requester.
    let promoted = service.specialize(&ext, &int(5)).expect("post-promotion");
    assert!(
        !Arc::ptr_eq(&cold.image, &promoted.image),
        "cache still serves the generic image after promotion"
    );
    assert!(
        !promoted.stats.degraded(),
        "promotion produced a degraded image"
    );
    let out = two4one::run_image(&promoted.image, promoted.image.entry.as_str(), &int(2))
        .expect("run promoted residual");
    assert_eq!(out.value, Datum::Int(32));

    let stats = service.stats();
    let tier = service.tier_stats();
    assert_eq!(stats.spec_runs, 1, "exactly one background specialization");
    assert_eq!(tier.tier0_served, 1);
    assert_eq!(tier.promotions, 1);
    assert_eq!(tier.demotions, 0);
    // The swap replaced the entry in place: no extra miss, no eviction.
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn tier0_genext_builds_in_background_not_on_first_fill() {
    let service = SpecService::with_config(tier0_config(1, 1));
    service.register("hot", &epoch_ext(1));

    // The cold named fill returns without staging the generating
    // extension: that cost moved off the request path entirely.
    let cold = service.specialize_named("hot", &int(4)).expect("cold");
    assert_eq!(decode(&cold), (1, 4));
    assert_eq!(
        service.stats().genext_builds,
        0,
        "gen-ext built on request path"
    );
    assert!(service.genext_of("hot").is_none());

    // The first warm hit crosses the threshold; the promotion worker
    // compiles the gen-ext and caches it for the generation.
    let warm = service.specialize_named("hot", &int(4)).expect("warm");
    assert_eq!(decode(&warm), (1, 4));
    assert!(
        eventually(|| service.stats().genext_builds == 1 && service.genext_of("hot").is_some()),
        "background gen-ext build never happened"
    );
    assert!(eventually(|| service.tier_stats().promotions >= 1));

    // Later promotions of the same generation reuse the compiled
    // gen-ext instead of rebuilding it.
    service
        .specialize_named("hot", &int(5))
        .expect("second key cold");
    service
        .specialize_named("hot", &int(5))
        .expect("second key warm");
    assert!(eventually(|| service.tier_stats().promotions >= 2));
    assert_eq!(service.stats().genext_builds, 1, "gen-ext rebuilt per key");
}

#[test]
fn tier0_promotion_vs_redefine_hammer_never_swaps_stale() {
    // 8 threads: one redefines in a loop while seven workers hammer the
    // Tier-0 serve path hard enough that every key keeps crossing the
    // promotion threshold, so background swaps race the redefinitions.
    // Invariants: (a) a request started after `redefine(e)` returned
    // never yields a generation older than `e`, and (b) once the dust
    // settles every key decodes to the final generation — a stale-epoch
    // promotion that slipped past the tombstone would violate both.
    const EPOCHS: u64 = 8;
    const WORKERS: usize = 7;
    const KEYS: i64 = 3;

    let service = SpecService::with_config(tier0_config(1, 2));
    service.register("hot", &epoch_ext(1));
    let published = AtomicU64::new(1);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let service = &service;
        let published = &published;
        let done = &done;
        s.spawn(move || {
            for e in 2..=EPOCHS {
                let outcome = service.redefine("hot", &epoch_ext(e));
                assert_eq!(outcome.epoch.get(), e);
                published.store(e, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(4));
            }
            done.store(true, Ordering::SeqCst);
        });
        for w in 0..WORKERS {
            s.spawn(move || {
                let mut served = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let s_arg = (w as i64 + served as i64) % KEYS + 1;
                    let lo = published.load(Ordering::SeqCst);
                    let outcome = service
                        .specialize_named("hot", &int(s_arg))
                        .expect("serve during redefinition");
                    let (epoch, s_res) = decode(&outcome);
                    assert_eq!(s_res, s_arg, "wrong key's residual");
                    assert!(
                        epoch >= lo,
                        "stale-epoch result: got generation {epoch}, \
                         but {lo} was already live before the request"
                    );
                    served += 1;
                }
                assert!(served > 0, "worker {w} never served");
            });
        }
    });

    // Drive the final generation over the threshold for every key, then
    // wait for the promotion queue to drain.
    for s_arg in 1..=KEYS {
        service
            .specialize_named("hot", &int(s_arg))
            .expect("final fill");
        service
            .specialize_named("hot", &int(s_arg))
            .expect("final hit");
    }
    assert!(eventually(|| service.tier_stats().queued == 0));
    assert!(
        eventually(|| {
            (1..=KEYS).all(|s_arg| {
                let outcome = service
                    .specialize_named("hot", &int(s_arg))
                    .expect("post-hammer serve");
                decode(&outcome) == (EPOCHS, s_arg)
            })
        }),
        "a key still serves a stale generation after the hammer"
    );

    let tier = service.tier_stats();
    assert!(tier.promotions >= 1, "hammer never promoted: {tier:?}");
    // Conflicted swaps are timing-dependent — record, don't require.
    eprintln!(
        "hammer: {} promotions, {} tombstoned swaps, {} demotions",
        tier.promotions, tier.swap_epoch_conflicts, tier.demotions
    );
    assert_eq!(tier.demotions, 0, "specializer failed during the hammer");
}
