//! Johnsson-style lambda lifting.
//!
//! Every `letrec` group (which, after assignment elimination, binds only
//! lambdas) is lifted to a set of top-level definitions. Each lifted
//! function gains its free variables as extra leading parameters; calls in
//! operator position pass them explicitly, and references in value position
//! eta-expand into a closure over the extras. First-class lambdas that are
//! not `letrec`-bound are left in place — they become runtime closures.
//!
//! Requires alpha-renamed, assignment-free input.

use crate::surface::{SExpr, STop};
use crate::FrontError;
use std::collections::{BTreeSet, HashMap, HashSet};
use two4one_syntax::symbol::{Gensym, Symbol};

/// Information about a lifted function, keyed by its original local name.
#[derive(Debug, Clone)]
struct Lifted {
    global: Symbol,
    extras: Vec<Symbol>,
    arity: usize,
}

/// Lifts all `letrec` groups in the program to top level.
///
/// # Errors
///
/// Returns [`FrontError::Syntax`] if a `letrec` with non-lambda right-hand
/// sides survived assignment elimination (an internal invariant violation).
pub fn lift_program(tops: Vec<STop>, gensym: &mut Gensym) -> Result<Vec<STop>, FrontError> {
    let globals: HashSet<Symbol> = tops.iter().map(|t| t.name).collect();
    let mut out: Vec<STop> = Vec::new();
    let mut lifter = Lifter {
        gensym,
        globals,
        new_tops: Vec::new(),
    };
    for t in tops {
        let body = lifter.expr(t.body)?;
        out.push(STop {
            name: t.name,
            params: t.params,
            body,
        });
    }
    out.extend(lifter.new_tops);
    Ok(out)
}

struct Lifter<'a> {
    gensym: &'a mut Gensym,
    globals: HashSet<Symbol>,
    new_tops: Vec<STop>,
}

/// Free local variables of an expression (excluding `globals`).
fn free_vars(e: &SExpr, globals: &HashSet<Symbol>) -> BTreeSet<Symbol> {
    fn go(
        e: &SExpr,
        bound: &mut Vec<Symbol>,
        globals: &HashSet<Symbol>,
        acc: &mut BTreeSet<Symbol>,
    ) {
        match e {
            SExpr::Const(_) => {}
            SExpr::Var(x) => {
                if !bound.contains(x) && !globals.contains(x) {
                    acc.insert(*x);
                }
            }
            SExpr::Lambda { params, body, .. } => {
                let n = bound.len();
                bound.extend(params.iter().cloned());
                go(body, bound, globals, acc);
                bound.truncate(n);
            }
            SExpr::If(a, b, c) => {
                go(a, bound, globals, acc);
                go(b, bound, globals, acc);
                go(c, bound, globals, acc);
            }
            SExpr::Let(bs, body) => {
                for (_, rhs) in bs {
                    go(rhs, bound, globals, acc);
                }
                let n = bound.len();
                bound.extend(bs.iter().map(|(x, _)| *x));
                go(body, bound, globals, acc);
                bound.truncate(n);
            }
            SExpr::Letrec(bs, body) => {
                let n = bound.len();
                bound.extend(bs.iter().map(|(x, _)| *x));
                for (_, rhs) in bs {
                    go(rhs, bound, globals, acc);
                }
                go(body, bound, globals, acc);
                bound.truncate(n);
            }
            SExpr::Set(x, rhs) => {
                if !bound.contains(x) && !globals.contains(x) {
                    acc.insert(*x);
                }
                go(rhs, bound, globals, acc);
            }
            SExpr::Begin(es) => es.iter().for_each(|e| go(e, bound, globals, acc)),
            SExpr::App(f, args) => {
                go(f, bound, globals, acc);
                args.iter().for_each(|a| go(a, bound, globals, acc));
            }
            SExpr::Prim(_, args) => args.iter().for_each(|a| go(a, bound, globals, acc)),
        }
    }
    let mut acc = BTreeSet::new();
    go(e, &mut Vec::new(), globals, &mut acc);
    acc
}

impl Lifter<'_> {
    fn expr(&mut self, e: SExpr) -> Result<SExpr, FrontError> {
        match e {
            SExpr::Const(_) | SExpr::Var(_) => Ok(e),
            SExpr::Lambda { name, params, body } => Ok(SExpr::Lambda {
                name,
                params,
                body: Box::new(self.expr(*body)?),
            }),
            SExpr::If(a, b, c) => Ok(SExpr::if_(self.expr(*a)?, self.expr(*b)?, self.expr(*c)?)),
            SExpr::Let(bs, body) => Ok(SExpr::Let(
                bs.into_iter()
                    .map(|(x, rhs)| Ok((x, self.expr(rhs)?)))
                    .collect::<Result<Vec<_>, FrontError>>()?,
                Box::new(self.expr(*body)?),
            )),
            SExpr::Begin(es) => Ok(SExpr::Begin(
                es.into_iter()
                    .map(|e| self.expr(e))
                    .collect::<Result<Vec<_>, FrontError>>()?,
            )),
            SExpr::App(f, args) => Ok(SExpr::app(
                self.expr(*f)?,
                args.into_iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, FrontError>>()?,
            )),
            SExpr::Prim(p, args) => Ok(SExpr::Prim(
                p,
                args.into_iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, FrontError>>()?,
            )),
            SExpr::Set(..) => Err(FrontError::Syntax(
                "internal error: set! survived assignment elimination".into(),
            )),
            SExpr::Letrec(bs, body) => self.lift_group(bs, *body),
        }
    }

    fn lift_group(&mut self, bs: Vec<(Symbol, SExpr)>, body: SExpr) -> Result<SExpr, FrontError> {
        // 1. Recurse first so inner letrecs are already lifted and free
        //    variables are accurate.
        let group_names: Vec<Symbol> = bs.iter().map(|(x, _)| *x).collect();
        let group_set: HashSet<Symbol> = group_names.iter().cloned().collect();
        let mut lambdas = Vec::with_capacity(bs.len());
        for (x, rhs) in bs {
            match rhs {
                SExpr::Lambda { name, params, body } => {
                    lambdas.push((x, name, params, self.expr(*body)?));
                }
                other => {
                    return Err(FrontError::Syntax(format!(
                        "internal error: non-lambda letrec binding `{x}` \
                         survived assignment elimination: {other:?}"
                    )))
                }
            }
        }
        let body = self.expr(body)?;

        // 2. Fixpoint the extra-parameter sets:
        //    E(f) = (FV(λ_f) \ G) ∪ ⋃ { E(g) | g ∈ FV(λ_f) ∩ G }.
        let fvs: Vec<BTreeSet<Symbol>> = lambdas
            .iter()
            .map(|(_, _, params, lam_body)| {
                let lam = SExpr::Lambda {
                    name: Symbol::new("tmp"),
                    params: params.clone(),
                    body: Box::new(lam_body.clone()),
                };
                free_vars(&lam, &self.globals)
            })
            .collect();
        let mut extras: Vec<BTreeSet<Symbol>> = fvs
            .iter()
            .map(|fv| {
                fv.iter()
                    .filter(|v| !group_set.contains(*v))
                    .cloned()
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..lambdas.len() {
                let mut next = extras[i].clone();
                for (j, other) in group_names.iter().enumerate() {
                    if fvs[i].contains(other) {
                        next.extend(extras[j].iter().cloned());
                    }
                }
                if next.len() != extras[i].len() {
                    extras[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 3. Allocate global names and build the rewrite table.
        let mut table: HashMap<Symbol, Lifted> = HashMap::new();
        for (i, (x, _, params, _)) in lambdas.iter().enumerate() {
            let global = self.gensym.fresh(x.as_str());
            self.globals.insert(global);
            table.insert(
                *x,
                Lifted {
                    global,
                    extras: extras[i].iter().cloned().collect(),
                    arity: params.len(),
                },
            );
        }

        // 4. Rewrite occurrences and emit the lifted definitions.
        for (x, _name, params, lam_body) in lambdas {
            let info = table.get(&x).expect("in table").clone();
            let rewritten = rewrite_refs(lam_body, &table, self.gensym);
            let mut new_params = info.extras.clone();
            new_params.extend(params);
            self.new_tops.push(STop {
                name: info.global,
                params: new_params,
                body: rewritten,
            });
        }
        Ok(rewrite_refs(body, &table, self.gensym))
    }
}

/// Replaces references to lifted functions: calls get the extra arguments
/// prepended; value references eta-expand into closures.
fn rewrite_refs(e: SExpr, table: &HashMap<Symbol, Lifted>, gensym: &mut Gensym) -> SExpr {
    match e {
        SExpr::Const(_) => e,
        SExpr::Var(x) => match table.get(&x) {
            None => SExpr::Var(x),
            Some(info) => {
                let params: Vec<Symbol> = (0..info.arity).map(|_| gensym.fresh("e")).collect();
                let mut args: Vec<SExpr> = info.extras.iter().cloned().map(SExpr::Var).collect();
                args.extend(params.iter().cloned().map(SExpr::Var));
                SExpr::Lambda {
                    name: x,
                    params,
                    body: Box::new(SExpr::app(SExpr::Var(info.global), args)),
                }
            }
        },
        SExpr::Lambda { name, params, body } => SExpr::Lambda {
            name,
            params,
            body: Box::new(rewrite_refs(*body, table, gensym)),
        },
        SExpr::If(a, b, c) => SExpr::if_(
            rewrite_refs(*a, table, gensym),
            rewrite_refs(*b, table, gensym),
            rewrite_refs(*c, table, gensym),
        ),
        SExpr::Let(bs, body) => SExpr::Let(
            bs.into_iter()
                .map(|(x, rhs)| (x, rewrite_refs(rhs, table, gensym)))
                .collect(),
            Box::new(rewrite_refs(*body, table, gensym)),
        ),
        SExpr::Letrec(bs, body) => SExpr::Letrec(
            bs.into_iter()
                .map(|(x, rhs)| (x, rewrite_refs(rhs, table, gensym)))
                .collect(),
            Box::new(rewrite_refs(*body, table, gensym)),
        ),
        SExpr::Set(x, rhs) => SExpr::Set(x, Box::new(rewrite_refs(*rhs, table, gensym))),
        SExpr::Begin(es) => SExpr::Begin(
            es.into_iter()
                .map(|e| rewrite_refs(e, table, gensym))
                .collect(),
        ),
        SExpr::App(f, args) => {
            let args: Vec<SExpr> = args
                .into_iter()
                .map(|a| rewrite_refs(a, table, gensym))
                .collect();
            if let SExpr::Var(x) = &*f {
                if let Some(info) = table.get(x) {
                    let mut full: Vec<SExpr> =
                        info.extras.iter().cloned().map(SExpr::Var).collect();
                    full.extend(args);
                    return SExpr::app(SExpr::Var(info.global), full);
                }
            }
            SExpr::app(rewrite_refs(*f, table, gensym), args)
        }
        SExpr::Prim(p, args) => SExpr::Prim(
            p,
            args.into_iter()
                .map(|a| rewrite_refs(a, table, gensym))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::eliminate_assignments;
    use crate::desugar::desugar_program;
    use crate::rename::rename_program;
    use two4one_syntax::reader::read_all;

    fn pipeline(src: &str) -> Vec<STop> {
        let mut g = Gensym::new();
        let tops = desugar_program(&read_all(src).unwrap()).unwrap();
        let renamed = rename_program(tops, &mut g).unwrap();
        let no_assign = eliminate_assignments(renamed, &mut g);
        lift_program(no_assign, &mut g).unwrap()
    }

    fn no_letrec(e: &SExpr) -> bool {
        match e {
            SExpr::Letrec(..) => false,
            SExpr::Lambda { body, .. } => no_letrec(body),
            SExpr::If(a, b, c) => no_letrec(a) && no_letrec(b) && no_letrec(c),
            SExpr::Let(bs, body) => bs.iter().all(|(_, r)| no_letrec(r)) && no_letrec(body),
            SExpr::Begin(es) => es.iter().all(no_letrec),
            SExpr::App(f, args) => no_letrec(f) && args.iter().all(no_letrec),
            SExpr::Prim(_, args) => args.iter().all(no_letrec),
            _ => true,
        }
    }

    #[test]
    fn named_let_loop_is_lifted() {
        let tops = pipeline(
            "(define (fact n)
               (let loop ((i n) (acc 1))
                 (if (= i 0) acc (loop (- i 1) (* acc i)))))",
        );
        assert_eq!(tops.len(), 2, "{tops:?}");
        assert!(tops.iter().all(|t| no_letrec(&t.body)));
        // The lifted loop takes no extras (its free vars are its params).
        let lifted = tops.iter().find(|t| t.name.as_str().contains('%')).unwrap();
        assert_eq!(lifted.params.len(), 2);
    }

    #[test]
    fn free_variables_become_extra_params() {
        let tops = pipeline(
            "(define (scale-all k xs)
               (letrec ((go (lambda (l) (if (null? l) '() (cons (* k (car l)) (go (cdr l)))))))
                 (go xs)))",
        );
        let lifted = tops
            .iter()
            .find(|t| t.name.as_str().starts_with("go%"))
            .unwrap();
        // extras = [k], params = [k, l]
        assert_eq!(lifted.params.len(), 2);
        // The call site passes k explicitly.
        match &tops[0].body {
            SExpr::App(f, args) => {
                assert!(matches!(**f, SExpr::Var(_)));
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mutual_recursion_shares_extras() {
        let tops = pipeline(
            "(define (parity k n)
               (letrec ((ev? (lambda (i) (if (= i 0) k (od? (- i 1)))))
                        (od? (lambda (i) (if (= i 0) (not k) (ev? (- i 1))))))
                 (ev? n)))",
        );
        assert_eq!(tops.len(), 3);
        for t in &tops[1..] {
            // both lifted functions need k
            assert_eq!(t.params.len(), 2, "{t:?}");
        }
    }

    #[test]
    fn value_position_reference_eta_expands() {
        let tops = pipeline(
            "(define (apply1 f x) (f x))
             (define (succ-all n)
               (letrec ((succ (lambda (i) (+ i n))))
                 (apply1 succ 1)))",
        );
        let main = tops.iter().find(|t| t.name.as_str() == "succ-all").unwrap();
        match &main.body {
            SExpr::App(_, args) => {
                assert!(
                    matches!(args[0], SExpr::Lambda { .. }),
                    "value ref should eta-expand: {:?}",
                    args[0]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_letrecs_lift_inside_out() {
        let tops = pipeline(
            "(define (f a)
               (letrec ((outer (lambda (x)
                                 (letrec ((inner (lambda (y) (+ y a))))
                                   (inner x)))))
                 (outer 1)))",
        );
        assert_eq!(tops.len(), 3);
        assert!(tops.iter().all(|t| no_letrec(&t.body)));
        let inner = tops
            .iter()
            .find(|t| t.name.as_str().starts_with("inner%"))
            .unwrap();
        assert_eq!(inner.params.len(), 2); // a + y
    }
}
