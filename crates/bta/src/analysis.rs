//! Control-flow analysis and the binding-time fixpoint.
//!
//! The program is first loaded into an indexed arena ([`Node`]) so that
//! every expression, lambda, and top-level function has a stable id. A
//! 0-CFA then computes, for every node and variable, the set of procedures
//! (lambdas and top-level functions) that can flow there. The binding-time
//! fixpoint runs on top: it propagates `S ⊑ D` forward and applies *demand*
//! effects — a procedure flowing into a dynamic context or into data must
//! be residualized, because closures cannot be lifted.

use crate::{Division, Options};
use std::collections::{BTreeSet, HashMap};
use two4one_syntax::acs::{CallPolicy, BT};
use two4one_syntax::cs;
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::{Deadline, LimitExceeded};
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// Index of an expression node.
pub type NodeId = usize;
/// Index of a lambda.
pub type LamId = usize;
/// Index of a top-level function.
pub type FnId = usize;

/// An abstract procedure value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProcId {
    /// A lambda by label.
    Lam(LamId),
    /// A top-level function by index.
    Fn(FnId),
}

/// An arena expression node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Constant.
    Const(Datum),
    /// Variable (local or global).
    Var(Symbol),
    /// Lambda by label.
    Lam(LamId),
    /// Conditional.
    If(NodeId, NodeId, NodeId),
    /// Single-binding let.
    Let(Symbol, NodeId, NodeId),
    /// Application.
    App(NodeId, Vec<NodeId>),
    /// Primitive application.
    Prim(Prim, Vec<NodeId>),
}

/// Arena data for a lambda.
#[derive(Debug, Clone)]
pub struct LamInfo {
    /// Name hint.
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Symbol>,
    /// Body node.
    pub body: NodeId,
    /// The top-level function this lambda occurs in.
    pub owner: FnId,
}

/// Arena data for a top-level function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Name.
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Symbol>,
    /// Body node.
    pub body: NodeId,
}

/// The analysis state; [`Analysis::run`] drives it to fixpoint.
pub struct Analysis {
    /// Expression arena.
    pub nodes: Vec<Node>,
    /// Lambda table.
    pub lams: Vec<LamInfo>,
    /// Function table (aligned with the input program's definitions).
    pub fns: Vec<FnInfo>,
    /// Global name → function index.
    pub fn_index: HashMap<Symbol, FnId>,
    /// Owning function of each node.
    pub owner: Vec<FnId>,
    /// 0-CFA: procedures reaching each node.
    pub flow_node: Vec<BTreeSet<ProcId>>,
    /// 0-CFA: procedures reaching each variable.
    pub flow_var: HashMap<Symbol, BTreeSet<ProcId>>,
    /// Binding time of each node.
    pub bt_node: Vec<BT>,
    /// Binding time of each variable.
    pub bt_var: HashMap<Symbol, BT>,
    /// Lambdas that must be residualized.
    pub dyn_lam: Vec<bool>,
    /// Functions used as dynamic values (→ all-dynamic memoized version).
    pub escaped_fn: Vec<bool>,
    /// Memoization points.
    pub memo_fn: Vec<bool>,
    /// Result binding time per function.
    pub result_fn: Vec<BT>,
    /// Whether the function sits in a recursive call-graph component.
    pub recursive_fn: Vec<bool>,
    /// Nodes that provably never return a value (`error` and conditionals
    /// all of whose branches never return). Such nodes are excluded from
    /// result-binding-time joins so an unreachable `(error …)` branch does
    /// not drag an otherwise static lookup to dynamic — the treatment
    /// `error` gets in Similix-style BTAs.
    pub never: Vec<bool>,
    /// Entry function.
    pub entry: FnId,
    policy_overrides: HashMap<Symbol, CallPolicy>,
}

impl Analysis {
    /// Loads the program into the arena and seeds the division.
    pub fn build(
        prog: &cs::Program,
        entry: &Symbol,
        division: &Division,
        options: &Options,
    ) -> Analysis {
        let fn_index: HashMap<Symbol, FnId> = prog
            .defs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name, i))
            .collect();
        let mut a = Analysis {
            nodes: Vec::new(),
            lams: Vec::new(),
            fns: Vec::new(),
            fn_index,
            owner: Vec::new(),
            flow_node: Vec::new(),
            flow_var: HashMap::new(),
            bt_node: Vec::new(),
            bt_var: HashMap::new(),
            dyn_lam: Vec::new(),
            escaped_fn: Vec::new(),
            memo_fn: Vec::new(),
            result_fn: Vec::new(),
            recursive_fn: Vec::new(),
            never: Vec::new(),
            entry: 0,
            policy_overrides: options.policy_overrides.clone(),
        };
        for (i, d) in prog.defs.iter().enumerate() {
            let body = a.load(&d.body, i);
            a.fns.push(FnInfo {
                name: d.name,
                params: d.params.clone(),
                body,
            });
            a.escaped_fn.push(false);
            a.memo_fn.push(false);
            a.result_fn.push(BT::Static);
        }
        a.entry = a.fn_index[entry];
        // Seed the division.
        let entry_params = a.fns[a.entry].params.clone();
        for (p, bt) in entry_params.iter().zip(&division.params) {
            a.bt_var.insert(*p, *bt);
        }
        a
    }

    fn load(&mut self, e: &cs::Expr, owner: FnId) -> NodeId {
        let node = match e {
            cs::Expr::Const(d) => Node::Const(d.clone()),
            cs::Expr::Var(x) => Node::Var(*x),
            cs::Expr::Lambda(l) => {
                let body = self.load(&l.body, owner);
                self.lams.push(LamInfo {
                    name: l.name,
                    params: l.params.clone(),
                    body,
                    owner,
                });
                self.dyn_lam.push(false);
                Node::Lam(self.lams.len() - 1)
            }
            cs::Expr::If(t, c, alt) => Node::If(
                self.load(t, owner),
                self.load(c, owner),
                self.load(alt, owner),
            ),
            cs::Expr::Let(x, rhs, body) => {
                Node::Let(*x, self.load(rhs, owner), self.load(body, owner))
            }
            cs::Expr::App(f, args) => {
                let f = self.load(f, owner);
                let args = args.iter().map(|x| self.load(x, owner)).collect();
                Node::App(f, args)
            }
            cs::Expr::PrimApp(p, args) => {
                let args = args.iter().map(|x| self.load(x, owner)).collect();
                Node::Prim(*p, args)
            }
        };
        self.nodes.push(node);
        self.owner.push(owner);
        self.flow_node.push(BTreeSet::new());
        self.bt_node.push(BT::Static);
        self.nodes.len() - 1
    }

    /// True if the symbol names a top-level function (globals are never
    /// shadowed after alpha renaming).
    pub fn is_global(&self, x: &Symbol) -> bool {
        self.fn_index.contains_key(x)
    }

    /// The procedures a callee set can reach through an operator node.
    pub fn callees(&self, f: NodeId) -> BTreeSet<ProcId> {
        self.flow_node[f].clone()
    }

    /// Runs CFA, the recursion analysis, and the binding-time fixpoint.
    ///
    /// All three fixpoints are monotone over finite lattices, so they
    /// terminate; the deadline bounds their wall-clock cost on very large
    /// programs (checked once per outer iteration — the granularity at
    /// which the loops are restartable anyway).
    ///
    /// # Errors
    ///
    /// Returns the deadline fault if the wall-clock budget runs out.
    pub fn run(&mut self, deadline: &Deadline) -> Result<(), LimitExceeded> {
        self.cfa(deadline)?;
        self.find_recursion();
        self.find_never(deadline)?;
        self.bt_fixpoint(deadline)
    }

    /// Least fixpoint of "this node never returns a value": `error`
    /// applications, conditionals whose branches all diverge, lets whose
    /// right-hand side or body diverges, and applications all of whose
    /// callees' bodies diverge.
    fn find_never(&mut self, deadline: &Deadline) -> Result<(), LimitExceeded> {
        self.never = vec![false; self.nodes.len()];
        loop {
            deadline.check()?;
            let mut changed = false;
            for n in 0..self.nodes.len() {
                let new = match &self.nodes[n] {
                    Node::Prim(Prim::Error, _) => true,
                    Node::If(_, c, a) => self.never[*c] && self.never[*a],
                    Node::Let(_, rhs, body) => self.never[*rhs] || self.never[*body],
                    Node::App(f, _) => {
                        let callees = &self.flow_node[*f];
                        !callees.is_empty()
                            && callees.iter().all(|c| match c {
                                ProcId::Lam(l) => self.never[self.lams[*l].body],
                                ProcId::Fn(g) => self.never[self.fns[*g].body],
                            })
                    }
                    _ => false,
                };
                if new && !self.never[n] {
                    self.never[n] = true;
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    // ----- control-flow analysis ---------------------------------------

    fn cfa(&mut self, deadline: &Deadline) -> Result<(), LimitExceeded> {
        loop {
            deadline.check()?;
            let mut changed = false;
            for n in 0..self.nodes.len() {
                let add: BTreeSet<ProcId> = match &self.nodes[n] {
                    Node::Const(_) | Node::Prim(..) => BTreeSet::new(),
                    Node::Var(x) => {
                        if let Some(&g) = self.fn_index.get(x) {
                            [ProcId::Fn(g)].into_iter().collect()
                        } else {
                            self.flow_var.get(x).cloned().unwrap_or_default()
                        }
                    }
                    Node::Lam(l) => [ProcId::Lam(*l)].into_iter().collect(),
                    Node::If(_, c, a) => {
                        let mut s = self.flow_node[*c].clone();
                        s.extend(self.flow_node[*a].iter().cloned());
                        s
                    }
                    Node::Let(x, rhs, body) => {
                        let rhs_flow = self.flow_node[*rhs].clone();
                        let entry = self.flow_var.entry(*x).or_default();
                        let before = entry.len();
                        entry.extend(rhs_flow);
                        changed |= entry.len() != before;
                        self.flow_node[*body].clone()
                    }
                    Node::App(f, args) => {
                        let callees = self.flow_node[*f].clone();
                        let args = args.clone();
                        let mut result = BTreeSet::new();
                        for callee in callees {
                            let (params, body) = match callee {
                                ProcId::Lam(l) => (self.lams[l].params.clone(), self.lams[l].body),
                                ProcId::Fn(g) => (self.fns[g].params.clone(), self.fns[g].body),
                            };
                            for (p, arg) in params.iter().zip(&args) {
                                let arg_flow = self.flow_node[*arg].clone();
                                let entry = self.flow_var.entry(*p).or_default();
                                let before = entry.len();
                                entry.extend(arg_flow);
                                changed |= entry.len() != before;
                            }
                            result.extend(self.flow_node[body].iter().cloned());
                        }
                        result
                    }
                };
                let before = self.flow_node[n].len();
                self.flow_node[n].extend(add);
                changed |= self.flow_node[n].len() != before;
            }
            if !changed {
                return Ok(());
            }
        }
    }

    // ----- recursion detection ------------------------------------------

    fn find_recursion(&mut self) {
        // Call-graph edge g → h: an application site owned by g can invoke
        // top-level function h (directly or through a lambda defined in g).
        let n = self.fns.len();
        let mut edges: Vec<BTreeSet<FnId>> = vec![BTreeSet::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            if let Node::App(f, _) = node {
                for callee in &self.flow_node[*f] {
                    if let ProcId::Fn(h) = callee {
                        edges[self.owner[id]].insert(*h);
                    }
                }
            }
        }
        // g is recursive iff g is reachable from itself.
        self.recursive_fn = (0..n)
            .map(|g| {
                let mut seen = BTreeSet::new();
                let mut work: Vec<FnId> = edges[g].iter().cloned().collect();
                while let Some(h) = work.pop() {
                    if h == g {
                        return true;
                    }
                    if seen.insert(h) {
                        work.extend(edges[h].iter().cloned());
                    }
                }
                false
            })
            .collect();
    }

    // ----- binding-time fixpoint ----------------------------------------

    fn var_bt(&self, x: &Symbol) -> BT {
        if self.is_global(x) {
            BT::Static
        } else {
            self.bt_var.get(x).copied().unwrap_or(BT::Static)
        }
    }

    fn raise_var(&mut self, x: &Symbol, bt: BT, changed: &mut bool) {
        let cur = self.bt_var.entry(*x).or_insert(BT::Static);
        let new = cur.lub(bt);
        if new != *cur {
            *cur = new;
            *changed = true;
        }
    }

    /// A procedure flowing into a dynamic context or into data must be
    /// residualized.
    fn escape_flow(&mut self, n: NodeId, changed: &mut bool) {
        let procs: Vec<ProcId> = self.flow_node[n].iter().cloned().collect();
        for p in procs {
            match p {
                ProcId::Lam(l) => {
                    if !self.dyn_lam[l] {
                        self.dyn_lam[l] = true;
                        *changed = true;
                    }
                }
                ProcId::Fn(g) => {
                    if !self.escaped_fn[g] {
                        self.escaped_fn[g] = true;
                        *changed = true;
                    }
                }
            }
        }
    }

    /// The binding time demanded for argument position `i` of a static
    /// application site with callee set `callees`.
    pub fn site_param_bt(&self, callees: &BTreeSet<ProcId>, i: usize) -> BT {
        let mut bt = BT::Static;
        for c in callees {
            let params = match c {
                ProcId::Lam(l) => &self.lams[*l].params,
                ProcId::Fn(g) => &self.fns[*g].params,
            };
            if let Some(p) = params.get(i) {
                bt = bt.lub(self.var_bt(p));
            }
        }
        bt
    }

    /// Result binding time of a static application over `callees`.
    fn site_result_bt(&self, callees: &BTreeSet<ProcId>) -> BT {
        if callees.is_empty() {
            // Unknown operator: be conservative.
            return BT::Dynamic;
        }
        let mut bt = BT::Static;
        for c in callees {
            bt = bt.lub(match c {
                ProcId::Lam(l) => {
                    if self.dyn_lam[*l] {
                        BT::Dynamic
                    } else {
                        self.bt_node[self.lams[*l].body]
                    }
                }
                ProcId::Fn(g) => self.result_fn[*g],
            });
        }
        bt
    }

    fn bt_fixpoint(&mut self, deadline: &Deadline) -> Result<(), LimitExceeded> {
        loop {
            deadline.check()?;
            let mut changed = false;

            // Demand: entry result is residual code.
            self.escape_flow(self.fns[self.entry].body, &mut changed);

            // Forward propagation over all nodes (they are in child-first
            // order because `load` pushes children before parents).
            for n in 0..self.nodes.len() {
                let new_bt = match &self.nodes[n] {
                    Node::Const(_) => BT::Static,
                    Node::Var(x) => self.var_bt(x),
                    Node::Lam(l) => {
                        if self.dyn_lam[*l] {
                            BT::Dynamic
                        } else {
                            BT::Static
                        }
                    }
                    Node::If(t, c, a) => {
                        let (t, c, a) = (*t, *c, *a);
                        if self.bt_node[t].is_dynamic() {
                            BT::Dynamic
                        } else {
                            // Diverging branches do not contribute a value.
                            match (self.never[c], self.never[a]) {
                                (false, false) => self.bt_node[c].lub(self.bt_node[a]),
                                (false, true) => self.bt_node[c],
                                (true, false) => self.bt_node[a],
                                (true, true) => BT::Dynamic,
                            }
                        }
                    }
                    Node::Let(x, rhs, body) => {
                        let (x, rhs, body) = (*x, *rhs, *body);
                        self.raise_var(&x, self.bt_node[rhs], &mut changed);
                        self.bt_node[body]
                    }
                    Node::App(f, args) => {
                        let (f, args) = (*f, args.clone());
                        if self.bt_node[f].is_dynamic() {
                            // Dynamic application: operator and arguments
                            // are code.
                            self.escape_flow(f, &mut changed);
                            for a in &args {
                                self.escape_flow(*a, &mut changed);
                            }
                            BT::Dynamic
                        } else {
                            let callees = self.flow_node[f].clone();
                            for (i, arg) in args.iter().enumerate() {
                                // Arguments flow into parameters…
                                for c in &callees {
                                    let params = match c {
                                        ProcId::Lam(l) => self.lams[*l].params.clone(),
                                        ProcId::Fn(g) => self.fns[*g].params.clone(),
                                    };
                                    if let Some(p) = params.get(i) {
                                        self.raise_var(p, self.bt_node[*arg], &mut changed);
                                    }
                                }
                                // …and dynamic parameter positions demand
                                // residualization of any procedure argument.
                                if self.site_param_bt(&callees, i).is_dynamic() {
                                    self.escape_flow(*arg, &mut changed);
                                }
                            }
                            self.site_result_bt(&callees)
                        }
                    }
                    Node::Prim(p, args) => {
                        let (p, args) = (*p, args.clone());
                        // Data rule: procedures flowing into primitive
                        // arguments escape (no partially static closures).
                        for a in &args {
                            self.escape_flow(*a, &mut changed);
                        }
                        let all_static = args.iter().all(|a| !self.bt_node[*a].is_dynamic());
                        if p.is_pure() && all_static {
                            BT::Static
                        } else {
                            BT::Dynamic
                        }
                    }
                };
                if new_bt != self.bt_node[n] {
                    self.bt_node[n] = self.bt_node[n].lub(new_bt);
                    changed = true;
                }
            }

            // Conditionals that residualize demand both branches as code.
            for n in 0..self.nodes.len() {
                if let Node::If(_, c, a) = self.nodes[n] {
                    if self.bt_node[n].is_dynamic() {
                        self.escape_flow(c, &mut changed);
                        self.escape_flow(a, &mut changed);
                    }
                }
            }

            // Dynamic lambdas: parameters are dynamic, bodies are residual.
            for l in 0..self.lams.len() {
                if self.dyn_lam[l] {
                    let params = self.lams[l].params.clone();
                    for p in params {
                        self.raise_var(&p, BT::Dynamic, &mut changed);
                    }
                    self.escape_flow(self.lams[l].body, &mut changed);
                }
            }

            // Escaped functions: all-dynamic, memoized.
            for g in 0..self.fns.len() {
                if self.escaped_fn[g] {
                    let params = self.fns[g].params.clone();
                    for p in params {
                        self.raise_var(&p, BT::Dynamic, &mut changed);
                    }
                    if !self.memo_fn[g] {
                        self.memo_fn[g] = true;
                        changed = true;
                    }
                }
            }

            // Memoization points: recursive + dynamic control, unless
            // overridden.
            for g in 0..self.fns.len() {
                let decided = match self.policy_overrides.get(&self.fns[g].name) {
                    Some(CallPolicy::Memoize) => true,
                    Some(CallPolicy::Unfold) => false,
                    None => {
                        self.memo_fn[g] || (self.recursive_fn[g] && self.fn_has_dynamic_control(g))
                    }
                };
                if decided != self.memo_fn[g] {
                    self.memo_fn[g] = decided;
                    changed = true;
                }
            }

            // Memoized functions produce residual code; their bodies are
            // demanded, and closure-valued static parameters are illegal
            // as memoization keys, so they escape too.
            for g in 0..self.fns.len() {
                if self.memo_fn[g] {
                    if self.result_fn[g] != BT::Dynamic {
                        self.result_fn[g] = BT::Dynamic;
                        changed = true;
                    }
                    self.escape_flow(self.fns[g].body, &mut changed);
                    let params = self.fns[g].params.clone();
                    for p in params {
                        if !self.var_bt(&p).is_dynamic() {
                            let has_procs = self.flow_var.get(&p).is_some_and(|s| !s.is_empty());
                            if has_procs {
                                let procs: Vec<ProcId> =
                                    self.flow_var[&p].iter().cloned().collect();
                                for pr in procs {
                                    match pr {
                                        ProcId::Lam(l) if !self.dyn_lam[l] => {
                                            self.dyn_lam[l] = true;
                                            changed = true;
                                        }
                                        ProcId::Fn(h) if !self.escaped_fn[h] => {
                                            self.escaped_fn[h] = true;
                                            changed = true;
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                } else {
                    let body_bt = self.bt_node[self.fns[g].body];
                    if self.result_fn[g] != self.result_fn[g].lub(body_bt) {
                        self.result_fn[g] = self.result_fn[g].lub(body_bt);
                        changed = true;
                    }
                }
            }

            if !changed {
                return Ok(());
            }
        }
    }

    /// Does the function's syntactic region (including nested lambdas)
    /// contain a dynamic conditional?
    fn fn_has_dynamic_control(&self, g: FnId) -> bool {
        self.nodes.iter().enumerate().any(|(id, node)| {
            self.owner[id] == g
                && matches!(node, Node::If(t, _, _) if self.bt_node[*t].is_dynamic())
        })
    }
}
