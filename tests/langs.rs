//! The paper's benchmark subjects end to end: specializing the MIXWELL and
//! LAZY interpreters over their input programs (the first Futamura
//! projection) and checking every execution path against the interpreted
//! baseline.

use two4one::{compile, interpret, run_image, with_stack, CallPolicy, Datum, Division, Pgg, BT};
use two4one_langs as langs;

fn pgg_with(policies: &[(&'static str, CallPolicy)]) -> Pgg {
    policies
        .iter()
        .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol))
}

#[test]
fn mixwell_interpreter_runs_directly() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg.parse(langs::MIXWELL_INTERP).unwrap();
        let args = Datum::list([Datum::Int(20)]);
        let out = interpret(&p, "mixwell-run", &[langs::mixwell_program(), args]).unwrap();
        // primes up to 20 zipped with squares.
        let text = out.value.to_string();
        assert!(
            text.starts_with("((2 . 1) (3 . 4) (5 . 9) (7 . 16)"),
            "{text}"
        );
    });
}

#[test]
fn mixwell_specializes_to_a_compiled_program() {
    with_stack(|| {
        let pgg = pgg_with(&langs::mixwell_policies());
        let p = pgg.parse(langs::MIXWELL_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();

        // Residual source: the interpretive layer is gone.
        let residual = genext
            .specialize_source(&[langs::mixwell_program()])
            .unwrap();
        let text = residual.to_source();
        assert!(
            !text.contains("mw-lookup"),
            "interpretive overhead survived:\n{text}"
        );
        // One residual definition per reachable MIXWELL function + entry.
        assert!(residual.defs.len() >= 8, "{}", residual.defs.len());

        // The residual program computes what the interpreted program does.
        let args = Datum::list([Datum::Int(25)]);
        let expect = interpret(&p, "mixwell-run", &[langs::mixwell_program(), args.clone()])
            .unwrap()
            .value;
        let got = interpret(
            &residual.to_cs(),
            "mixwell-run",
            std::slice::from_ref(&args),
        )
        .unwrap()
        .value;
        assert_eq!(got, expect);

        // Fused object code computes the same.
        let image = genext
            .specialize_object(&[langs::mixwell_program()])
            .unwrap();
        let got_obj = run_image(&image, "mixwell-run", &[args]).unwrap().value;
        assert_eq!(got_obj, expect);
    });
}

#[test]
fn mixwell_residual_equals_compiled_residual_source() {
    with_stack(|| {
        let pgg = pgg_with(&langs::mixwell_policies());
        let p = pgg.parse(langs::MIXWELL_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let source = genext
            .specialize_source(&[langs::mixwell_program()])
            .unwrap();
        let compiled = two4one::compile_program(&source, "mixwell-run").unwrap();
        let fused = genext
            .specialize_object(&[langs::mixwell_program()])
            .unwrap();
        assert_eq!(fused.templates.len(), compiled.templates.len());
        for ((n1, t1), (n2, t2)) in fused.templates.iter().zip(&compiled.templates) {
            assert_eq!(n1, n2);
            assert_eq!(
                t1,
                t2,
                "{n1}:\n{}\nvs\n{}",
                t1.disassemble(),
                t2.disassemble()
            );
        }
    });
}

#[test]
fn mixwell_ackermann_specializes_and_runs() {
    with_stack(|| {
        let pgg = pgg_with(&langs::mixwell_policies());
        let p = pgg.parse(langs::MIXWELL_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let ack = two4one::reader::read_one(langs::MIXWELL_ACKERMANN).unwrap();
        let image = genext.specialize_object(&[ack]).unwrap();
        let args = Datum::list([Datum::Int(2), Datum::Int(3)]);
        let out = run_image(&image, "mixwell-run", &[args]).unwrap();
        assert_eq!(out.value, Datum::Int(9)); // ack(2,3) = 9
    });
}

#[test]
fn lazy_interpreter_runs_directly() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg.parse(langs::LAZY_INTERP).unwrap();
        let args = Datum::list([Datum::Int(3), Datum::Int(4)]);
        let out = interpret(&p, "lazy-run", &[langs::lazy_program(), args]).unwrap();
        // squares of 3,4,5,6 = 9+16+25+36 = 86; only terminates lazily.
        assert_eq!(out.value, Datum::Int(86));
    });
}

#[test]
fn lazy_specializes_and_stays_lazy() {
    with_stack(|| {
        let pgg = pgg_with(&langs::lazy_policies());
        let p = pgg.parse(langs::LAZY_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "lazy-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();

        let residual = genext.specialize_source(&[langs::lazy_program()]).unwrap();
        let text = residual.to_source();
        assert!(!text.contains("lz-lookup"), "{text}");
        // Laziness is compiled into residual thunks.
        assert!(text.contains("lambda"), "{text}");

        let args = Datum::list([Datum::Int(3), Datum::Int(4)]);
        let got = interpret(&residual.to_cs(), "lazy-run", std::slice::from_ref(&args))
            .unwrap()
            .value;
        assert_eq!(got, Datum::Int(86));

        let image = genext.specialize_object(&[langs::lazy_program()]).unwrap();
        let out = run_image(&image, "lazy-run", &[args]).unwrap();
        assert_eq!(out.value, Datum::Int(86));
    });
}

#[test]
fn lazy_fusion_equivalence() {
    with_stack(|| {
        let pgg = pgg_with(&langs::lazy_policies());
        let p = pgg.parse(langs::LAZY_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "lazy-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let source = genext.specialize_source(&[langs::lazy_program()]).unwrap();
        let compiled = two4one::compile_program(&source, "lazy-run").unwrap();
        let fused = genext.specialize_object(&[langs::lazy_program()]).unwrap();
        assert_eq!(fused.templates.len(), compiled.templates.len());
        for ((n1, t1), (n2, t2)) in fused.templates.iter().zip(&compiled.templates) {
            assert_eq!(n1, n2);
            assert_eq!(
                t1,
                t2,
                "{n1}:\n{}\nvs\n{}",
                t1.disassemble(),
                t2.disassemble()
            );
        }
    });
}

#[test]
fn interpreters_also_compile_with_the_stock_compiler() {
    // The "Compile" column of Fig. 8: the interpreter itself, compiled.
    with_stack(|| {
        let pgg = Pgg::new();
        for (src, entry, prog, args, spot) in [
            (
                langs::MIXWELL_INTERP,
                "mixwell-run",
                langs::mixwell_program(),
                Datum::list([Datum::Int(15)]),
                None,
            ),
            (
                langs::LAZY_INTERP,
                "lazy-run",
                langs::lazy_program(),
                Datum::list([Datum::Int(2), Datum::Int(3)]),
                Some(Datum::Int(4 + 9 + 16)),
            ),
        ] {
            let p = pgg.parse(src).unwrap();
            let image = compile(&p, entry).unwrap();
            let expect = interpret(&p, entry, &[prog.clone(), args.clone()])
                .unwrap()
                .value;
            let got = run_image(&image, entry, &[prog, args]).unwrap().value;
            assert_eq!(got, expect);
            if let Some(s) = spot {
                assert_eq!(got, s);
            }
        }
    });
}

#[test]
fn dfa_specializes_to_state_functions() {
    with_stack(|| {
        let pgg = pgg_with(&langs::dfa_policies());
        let p = pgg.parse(langs::DFA_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "dfa-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let residual = genext.specialize_source(&[langs::dfa_aba()]).unwrap();
        // Four states reachable + the entry = 5 definitions, no table walk.
        assert_eq!(residual.defs.len(), 5, "{}", residual.to_source());
        assert!(!residual.to_source().contains("dfa-dispatch"));

        let image = genext.specialize_object(&[langs::dfa_aba()]).unwrap();
        for (word, expect) in [
            ("(a b a)", true),
            ("(b b a b a b)", true),
            ("(a b b a)", false),
            ("()", false),
            ("(a a a b a)", true),
            ("(b a b)", false),
        ] {
            let w = two4one::reader::read_one(word).unwrap();
            let got = run_image(&image, "dfa-run", std::slice::from_ref(&w))
                .unwrap()
                .value;
            assert_eq!(got, Datum::Bool(expect), "{word}");
            // Agrees with the interpreted interpreter.
            let base = interpret(&p, "dfa-run", &[langs::dfa_aba(), w])
                .unwrap()
                .value;
            assert_eq!(got, base, "{word}");
        }
    });
}

#[test]
fn optimizer_shrinks_interpreter_residuals() {
    with_stack(|| {
        let pgg = pgg_with(&langs::mixwell_policies());
        let p = pgg.parse(langs::MIXWELL_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let residual = genext
            .specialize_source(&[langs::mixwell_program()])
            .unwrap();
        let optimized = genext
            .specialize_source_optimized(&[langs::mixwell_program()])
            .unwrap();
        assert!(
            optimized.size() <= residual.size(),
            "optimizer grew the program: {} -> {}",
            residual.size(),
            optimized.size()
        );
        // Semantics preserved.
        let args = Datum::list([Datum::Int(12)]);
        let a = interpret(
            &residual.to_cs(),
            "mixwell-run",
            std::slice::from_ref(&args),
        )
        .unwrap()
        .value;
        let b = interpret(&optimized.to_cs(), "mixwell-run", &[args])
            .unwrap()
            .value;
        assert_eq!(a, b);
    });
}

#[test]
fn fcl_flowchart_specializes_to_program_point_functions() {
    with_stack(|| {
        let pgg = pgg_with(&langs::fcl_policies());
        let p = pgg.parse(langs::FCL_INTERP).unwrap();

        // Run interpreted first: 3^5 = 243.
        let args = Datum::list([Datum::Int(3), Datum::Int(5)]);
        let base = interpret(&p, "fcl-run", &[langs::fcl_power(), args.clone()])
            .unwrap()
            .value;
        assert_eq!(base, Datum::Int(243));

        let genext = pgg
            .cogen(&p, "fcl-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let residual = genext.specialize_source(&[langs::fcl_power()]).unwrap();
        let text = residual.to_source();
        // Polyvariant program-point specialization: one residual function
        // per reachable block (start/test/loop/done fold into the blocks
        // that end in dynamic control; at least the loop head survives).
        assert!(text.contains("fcl-block%"), "{text}");
        // The dispatch machinery is gone.
        assert!(!text.contains("fcl-find-block"), "{text}");
        assert!(!text.contains("fcl-lookup"), "{text}");

        let got = interpret(&residual.to_cs(), "fcl-run", std::slice::from_ref(&args))
            .unwrap()
            .value;
        assert_eq!(got, base);

        // Fused object code agrees, and matches compiled residual source.
        let image = genext.specialize_object(&[langs::fcl_power()]).unwrap();
        assert_eq!(run_image(&image, "fcl-run", &[args]).unwrap().value, base);
        let compiled = two4one::compile_program(&residual, "fcl-run").unwrap();
        for ((n1, t1), (n2, t2)) in image.templates.iter().zip(&compiled.templates) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2);
        }
    });
}
