//! A-normal form (ANF) — Fig. 2 of the paper.
//!
//! ANF is the target language of the specializer and the source language of
//! the byte-code compiler. Its grammar is encoded in the types of this
//! crate, so "validation" is construction: a [`Expr`] *cannot* represent a
//! non-ANF term. Control flow is explicit: applications not bound by `let`
//! are tail calls ("jumps"), which is exactly the property that lets the
//! compiler drop the compile-time continuation (Sec. 6.1).
//!
//! The [`normalize`](normalize::normalize) function converts arbitrary Core Scheme into ANF (the
//! stock-compiler path); the specializer produces ANF directly.

pub mod build;
pub mod normalize;
pub mod optimize;

pub use build::{CodeBuilder, SourceBuilder};
pub use normalize::{normalize, normalize_expr};
pub use optimize::{optimize, optimize_aggressive, optimize_expr, optimize_expr_aggressive};

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use two4one_syntax::cs;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::printer;
use two4one_syntax::symbol::Symbol;

/// A trivial term: evaluation cannot diverge or have effects.
#[derive(Debug, Clone, PartialEq)]
pub enum Triv {
    /// A constant.
    Const(Datum),
    /// A variable (local or top-level).
    Var(Symbol),
    /// A lambda whose body is again in ANF.
    Lambda(Arc<Lambda>),
}

/// A lambda abstraction in ANF.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Name hint (used for template names).
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Symbol>,
    /// Body.
    pub body: Expr,
}

/// A *serious* term: a call or primitive application over trivials.
#[derive(Debug, Clone, PartialEq)]
pub enum App {
    /// Procedure call.
    Call(Triv, Vec<Triv>),
    /// Primitive application.
    Prim(Prim, Vec<Triv>),
}

/// The right-hand side of a `let`.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// A trivial binding.
    Triv(Triv),
    /// A serious binding (the only non-tail call form).
    App(App),
}

/// An ANF expression (the `M` of Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Return a trivial value.
    Ret(Triv),
    /// A tail call or tail primitive — a jump.
    Tail(App),
    /// `(let (x rhs) body)`.
    Let(Symbol, Rhs, Box<Expr>),
    /// `(if t then else)` with a trivial test.
    If(Triv, Box<Expr>, Box<Expr>),
}

/// A top-level ANF definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// Global name.
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Symbol>,
    /// Body.
    pub body: Expr,
}

/// A whole ANF program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Definitions in order; residual programs put the entry point first.
    pub defs: Vec<Def>,
}

impl Triv {
    /// Embeds back into Core Scheme.
    pub fn to_cs(&self) -> cs::Expr {
        match self {
            Triv::Const(d) => cs::Expr::Const(d.clone()),
            Triv::Var(x) => cs::Expr::Var(*x),
            Triv::Lambda(l) => cs::Expr::Lambda(Arc::new(cs::Lambda {
                name: l.name,
                params: l.params.clone(),
                body: l.body.to_cs(),
            })),
        }
    }

    fn free_into(&self, bound: &mut Vec<Symbol>, acc: &mut BTreeSet<Symbol>) {
        match self {
            Triv::Const(_) => {}
            Triv::Var(x) => {
                if !bound.contains(x) {
                    acc.insert(*x);
                }
            }
            Triv::Lambda(l) => {
                let n = bound.len();
                bound.extend(l.params.iter().cloned());
                l.body.free_into(bound, acc);
                bound.truncate(n);
            }
        }
    }
}

impl App {
    /// Embeds back into Core Scheme.
    pub fn to_cs(&self) -> cs::Expr {
        match self {
            App::Call(f, args) => cs::Expr::app(f.to_cs(), args.iter().map(Triv::to_cs).collect()),
            App::Prim(p, args) => cs::Expr::PrimApp(*p, args.iter().map(Triv::to_cs).collect()),
        }
    }

    fn free_into(&self, bound: &mut Vec<Symbol>, acc: &mut BTreeSet<Symbol>) {
        match self {
            App::Call(f, args) => {
                f.free_into(bound, acc);
                args.iter().for_each(|a| a.free_into(bound, acc));
            }
            App::Prim(_, args) => args.iter().for_each(|a| a.free_into(bound, acc)),
        }
    }
}

impl Expr {
    /// Embeds back into Core Scheme (ANF is a sublanguage of CS), used for
    /// oracle testing and for pretty-printing residual programs.
    pub fn to_cs(&self) -> cs::Expr {
        match self {
            Expr::Ret(t) => t.to_cs(),
            Expr::Tail(a) => a.to_cs(),
            Expr::Let(x, rhs, body) => {
                let rhs = match rhs {
                    Rhs::Triv(t) => t.to_cs(),
                    Rhs::App(a) => a.to_cs(),
                };
                cs::Expr::let_(*x, rhs, body.to_cs())
            }
            Expr::If(t, c, a) => cs::Expr::if_(t.to_cs(), c.to_cs(), a.to_cs()),
        }
    }

    fn free_into(&self, bound: &mut Vec<Symbol>, acc: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Ret(t) => t.free_into(bound, acc),
            Expr::Tail(a) => a.free_into(bound, acc),
            Expr::Let(x, rhs, body) => {
                match rhs {
                    Rhs::Triv(t) => t.free_into(bound, acc),
                    Rhs::App(a) => a.free_into(bound, acc),
                }
                bound.push(*x);
                body.free_into(bound, acc);
                bound.pop();
            }
            Expr::If(t, c, a) => {
                t.free_into(bound, acc);
                c.free_into(bound, acc);
                a.free_into(bound, acc);
            }
        }
    }

    /// Free variables (including references to top-level names; the
    /// compiler filters those against the global table).
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut acc = BTreeSet::new();
        self.free_into(&mut Vec::new(), &mut acc);
        acc
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        fn triv(t: &Triv) -> usize {
            match t {
                Triv::Lambda(l) => 1 + l.body.size(),
                _ => 1,
            }
        }
        fn app(a: &App) -> usize {
            match a {
                App::Call(f, args) => 1 + triv(f) + args.iter().map(triv).sum::<usize>(),
                App::Prim(_, args) => 1 + args.iter().map(triv).sum::<usize>(),
            }
        }
        match self {
            Expr::Ret(t) => triv(t),
            Expr::Tail(a) => app(a),
            Expr::Let(_, Rhs::Triv(t), body) => 1 + triv(t) + body.size(),
            Expr::Let(_, Rhs::App(a), body) => 1 + app(a) + body.size(),
            Expr::If(t, c, a) => 1 + triv(t) + c.size() + a.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_cs().to_datum())
    }
}

impl Program {
    /// Looks up a definition.
    pub fn def(&self, name: &Symbol) -> Option<&Def> {
        self.defs.iter().find(|d| &d.name == name)
    }

    /// Embeds into a Core Scheme program.
    pub fn to_cs(&self) -> cs::Program {
        cs::Program {
            defs: self
                .defs
                .iter()
                .map(|d| cs::Def {
                    name: d.name,
                    params: d.params.clone(),
                    body: d.body.to_cs(),
                })
                .collect(),
        }
    }

    /// Pretty-prints the program as residual Scheme source text.
    pub fn to_source(&self) -> String {
        printer::pretty_program(&self.to_cs().to_data(), printer::DEFAULT_WIDTH)
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        self.defs.iter().map(|d| d.body.size() + 1).sum()
    }
}

/// Checks whether an arbitrary Core Scheme expression conforms to the ANF
/// grammar of Fig. 2 — used to validate that the specializer's source
/// backend really emits ANF.
pub fn cs_is_anf(e: &cs::Expr) -> bool {
    fn is_triv(e: &cs::Expr) -> bool {
        match e {
            cs::Expr::Const(_) | cs::Expr::Var(_) => true,
            cs::Expr::Lambda(l) => cs_is_anf(&l.body),
            _ => false,
        }
    }
    fn is_app(e: &cs::Expr) -> bool {
        match e {
            cs::Expr::App(f, args) => is_triv(f) && args.iter().all(is_triv),
            cs::Expr::PrimApp(_, args) => args.iter().all(is_triv),
            _ => false,
        }
    }
    match e {
        _ if is_triv(e) || is_app(e) => true,
        cs::Expr::Let(_, rhs, body) => (is_triv(rhs) || is_app(rhs)) && cs_is_anf(body),
        cs::Expr::If(t, c, a) => is_triv(t) && cs_is_anf(c) && cs_is_anf(a),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::reader::read_one;

    fn cs_expr(src: &str) -> cs::Expr {
        cs::parse_expr(&read_one(src).unwrap()).unwrap()
    }

    #[test]
    fn anf_grammar_checker() {
        assert!(cs_is_anf(&cs_expr("x")));
        assert!(cs_is_anf(&cs_expr("(f x 1)")));
        assert!(cs_is_anf(&cs_expr("(let ((t (f x))) (g t))")));
        assert!(cs_is_anf(&cs_expr("(if x (f x) (g x))")));
        assert!(cs_is_anf(&cs_expr("(lambda (x) (let ((y (+ x 1))) y))")));
        // Nested serious argument: not ANF.
        assert!(!cs_is_anf(&cs_expr("(f (g x))")));
        // Serious test: not ANF.
        assert!(!cs_is_anf(&cs_expr("(if (f x) 1 2)")));
        // If as rhs of let: not ANF.
        assert!(!cs_is_anf(&cs_expr("(let ((t (if a b c))) t)")));
        // Lambda body must be ANF too.
        assert!(!cs_is_anf(&cs_expr("(lambda (x) (f (g x)))")));
    }

    #[test]
    fn embedding_matches_display() {
        let e = Expr::Let(
            Symbol::new("t"),
            Rhs::App(App::Prim(
                Prim::Add,
                vec![Triv::Var(Symbol::new("x")), Triv::Const(Datum::Int(1))],
            )),
            Box::new(Expr::Ret(Triv::Var(Symbol::new("t")))),
        );
        assert_eq!(e.to_string(), "(let ((t (+ x 1))) t)");
        assert!(cs_is_anf(&e.to_cs()));
    }

    #[test]
    fn free_vars_of_anf() {
        let e = Expr::Let(
            Symbol::new("t"),
            Rhs::App(App::Call(
                Triv::Var(Symbol::new("f")),
                vec![Triv::Var(Symbol::new("x"))],
            )),
            Box::new(Expr::Ret(Triv::Var(Symbol::new("t")))),
        );
        // Sets iterate in Symbol order (intern id, not name), so compare
        // contents order-insensitively.
        let mut fv: Vec<String> = e.free_vars().iter().map(|s| s.to_string()).collect();
        fv.sort();
        assert_eq!(fv, vec!["f", "x"]);
    }

    #[test]
    fn size_accounts_lambdas() {
        let lam = Triv::Lambda(Arc::new(Lambda {
            name: Symbol::new("l"),
            params: vec![Symbol::new("x")],
            body: Expr::Ret(Triv::Var(Symbol::new("x"))),
        }));
        assert_eq!(Expr::Ret(lam).size(), 2);
    }
}
