//! Incremental specialization and object-file persistence.
//!
//! The staging theorem behind incremental specialization: specializing to
//! `a` and then specializing the residual to `b` computes the same function
//! as specializing to `a` and `b` at once. Object files: generated code
//! survives a serialization round trip byte-for-byte.

use two4one::{compile, incremental, run_image, with_stack, Datum, Division, Pgg, BT};

const CURVE: &str = "(define (curve a b c x) (+ (* a (* x x)) (+ (* b x) c)))";

#[test]
fn staged_specialization_equals_joint_specialization() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg.parse(CURVE).unwrap();

        // Joint: a, b, c static at once.
        let joint = pgg
            .cogen(
                &p,
                "curve",
                &Division::new([BT::Static, BT::Static, BT::Static, BT::Dynamic]),
            )
            .unwrap()
            .specialize_object(&[Datum::Int(2), Datum::Int(3), Datum::Int(5)])
            .unwrap();

        // Staged: a first, then b, then c.
        let s1 = incremental::stage(
            &pgg,
            &p,
            "curve",
            &Division::new([BT::Static, BT::Dynamic, BT::Dynamic, BT::Dynamic]),
            &[Datum::Int(2)],
        )
        .unwrap();
        let s2 = incremental::stage(
            &pgg,
            &s1,
            "curve",
            &Division::new([BT::Static, BT::Dynamic, BT::Dynamic]),
            &[Datum::Int(3)],
        )
        .unwrap();
        let s3 = incremental::stage(
            &pgg,
            &s2,
            "curve",
            &Division::new([BT::Static, BT::Dynamic]),
            &[Datum::Int(5)],
        )
        .unwrap();
        let staged = compile(&s3, "curve").unwrap();

        for x in [-3, 0, 1, 7, 100] {
            let a = run_image(&joint, "curve", &[Datum::Int(x)]).unwrap().value;
            let b = run_image(&staged, "curve", &[Datum::Int(x)]).unwrap().value;
            assert_eq!(a, b, "x = {x}");
            assert_eq!(a, Datum::Int(2 * x * x + 3 * x + 5), "x = {x}");
        }
    });
}

#[test]
fn staging_an_interpreter_program_first_then_input_prefix() {
    with_stack(|| {
        // Stage 1: fix the pattern of the matcher; stage 2 is run time.
        let pgg = Pgg::new();
        let p = pgg.parse(two4one_langs::classics::MATCHER).unwrap();
        let fixed = incremental::stage(
            &pgg,
            &p,
            "match",
            &Division::new([BT::Static, BT::Dynamic]),
            &[two4one::reader::read_one("(a b)").unwrap()],
        )
        .unwrap();
        let image = compile(&fixed, "match").unwrap();
        let t = two4one::reader::read_one("(x a b y)").unwrap();
        assert_eq!(
            run_image(&image, "match", &[t]).unwrap().value,
            Datum::Bool(true)
        );
    });
}

#[test]
fn generated_code_round_trips_through_object_files() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")
            .unwrap();
        let genext = pgg
            .cogen(&p, "power", &Division::new([BT::Dynamic, BT::Static]))
            .unwrap();
        let image = genext.specialize_object(&[Datum::Int(10)]).unwrap();

        let dir = std::env::temp_dir().join("two4one-objfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("power10.t4o");
        two4one::save_image(&image, &path).unwrap();
        let loaded = two4one::load_image(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Structurally identical and behaviorally equivalent.
        assert_eq!(loaded.entry, image.entry);
        for ((n1, t1), (n2, t2)) in image.templates.iter().zip(&loaded.templates) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2);
        }
        let out = run_image(&loaded, "power", &[Datum::Int(2)]).unwrap();
        assert_eq!(out.value, Datum::Int(1024));
    });
}

#[test]
fn whole_interpreter_images_survive_serialization() {
    with_stack(|| {
        let mut pgg = Pgg::new();
        for (n, pol) in two4one_langs::mixwell_policies() {
            pgg = pgg.policy(n, pol);
        }
        let p = pgg.parse(two4one_langs::MIXWELL_INTERP).unwrap();
        let genext = pgg
            .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let image = genext
            .specialize_object(&[two4one_langs::mixwell_program()])
            .unwrap();
        let bytes = two4one::encode_image(&image);
        let loaded = two4one::decode_image(&bytes).unwrap();
        let args = Datum::list([Datum::Int(12)]);
        let a = run_image(&image, "mixwell-run", std::slice::from_ref(&args)).unwrap();
        let b = run_image(&loaded, "mixwell-run", &[args]).unwrap();
        assert_eq!(a, b);
        // The encoding is compact: smaller than the pretty-printed source.
        let src_len = genext
            .specialize_source(&[two4one_langs::mixwell_program()])
            .unwrap()
            .to_source()
            .len();
        assert!(
            bytes.len() < src_len * 2,
            "object file unexpectedly large: {} vs source {}",
            bytes.len(),
            src_len
        );
    });
}
