//! Incremental specialization (an application from Sec. 1/9): static
//! inputs arrive in stages, and each stage's residual program is the
//! subject of the next specialization. Because residual programs are
//! ordinary programs, the PGG composes with itself.
//!
//! ```text
//! cargo run --example incremental
//! ```

use two4one::{run_image, with_stack, Datum, Division, Pgg, BT};

const LINEAR: &str = "(define (linear a b x) (+ (* a x) b))";

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let pgg = Pgg::new();
    let program = pgg.parse(LINEAR)?;

    // Stage 1: `a` arrives. Specialize with a static, b and x dynamic.
    let g1 = pgg.cogen(
        &program,
        "linear",
        &Division::new([BT::Static, BT::Dynamic, BT::Dynamic]),
    )?;
    let stage1 = g1.specialize_source(&[Datum::Int(3)])?;
    println!("after a = 3:\n{}", stage1.to_source());

    // Stage 2: `b` arrives. The stage-1 residual is re-analyzed with its
    // first parameter static — incremental specialization is just running
    // the PGG on the previous residual program.
    let stage1_cs = pgg.parse(&stage1.to_source())?;
    let params = stage1_cs.defs[0].params.len();
    assert_eq!(params, 2, "stage-1 residual takes (b x)");
    let g2 = pgg.cogen(
        &stage1_cs,
        "linear",
        &Division::new([BT::Static, BT::Dynamic]),
    )?;
    let stage2 = g2.specialize_source(&[Datum::Int(10)])?;
    println!("after b = 10:\n{}", stage2.to_source());

    // Stage 3: `x` arrives at run time — generate and run object code.
    let image = g2.specialize_object(&[Datum::Int(10)])?;
    for x in [0, 1, 5] {
        let out = run_image(&image, "linear", &[Datum::Int(x)])?;
        println!("linear(3, 10, {x}) = {}", out.value);
    }
    Ok(())
}
