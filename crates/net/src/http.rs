//! A minimal, hardened HTTP/1.1 surface: request-head parsing and
//! response rendering. Pure functions over bytes the connection loop has
//! already read under its deadlines — no I/O here, which keeps every
//! parsing path unit-testable and panic-free.
//!
//! Supported: `GET`/`POST`, `Content-Length` bodies, keep-alive
//! semantics (1.1 default on, 1.0 default off, `Connection` header
//! honored). Everything else is answered with a typed error by the
//! caller. Chunked transfer encoding is deliberately not implemented:
//! the request surface (`/spec` JSON) is small and bounded, and refusing
//! unknown framing is the robust choice.

use std::fmt;

/// A parsed request head plus derived connection semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Head {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// The request target as sent (path + optional query).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Declared body length (0 when absent).
    pub content_length: usize,
}

impl Head {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The bearer token from `Authorization: Bearer <token>`, if any.
    pub fn bearer_token(&self) -> Option<&str> {
        let auth = self.header("authorization")?;
        let rest = auth
            .strip_prefix("Bearer ")
            .or_else(|| auth.strip_prefix("bearer "))?;
        let rest = rest.trim();
        if rest.is_empty() {
            None
        } else {
            Some(rest)
        }
    }
}

/// A typed HTTP parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HttpError {
    /// The head is not parseable HTTP.
    Malformed(&'static str),
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
    /// `Content-Length` is not a number or exceeds the configured cap
    /// (checked by the caller against its own cap; here only numeric).
    BadContentLength,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed HTTP request: {what}"),
            HttpError::UnsupportedVersion => f.write_str("unsupported HTTP version"),
            HttpError::BadContentLength => f.write_str("bad Content-Length"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Parses a request head (everything before the blank line, which the
/// caller located). The text must not include the `\r\n\r\n` terminator.
///
/// # Errors
///
/// A typed [`HttpError`]; never panics on any byte sequence.
pub(crate) fn parse_head(text: &str) -> Result<Head, HttpError> {
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if parts.next().is_some() {
        return Err(HttpError::Malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::UnsupportedVersion),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut head = Head {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        keep_alive: http11,
        content_length: 0,
        headers,
    };
    if let Some(conn) = head.header("connection") {
        let conn = conn.to_ascii_lowercase();
        if conn.contains("close") {
            head.keep_alive = false;
        } else if conn.contains("keep-alive") {
            head.keep_alive = true;
        }
    }
    if let Some(cl) = head.header("content-length") {
        head.content_length = cl.parse().map_err(|_| HttpError::BadContentLength)?;
    }
    Ok(head)
}

/// The standard reason phrase for the status codes this server emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Renders a full response (head + body). `retry_after_ms`, when nonzero,
/// becomes a `Retry-After` header rounded up to whole seconds (the
/// header's unit), with the exact hint also available to API clients in
/// the JSON body.
pub(crate) fn response(
    status: u16,
    content_type: &str,
    retry_after_ms: u64,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    );
    if retry_after_ms > 0 {
        head.push_str(&format!(
            "Retry-After: {}\r\n",
            retry_after_ms.div_ceil(1000).max(1)
        ));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_headers_and_body_length() {
        let head = parse_head(
            "POST /spec HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer tok-1\r\nContent-Length: 12",
        )
        .expect("parse");
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/spec");
        assert_eq!(head.content_length, 12);
        assert!(head.keep_alive);
        assert_eq!(head.bearer_token(), Some("tok-1"));
    }

    #[test]
    fn connection_semantics() {
        let h = parse_head("GET / HTTP/1.1\r\nConnection: close").expect("parse");
        assert!(!h.keep_alive);
        let h = parse_head("GET / HTTP/1.0").expect("parse");
        assert!(!h.keep_alive);
        let h = parse_head("GET / HTTP/1.0\r\nConnection: keep-alive").expect("parse");
        assert!(h.keep_alive);
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        for bad in [
            "",
            "GET",
            "GET /",
            "GET / HTTP/2.0",
            "GET / HTTP/1.1 extra",
            "GET / HTTP/1.1\r\nno-colon-here",
        ] {
            assert!(parse_head(bad).is_err(), "should reject {bad:?}");
        }
        assert_eq!(
            parse_head("GET / HTTP/1.1\r\nContent-Length: banana"),
            Err(HttpError::BadContentLength)
        );
    }

    #[test]
    fn response_carries_retry_after_in_seconds() {
        let bytes = response(429, "application/json", 70, b"{}", true);
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{}"));
    }
}
