//! Quickstart: the classic `power` example, three ways.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use two4one::{compile, interpret, run_image, with_stack, Datum, Division, Pgg, BT};

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let pgg = Pgg::new();
    let program = pgg.parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")?;

    // 0. Interpreted, as a baseline.
    let base = interpret(&program, "power", &[Datum::Int(2), Datum::Int(13)])?;
    println!("interpreted:      2^13 = {}", base.value);

    // 1. Stock compilation: front end → ANF → byte code.
    let image = compile(&program, "power")?;
    let out = run_image(&image, "power", &[Datum::Int(2), Datum::Int(13)])?;
    println!("stock compiled:   2^13 = {}", out.value);

    // 2. Partial evaluation: specialize `power` to n = 13.
    //    The division says: x dynamic, n static.
    let genext = pgg.cogen(&program, "power", &Division::new([BT::Dynamic, BT::Static]))?;

    //    2a. …to residual *source* (the classic PGG output):
    let residual = genext.specialize_source(&[Datum::Int(13)])?;
    println!("\nresidual source for n = 13:\n{}", residual.to_source());

    //    2b. …directly to *object code* (the composed system of the paper):
    let image13 = genext.specialize_object(&[Datum::Int(13)])?;
    let out = run_image(&image13, "power", &[Datum::Int(2)])?;
    println!("fused object code: 2^13 = {}", out.value);
    println!(
        "\ndisassembly of the specialized code:\n{}",
        image13.disassemble()
    );
    Ok(())
}
