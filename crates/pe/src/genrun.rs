//! The gen-ext machine: the staged IR executed as bytecode.
//!
//! This is the compiled generating extension of the second Futamura
//! projection: where the walker ([`crate::walk`]) interprets the staged
//! code with heap-allocated continuation closures and name-keyed
//! environments, this machine threads instruction pointers directly,
//! addresses environments by `(up, idx)` slots, and represents the
//! specialization continuation as an explicit frame stack. Run on the
//! static inputs, it produces the residual program directly through the
//! [`CodeBuilder`] — with `two4one-compiler`'s `ObjectBuilder`, the
//! residual object image, with no interpretive overhead per source node.
//!
//! # Bit-identity with the walker
//!
//! The machine performs every observable action — gensym draws, builder
//! calls, memoization probes, observability events — in exactly the order
//! the walker performs them, so both engines produce bit-identical
//! residual programs and equal [`SpecStats`] (`crates/pe/tests/genext.rs`
//! pins this property). Three devices make that possible:
//!
//! * **Deferred wraps.** The walker's `deliver_serious`/unfold rebinding
//!   wrap `let`s around code computed by continuation *returns*. The
//!   machine pushes a [`Wrap`] record instead and applies pending wraps
//!   LIFO whenever a region (a residual body, an `if` branch, a join
//!   continuation) completes — the same builder-call order, iteratively.
//! * **Region terminals.** Each boundary frame records how the region
//!   above it terminates ([`Term::Tail`] → `ret`/tail call, [`Term::Jump`]
//!   → a call to a join point), mirroring the walker's `Kont::Tail` vs.
//!   jump-continuation distinction.
//! * **Persistent frame stacks.** Fallback guards snapshot the
//!   continuation as an `Arc`-linked stack handle. The walker *replays*
//!   the saved continuation on recovery — frames that already ran execute
//!   again, with observable gensym/builder effects — and the persistent
//!   stack reproduces that exactly: restoring a handle resurrects popped
//!   nodes by sharing, at O(1) cost per armed guard.
//!
//! One deliberate divergence: the machine has no recursion, so
//! [`Limits::max_depth`](two4one_syntax::limits::Limits::max_depth) — a
//! guard on the *walker's* Rust stack — does not apply and is ignored
//! here. All other limits (fuel, deadline, memo cap, code cap) behave
//! identically.

use crate::engine::{MemoKey, RCode, Resid, SpecStats, StaticKey};
use crate::{PeError, SpecOptions};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use two4one_anf::build::CodeBuilder;
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::{Deadline, LimitExceeded, LimitKind};
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::{Gensym, Symbol};
use two4one_syntax::symset::SymSet;
use two4one_syntax::value::{apply_prim_datum, PrimError};
use two4one_vm::{GenDef, GenInstr, GenLam, GenProgram};

// ----- run-time values and environments --------------------------------

/// A specialization-time value of the machine.
pub enum GVal<B: CodeBuilder> {
    /// Static first-order data.
    Data(Datum),
    /// A specialization-time closure.
    Clo(Arc<GClo<B>>),
    /// A top-level function used as a value (definition index).
    FnRef(u32),
    /// A dynamic value: residual code.
    Dyn(Resid<B::Triv>),
}

impl<B: CodeBuilder> Clone for GVal<B> {
    fn clone(&self) -> Self {
        match self {
            GVal::Data(d) => GVal::Data(d.clone()),
            GVal::Clo(c) => GVal::Clo(c.clone()),
            GVal::FnRef(g) => GVal::FnRef(*g),
            GVal::Dyn(r) => GVal::Dyn(r.clone()),
        }
    }
}

/// A specialization-time closure over a staged lambda.
pub struct GClo<B: CodeBuilder> {
    /// Index of the staged lambda.
    pub lam: u32,
    /// Captured environment.
    pub env: GEnv<B>,
}

/// Slot-addressed persistent environments: one frame per binding list,
/// shared by refcount. An empty binding list pushes no frame (mirroring
/// `Env::extend_many`, which the stager's lexical addresses assume).
pub type GEnv<B> = Option<Arc<GFrame<B>>>;

/// One environment frame. `vals` stays a `Vec` (not a boxed slice): the
/// binding vectors arrive from the machine's recycling pool with spare
/// capacity, and shrinking them here would realloc on every unfold.
pub struct GFrame<B: CodeBuilder> {
    vals: Vec<GVal<B>>,
    next: GEnv<B>,
}

fn env_push<B: CodeBuilder>(env: &GEnv<B>, vals: Vec<GVal<B>>) -> GEnv<B> {
    if vals.is_empty() {
        env.clone()
    } else {
        Some(Arc::new(GFrame {
            vals,
            next: env.clone(),
        }))
    }
}

fn env_get<B: CodeBuilder>(env: &GEnv<B>, up: u16, idx: u16) -> Option<GVal<B>> {
    let mut cur = env.as_ref();
    for _ in 0..up {
        cur = cur?.next.as_ref();
    }
    cur?.vals.get(idx as usize).cloned()
}

// ----- the continuation stack ------------------------------------------

/// How the current region terminates when a value reaches its boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Term {
    /// Body boundary: `ret` a trivial, or emit a serious as a tail call.
    Tail,
    /// Join-branch boundary: tail-call the named join point.
    Jump(Symbol),
}

/// Watermarks captured when a boundary frame is pushed: pending wraps and
/// armed guards are truncated back to these when the region completes.
#[derive(Clone, Copy)]
struct Marks {
    wraps: usize,
    guards: usize,
}

/// Where a fully evaluated argument list is delivered.
enum Dest<B: CodeBuilder> {
    /// Static application of the operator value.
    App(GVal<B>),
    /// Dynamic application of the already-lifted operator.
    AppD(Resid<B::Triv>),
    /// Static primitive.
    Prim(Prim),
    /// Dynamic primitive.
    PrimD(Prim),
}

impl<B: CodeBuilder> Clone for Dest<B> {
    fn clone(&self) -> Self {
        match self {
            Dest::App(v) => Dest::App(v.clone()),
            Dest::AppD(r) => Dest::AppD(r.clone()),
            Dest::Prim(p) => Dest::Prim(*p),
            Dest::PrimD(p) => Dest::PrimD(*p),
        }
    }
}

/// Join-point construction phases (the machine form of the walker's
/// `residual_if` with an ordinary continuation).
enum JState<B: CodeBuilder> {
    /// Running the detached continuation segment against the fresh result
    /// variable to produce the join body.
    JCode,
    /// Join lambda built; specializing the then-branch.
    Then {
        jname: Symbol,
        lam: B::Triv,
        frees: SymSet,
    },
    /// Specializing the else-branch.
    Else {
        jname: Symbol,
        lam: B::Triv,
        frees: SymSet,
        then_code: RCode<B>,
    },
}

impl<B: CodeBuilder> Clone for JState<B> {
    fn clone(&self) -> Self {
        match self {
            JState::JCode => JState::JCode,
            JState::Then { jname, lam, frees } => JState::Then {
                jname: *jname,
                lam: lam.clone(),
                frees: frees.clone(),
            },
            JState::Else {
                jname,
                lam,
                frees,
                then_code,
            } => JState::Else {
                jname: *jname,
                lam: lam.clone(),
                frees: frees.clone(),
                then_code: then_code.clone(),
            },
        }
    }
}

/// One continuation frame. The first five are *ordinary* frames (they
/// receive a value); the last three are *boundaries* (they receive a
/// completed region's residual code).
enum Frame<'p, B: CodeBuilder> {
    /// Coerce the value to residual code.
    Lift,
    /// Conditional waiting on its test value.
    If {
        then_: u32,
        els: u32,
        env: GEnv<B>,
        static_: bool,
    },
    /// `let` waiting on its right-hand side.
    Let { body: u32, env: GEnv<B> },
    /// Application waiting on its operator.
    AppOp {
        args: &'p [u32],
        env: GEnv<B>,
        dynamic: bool,
    },
    /// Argument list in progress; `idx` is the argument being evaluated.
    Args {
        dest: Dest<B>,
        args: &'p [u32],
        idx: usize,
        acc: Vec<GVal<B>>,
        env: GEnv<B>,
    },
    /// Boundary: residual-lambda body in progress.
    LamB {
        name: Symbol,
        fresh: Vec<Symbol>,
        marks: Marks,
    },
    /// Boundary: residual `if` in tail position; branches specialize as
    /// complete bodies.
    IfTail {
        test: Resid<B::Triv>,
        els: u32,
        env: GEnv<B>,
        then_code: Option<RCode<B>>,
        marks: Marks,
    },
    /// Boundary: join-point construction for a residual `if` in non-tail
    /// position. `outer_term` is the terminal of the region the `if`
    /// appeared in — the detached continuation segment (phase
    /// [`JState::JCode`]) completes with it.
    Join {
        test: Resid<B::Triv>,
        r: Symbol,
        then_: u32,
        els: u32,
        env: GEnv<B>,
        outer_term: Term,
        state: JState<B>,
        marks: Marks,
    },
}

impl<'p, B: CodeBuilder> Clone for Frame<'p, B> {
    fn clone(&self) -> Self {
        match self {
            Frame::Lift => Frame::Lift,
            Frame::If {
                then_,
                els,
                env,
                static_,
            } => Frame::If {
                then_: *then_,
                els: *els,
                env: env.clone(),
                static_: *static_,
            },
            Frame::Let { body, env } => Frame::Let {
                body: *body,
                env: env.clone(),
            },
            Frame::AppOp { args, env, dynamic } => Frame::AppOp {
                args,
                env: env.clone(),
                dynamic: *dynamic,
            },
            Frame::Args {
                dest,
                args,
                idx,
                acc,
                env,
            } => Frame::Args {
                dest: dest.clone(),
                args,
                idx: *idx,
                acc: acc.clone(),
                env: env.clone(),
            },
            Frame::LamB { name, fresh, marks } => Frame::LamB {
                name: *name,
                fresh: fresh.clone(),
                marks: *marks,
            },
            Frame::IfTail {
                test,
                els,
                env,
                then_code,
                marks,
            } => Frame::IfTail {
                test: test.clone(),
                els: *els,
                env: env.clone(),
                then_code: then_code.clone(),
                marks: *marks,
            },
            Frame::Join {
                test,
                r,
                then_,
                els,
                env,
                outer_term,
                state,
                marks,
            } => Frame::Join {
                test: test.clone(),
                r: *r,
                then_: *then_,
                els: *els,
                env: env.clone(),
                outer_term: *outer_term,
                state: state.clone(),
                marks: *marks,
            },
        }
    }
}

impl<'p, B: CodeBuilder> Frame<'p, B> {
    /// For boundary frames: the terminal of the region above, and the
    /// wrap watermark. `None` for ordinary frames.
    fn boundary(&self) -> Option<(Term, usize)> {
        match self {
            Frame::LamB { marks, .. } | Frame::IfTail { marks, .. } => {
                Some((Term::Tail, marks.wraps))
            }
            Frame::Join {
                outer_term,
                state,
                marks,
                ..
            } => {
                let term = match state {
                    JState::JCode => *outer_term,
                    JState::Then { jname, .. } | JState::Else { jname, .. } => Term::Jump(*jname),
                };
                Some((term, marks.wraps))
            }
            _ => None,
        }
    }
}

/// The persistent continuation stack: an `Arc`-linked list so a fallback
/// guard can snapshot it in O(1) and restoring a snapshot *replays* any
/// frames that ran since (the walker's replay-on-recovery semantics).
type FStack<'p, B> = Option<Arc<FNode<'p, B>>>;

struct FNode<'p, B: CodeBuilder> {
    f: Frame<'p, B>,
    next: FStack<'p, B>,
}

/// A deferred residual `let` wrapper, applied when the region completes.
enum Wrap<B: CodeBuilder> {
    /// `(let (x serious) …)` from `deliver_serious` in non-tail position.
    Serious {
        x: Symbol,
        s: B::Serious,
        fv: SymSet,
    },
    /// `(let (x triv) …)` from unfold rebinding a heavyweight argument.
    Triv { x: Symbol, r: Resid<B::Triv> },
}

/// An armed fallback guard: enough state to replay a top-level call as a
/// generic residual call if a recoverable limit fires downstream.
struct Guard<'p, B: CodeBuilder> {
    stack: FStack<'p, B>,
    wraps_len: usize,
    def: u32,
    args: Vec<GVal<B>>,
}

struct GPending<B: CodeBuilder> {
    def: u32,
    res_name: Symbol,
    statics: Vec<GVal<B>>,
}

/// One machine transition target.
enum Step<B: CodeBuilder> {
    Eval(u32, GEnv<B>),
    Value(GVal<B>),
    Complete(RCode<B>),
}

/// Result of a transition: another step, or the current body finished.
enum Flow<B: CodeBuilder> {
    Step(Step<B>),
    Done(RCode<B>),
}

// ----- the machine ------------------------------------------------------

/// The gen-ext machine state.
pub struct GenRun<'p, B: CodeBuilder> {
    prog: &'p GenProgram,
    /// The residual-code backend.
    pub builder: B,
    gensym: Gensym,
    cache: HashMap<MemoKey, Symbol>,
    pending: VecDeque<GPending<B>>,
    generic: HashMap<Symbol, Symbol>,
    pending_generic: VecDeque<(u32, Symbol)>,
    fuel: u64,
    memo_cap: usize,
    code_cap: usize,
    deadline: Deadline,
    ticks: u64,
    fallback: bool,
    in_generic: bool,
    stack: FStack<'p, B>,
    /// Reclaimed stack nodes: a popped node that no guard snapshot shares
    /// is parked here and reused by the next push, so the steady-state
    /// push/pop cycle allocates nothing.
    free: Vec<Arc<FNode<'p, B>>>,
    /// Per-definition parameter names, interned lazily (see
    /// [`GenRun::def_params`]).
    param_names: Vec<Option<Arc<[Symbol]>>>,
    /// Spent argument vectors, reused by [`GenRun::take_vec`] so the
    /// prim-heavy inner loop recycles its buffers instead of allocating.
    val_pool: Vec<Vec<GVal<B>>>,
    wraps: Vec<Wrap<B>>,
    guards: Vec<Guard<'p, B>>,
    /// Counters.
    pub stats: SpecStats,
}

/// Runs the compiled generating extension: specializes `entry` with
/// respect to `static_args`, producing a residual program through the
/// given backend. Produces residual programs bit-identical to
/// [`specialize_staged`](crate::walk::specialize_staged) on the same
/// staged program (and equal stats), modulo the depth limit, which the
/// iterative machine does not need and ignores.
///
/// # Errors
///
/// See [`PeError`].
pub fn run_genext<B: CodeBuilder>(
    prog: &GenProgram,
    entry: &Symbol,
    static_args: &[Datum],
    builder: B,
    options: &SpecOptions,
    deadline: Deadline,
) -> Result<(B::Program, SpecStats), PeError> {
    let entry_idx = prog.lookup(entry).ok_or(PeError::NoSuchFunction(*entry))?;
    let def = &prog.defs[entry_idx as usize];
    let n_static = def.params.iter().filter(|p| !p.dynamic).count();
    if n_static != static_args.len() {
        return Err(PeError::StaticArgCount {
            entry: *entry,
            expected: n_static,
            got: static_args.len(),
        });
    }
    let limits = &options.limits;
    let mut m = GenRun {
        prog,
        builder,
        gensym: Gensym::new(),
        cache: HashMap::new(),
        pending: VecDeque::new(),
        generic: HashMap::new(),
        pending_generic: VecDeque::new(),
        fuel: limits.unfold_fuel.unwrap_or(u64::MAX),
        memo_cap: limits.memo_cap.unwrap_or(usize::MAX),
        code_cap: limits.code_cap.unwrap_or(usize::MAX),
        deadline,
        ticks: 0,
        fallback: options.fallback,
        in_generic: false,
        stack: None,
        free: Vec::new(),
        param_names: Vec::new(),
        val_pool: Vec::new(),
        wraps: Vec::new(),
        guards: Vec::new(),
        stats: SpecStats::default(),
    };
    let statics: Vec<GVal<B>> = static_args.iter().map(|d| GVal::Data(d.clone())).collect();
    m.run_spec_body(entry_idx, *entry, statics)?;
    m.drain_pending()?;
    let stats = m.stats.clone();
    Ok((m.builder.finish(entry), stats))
}

impl<'p, B: CodeBuilder + 'p> GenRun<'p, B> {
    // ----- stack primitives ---------------------------------------------

    fn push(&mut self, f: Frame<'p, B>) {
        let next = self.stack.take();
        let node = loop {
            // Reuse a reclaimed node when one is free; a node can only
            // sit on the freelist unshared, so `get_mut` succeeds unless
            // a guard armed a snapshot between reclaim and reuse — then
            // the node is abandoned and the next candidate tried.
            let Some(mut n) = self.free.pop() else {
                break Arc::new(FNode { f, next });
            };
            if let Some(m) = Arc::get_mut(&mut n) {
                m.f = f;
                m.next = next;
                break n;
            }
        };
        self.stack = Some(node);
    }

    /// Pops the top frame. A node shared with an armed guard's snapshot
    /// is cloned rather than moved, leaving the snapshot intact so a
    /// recovery can replay it; an unshared node is reclaimed for reuse.
    fn pop(&mut self) -> Option<Frame<'p, B>> {
        let mut node = self.stack.take()?;
        match Arc::get_mut(&mut node) {
            Some(n) => {
                self.stack = n.next.take();
                let f = std::mem::replace(&mut n.f, Frame::Lift);
                self.free.push(node);
                Some(f)
            }
            None => {
                self.stack = node.next.clone();
                Some(node.f.clone())
            }
        }
    }

    /// Terminal and wrap floor of the current region, if the machine sits
    /// exactly at its boundary (top of stack is a boundary frame, or the
    /// stack is empty — the body of the current work item).
    fn at_terminal(&self) -> Option<(Term, usize)> {
        match self.stack.as_ref() {
            None => Some((Term::Tail, 0)),
            Some(n) => n.f.boundary(),
        }
    }

    /// Wrap floor of the region now on top (after a boundary popped).
    fn wrap_floor(&self) -> usize {
        let mut cur = self.stack.as_ref();
        while let Some(n) = cur {
            if let Some((_, w)) = n.f.boundary() {
                return w;
            }
            cur = n.next.as_ref();
        }
        0
    }

    fn marks(&self) -> Marks {
        Marks {
            wraps: self.wraps.len(),
            guards: self.guards.len(),
        }
    }

    /// Takes a scratch value vector from the pool (or allocates one).
    fn take_vec(&mut self, cap: usize) -> Vec<GVal<B>> {
        let mut v = self.val_pool.pop().unwrap_or_default();
        v.reserve(cap);
        v
    }

    /// Returns a spent value vector to the pool for reuse.
    fn recycle(&mut self, mut v: Vec<GVal<B>>) {
        if self.val_pool.len() < 64 {
            v.clear();
            self.val_pool.push(v);
        }
    }

    /// Expires guards armed above `to` (their region completed),
    /// recycling the argument snapshots they held.
    fn expire_guards(&mut self, to: usize) {
        while self.guards.len() > to {
            if let Some(g) = self.guards.pop() {
                self.recycle(g.args);
            }
        }
    }

    // ----- staged-code accessors ----------------------------------------

    fn instr(&self, ip: u32) -> Result<&'p GenInstr, PeError> {
        let prog: &'p GenProgram = self.prog;
        prog.at(ip)
            .ok_or_else(|| PeError::Internal(format!("instruction pointer {ip} out of range")))
    }

    fn def_at(&self, i: u32) -> Result<&'p GenDef, PeError> {
        self.prog
            .defs
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("definition index {i} out of range")))
    }

    /// Parameter names of a top-level definition, interned per run so the
    /// unfold path does not rebuild the name vector on every call.
    fn def_params(&mut self, g: u32, def: &'p GenDef) -> Arc<[Symbol]> {
        let slot = g as usize;
        if self.param_names.len() <= slot {
            self.param_names
                .resize(self.prog.defs.len().max(slot + 1), None);
        }
        self.param_names[slot]
            .get_or_insert_with(|| def.params.iter().map(|p| p.name).collect())
            .clone()
    }

    fn lam_at(&self, i: u32) -> Result<&'p GenLam, PeError> {
        self.prog
            .lams
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("lambda index {i} out of range")))
    }

    fn const_at(&self, i: u32) -> Result<&'p Datum, PeError> {
        self.prog
            .consts
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("constant index {i} out of range")))
    }

    // ----- residual-value helpers ---------------------------------------

    fn dyn_val(&mut self, x: &Symbol) -> GVal<B> {
        GVal::Dyn(Resid {
            triv: self.builder.var(x),
            fv: SymSet::singleton(*x),
            simple: true,
        })
    }

    /// Coerces a specialization-time value to a residual trivial.
    fn triv_of(&mut self, v: GVal<B>) -> Result<Resid<B::Triv>, PeError> {
        match v {
            GVal::Dyn(r) => Ok(r),
            GVal::Data(d) => Ok(Resid {
                triv: self.builder.const_(&d),
                fv: SymSet::new(),
                simple: true,
            }),
            GVal::FnRef(g) => self.lift_fnref(g),
            GVal::Clo(c) => {
                let name = self.lam_at(c.lam)?.name;
                Err(PeError::Internal(format!(
                    "specialization-time closure `{name}` used as residual code; \
                     the binding-time analysis should have made it dynamic"
                )))
            }
        }
    }

    /// Lifting a top-level function reference: reference the all-dynamic
    /// residual version of the function, or its generic version when the
    /// division or the memo cap prevents that.
    fn lift_fnref(&mut self, g: u32) -> Result<Resid<B::Triv>, PeError> {
        let def = self.def_at(g)?;
        if def.params.iter().any(|p| !p.dynamic) {
            if self.fallback {
                let name = self.generic_name(g, def);
                return Ok(self.global_ref(&name));
            }
            return Err(PeError::Internal(format!(
                "function `{}` escapes into dynamic context but still has \
                 static parameters",
                def.name
            )));
        }
        let name = match self.memo_name(g, def, Vec::new(), Vec::new()) {
            Ok(n) => n,
            Err(e) if self.fallback && e.is_recoverable() => {
                self.stats.note_fallback(&e);
                self.generic_name(g, def)
            }
            Err(e) => return Err(e),
        };
        Ok(self.global_ref(&name))
    }

    fn global_ref(&mut self, name: &Symbol) -> Resid<B::Triv> {
        Resid {
            triv: self.builder.global(name),
            fv: SymSet::new(),
            simple: true,
        }
    }

    // ----- evaluation ----------------------------------------------------

    fn eval(&mut self, ip: u32, env: GEnv<B>) -> Result<Flow<B>, PeError> {
        if !self.in_generic {
            self.deadline
                .check_every(&mut self.ticks, 4096)
                .map_err(PeError::Limit)?;
        }
        Ok(Flow::Step(match self.instr(ip)? {
            GenInstr::Const(c) => Step::Value(GVal::Data(self.const_at(*c)?.clone())),
            GenInstr::Var { name, up, idx } => match env_get(&env, *up, *idx) {
                Some(v) => Step::Value(v),
                None => {
                    return Err(PeError::Internal(format!(
                        "unbound variable `{name}` at specialization time"
                    )))
                }
            },
            GenInstr::Global(g) => Step::Value(GVal::FnRef(*g)),
            GenInstr::Unbound(x) => {
                return Err(PeError::Internal(format!(
                    "unbound variable `{x}` at specialization time"
                )))
            }
            GenInstr::Lift => {
                self.push(Frame::Lift);
                Step::Eval(ip + 1, env)
            }
            GenInstr::Clo(l) => Step::Value(GVal::Clo(Arc::new(GClo { lam: *l, env }))),
            GenInstr::LamD(l) => {
                let lam = self.lam_at(*l)?;
                let fresh: Vec<Symbol> = lam
                    .params
                    .iter()
                    .map(|p| self.gensym.fresh(p.as_str()))
                    .collect();
                let mut vals = Vec::with_capacity(fresh.len());
                for f in &fresh {
                    vals.push(self.dyn_val(f));
                }
                let inner = env_push(&env, vals);
                let marks = self.marks();
                self.push(Frame::LamB {
                    name: lam.name,
                    fresh,
                    marks,
                });
                Step::Eval(lam.body, inner)
            }
            GenInstr::IfS { then_, els } => {
                self.push(Frame::If {
                    then_: *then_,
                    els: *els,
                    env: env.clone(),
                    static_: true,
                });
                Step::Eval(ip + 1, env)
            }
            GenInstr::IfD { then_, els } => {
                self.push(Frame::If {
                    then_: *then_,
                    els: *els,
                    env: env.clone(),
                    static_: false,
                });
                Step::Eval(ip + 1, env)
            }
            GenInstr::Let { body, .. } => {
                self.push(Frame::Let {
                    body: *body,
                    env: env.clone(),
                });
                Step::Eval(ip + 1, env)
            }
            GenInstr::App { args } => {
                let args: &'p [u32] = args;
                self.push(Frame::AppOp {
                    args,
                    env: env.clone(),
                    dynamic: false,
                });
                Step::Eval(ip + 1, env)
            }
            GenInstr::AppD { args } => {
                let args: &'p [u32] = args;
                self.push(Frame::AppOp {
                    args,
                    env: env.clone(),
                    dynamic: true,
                });
                Step::Eval(ip + 1, env)
            }
            GenInstr::Prim { prim, args } => {
                return self
                    .begin_args(Dest::Prim(*prim), args, env)
                    .map(Flow::Step)
            }
            GenInstr::PrimD { prim, args } => {
                return self
                    .begin_args(Dest::PrimD(*prim), args, env)
                    .map(Flow::Step)
            }
        }))
    }

    fn begin_args(
        &mut self,
        dest: Dest<B>,
        args: &'p [u32],
        env: GEnv<B>,
    ) -> Result<Step<B>, PeError> {
        if args.is_empty() {
            self.finish_args(dest, Vec::new())
        } else {
            let acc = self.take_vec(args.len());
            self.push(Frame::Args {
                dest,
                args,
                idx: 0,
                acc,
                env: env.clone(),
            });
            Ok(Step::Eval(args[0], env))
        }
    }

    // ----- value delivery ------------------------------------------------

    fn value(&mut self, v: GVal<B>) -> Result<Step<B>, PeError> {
        if let Some((term, floor)) = self.at_terminal() {
            let code = self.apply_term(term, v)?;
            let code = self.apply_wraps(code, floor);
            return Ok(Step::Complete(code));
        }
        let Some(frame) = self.pop() else {
            return Err(PeError::Internal(
                "value delivered to an empty continuation".into(),
            ));
        };
        match frame {
            Frame::Lift => {
                let r = self.triv_of(v)?;
                Ok(Step::Value(GVal::Dyn(r)))
            }
            Frame::If {
                then_,
                els,
                env,
                static_,
            } => {
                if static_ {
                    match v {
                        GVal::Data(d) => {
                            Ok(Step::Eval(if d.is_truthy() { then_ } else { els }, env))
                        }
                        GVal::Clo(_) | GVal::FnRef(_) => Ok(Step::Eval(then_, env)),
                        // A "static" test can deliver residual code when it
                        // sits downstream of a residualized error path;
                        // fall back to a residual conditional.
                        GVal::Dyn(r) => self.residual_if(r, then_, els, env),
                    }
                } else {
                    let tr = self.triv_of(v)?;
                    self.residual_if(tr, then_, els, env)
                }
            }
            Frame::Let { body, env } => {
                let inner = env_push(&env, vec![v]);
                Ok(Step::Eval(body, inner))
            }
            Frame::AppOp { args, env, dynamic } => {
                let dest = if dynamic {
                    Dest::AppD(self.triv_of(v)?)
                } else {
                    Dest::App(v)
                };
                self.begin_args(dest, args, env)
            }
            Frame::Args {
                dest,
                args,
                idx,
                mut acc,
                env,
            } => {
                acc.push(v);
                let next = idx + 1;
                if next < args.len() {
                    self.push(Frame::Args {
                        dest,
                        args,
                        idx: next,
                        acc,
                        env: env.clone(),
                    });
                    Ok(Step::Eval(args[next], env))
                } else {
                    self.finish_args(dest, acc)
                }
            }
            _ => Err(PeError::Internal(
                "boundary frame received a value out of turn".into(),
            )),
        }
    }

    fn apply_term(&mut self, term: Term, v: GVal<B>) -> Result<RCode<B>, PeError> {
        match term {
            Term::Tail => {
                let r = self.triv_of(v)?;
                Ok(RCode {
                    code: self.builder.ret(r.triv),
                    fv: r.fv,
                })
            }
            Term::Jump(jn) => {
                let tr = self.triv_of(v)?;
                let jv = self.builder.var(&jn);
                let serious = self.builder.call(jv, vec![tr.triv]);
                let mut fv = tr.fv;
                fv.insert(jn);
                Ok(RCode {
                    code: self.builder.tail(serious),
                    fv,
                })
            }
        }
    }

    /// Applies pending wraps LIFO down to `floor` — the machine form of
    /// the walker's recursive return path, with the identical builder-call
    /// order.
    fn apply_wraps(&mut self, mut code: RCode<B>, floor: usize) -> RCode<B> {
        while self.wraps.len() > floor {
            let Some(w) = self.wraps.pop() else { break };
            code = match w {
                Wrap::Serious { x, s, fv: mut fvw } => {
                    fvw.union_with(&code.fv.without(&x));
                    RCode {
                        code: self.builder.let_serious(&x, s, code.code),
                        fv: fvw,
                    }
                }
                Wrap::Triv { x, r } => {
                    let mut fv = code.fv.without(&x);
                    fv.union_with(&r.fv);
                    RCode {
                        code: self.builder.let_triv(&x, r.triv, code.code),
                        fv,
                    }
                }
            };
        }
        code
    }

    /// Emits a serious residual computation: a tail call at a `Tail`
    /// region boundary, otherwise a deferred `let` wrap around the rest
    /// of the region (the let-insertion of Fig. 3).
    fn deliver_serious(
        &mut self,
        serious: B::Serious,
        fv_args: SymSet,
    ) -> Result<Step<B>, PeError> {
        if let Some((Term::Tail, floor)) = self.at_terminal() {
            let code = RCode {
                code: self.builder.tail(serious),
                fv: fv_args,
            };
            let code = self.apply_wraps(code, floor);
            return Ok(Step::Complete(code));
        }
        let x = self.gensym.fresh("t");
        let var = self.dyn_val(&x);
        self.wraps.push(Wrap::Serious {
            x,
            s: serious,
            fv: fv_args,
        });
        Ok(Step::Value(var))
    }

    /// Builds a residual conditional. At a `Tail` boundary the branches
    /// are specialized in tail position (Fig. 3); under an ordinary
    /// continuation a *join point* is inserted instead, exactly as the
    /// walker does: the pending ordinary frames are detached and replayed
    /// against a fresh result variable to produce the join body.
    fn residual_if(
        &mut self,
        test: Resid<B::Triv>,
        then_: u32,
        els: u32,
        env: GEnv<B>,
    ) -> Result<Step<B>, PeError> {
        if let Some((Term::Tail, _)) = self.at_terminal() {
            let marks = self.marks();
            let e2 = env.clone();
            self.push(Frame::IfTail {
                test,
                els,
                env,
                then_code: None,
                marks,
            });
            return Ok(Step::Eval(then_, e2));
        }
        let r = self.gensym.fresh("r");
        let rv = self.dyn_val(&r);
        let mut seg = Vec::new();
        while self
            .stack
            .as_ref()
            .map(|n| n.f.boundary().is_none())
            .unwrap_or(false)
        {
            if let Some(f) = self.pop() {
                seg.push(f);
            }
        }
        let outer_term = match self.at_terminal() {
            Some((t, _)) => t,
            None => Term::Tail,
        };
        let marks = self.marks();
        self.push(Frame::Join {
            test,
            r,
            then_,
            els,
            env,
            outer_term,
            state: JState::JCode,
            marks,
        });
        for f in seg.into_iter().rev() {
            self.push(f);
        }
        Ok(Step::Value(rv))
    }

    // ----- calls and primitives ------------------------------------------

    fn finish_args(&mut self, dest: Dest<B>, mut acc: Vec<GVal<B>>) -> Result<Step<B>, PeError> {
        match dest {
            Dest::App(fval) => self.apply(fval, acc),
            Dest::AppD(ftr) => {
                let mut fv = ftr.fv.clone();
                let mut trivs = Vec::with_capacity(acc.len());
                for a in acc.drain(..) {
                    let r = self.triv_of(a)?;
                    fv.union_with(&r.fv);
                    trivs.push(r.triv);
                }
                self.recycle(acc);
                let serious = self.builder.call(ftr.triv, trivs);
                self.deliver_serious(serious, fv)
            }
            Dest::Prim(p) => {
                // `procedure?` is the one primitive meaningful on
                // specialization-time procedures.
                if p == Prim::ProcedureP
                    && matches!(acc.first(), Some(GVal::Clo(_) | GVal::FnRef(_)))
                {
                    return Ok(Step::Value(GVal::Data(Datum::Bool(true))));
                }
                // A "static" primitive can receive residual code
                // downstream of a residualized `error` path; fall back to
                // a residual application.
                if acc.iter().any(|v| matches!(v, GVal::Dyn(_))) {
                    let mut fv = SymSet::new();
                    let mut trivs = Vec::with_capacity(acc.len());
                    for a in acc.drain(..) {
                        let r = self.triv_of(a)?;
                        fv.union_with(&r.fv);
                        trivs.push(r.triv);
                    }
                    self.recycle(acc);
                    let serious = self.builder.prim(p, trivs);
                    return self.deliver_serious(serious, fv);
                }
                let mut data = Vec::with_capacity(acc.len());
                for v in &acc {
                    match v {
                        GVal::Data(d) => data.push(d.clone()),
                        GVal::Clo(c) => {
                            let name = self.lam_at(c.lam)?.name;
                            return Err(PeError::StaticPrim {
                                prim: p,
                                error: PrimError::TypeError {
                                    prim: p,
                                    expected: "first-order data",
                                    got: format!("#<closure {name}>"),
                                },
                            });
                        }
                        GVal::FnRef(g) => {
                            let name = self.def_at(*g)?.name;
                            return Err(PeError::StaticPrim {
                                prim: p,
                                error: PrimError::TypeError {
                                    prim: p,
                                    expected: "first-order data",
                                    got: format!("#<procedure {name}>"),
                                },
                            });
                        }
                        GVal::Dyn(_) => {
                            return Err(PeError::Internal(format!(
                                "dynamic argument to static `{p}`"
                            )))
                        }
                    }
                }
                self.recycle(acc);
                match apply_prim_datum(p, &data) {
                    Ok(d) => Ok(Step::Value(GVal::Data(d))),
                    // A static primitive fault under dynamic control must
                    // not abort specialization: the branch may be
                    // unreachable at run time. Residualize it — the fault
                    // then occurs at run time exactly when the code runs.
                    Err(_) => {
                        let mut trivs = Vec::with_capacity(data.len());
                        for d in &data {
                            trivs.push(self.builder.const_(d));
                        }
                        let serious = self.builder.prim(p, trivs);
                        self.deliver_serious(serious, SymSet::new())
                    }
                }
            }
            Dest::PrimD(p) => {
                let mut fv = SymSet::new();
                let mut trivs = Vec::with_capacity(acc.len());
                for a in acc.drain(..) {
                    let r = self.triv_of(a)?;
                    fv.union_with(&r.fv);
                    trivs.push(r.triv);
                }
                self.recycle(acc);
                let serious = self.builder.prim(p, trivs);
                self.deliver_serious(serious, fv)
            }
        }
    }

    fn apply(&mut self, fval: GVal<B>, mut args: Vec<GVal<B>>) -> Result<Step<B>, PeError> {
        match fval {
            GVal::Clo(c) => {
                let lam = self.lam_at(c.lam)?;
                self.unfold(lam.name, &lam.params, lam.body, c.env.clone(), args)
            }
            GVal::FnRef(g) => {
                let def = self.def_at(g)?;
                // A top-level call is a *recoverable* position: arm a
                // guard snapshotting the continuation, so that if a
                // resource limit fires while processing the call (or
                // anywhere downstream within the current region), the
                // call is residualized against the generic version of the
                // callee. The walker's attempt/catch at this site, as a
                // persistent-stack snapshot.
                if self.fallback {
                    let mut snap = self.take_vec(args.len());
                    snap.extend(args.iter().cloned());
                    self.guards.push(Guard {
                        stack: self.stack.clone(),
                        wraps_len: self.wraps.len(),
                        def: g,
                        args: snap,
                    });
                }
                if def.memoize {
                    self.memo_call(g, def, args)
                } else {
                    let params = self.def_params(g, def);
                    self.unfold(def.name, &params, def.body, None, args)
                }
            }
            GVal::Dyn(r) => {
                // The operator turned out to be residual code
                // (conservative annotation): emit a residual call.
                let mut fv = r.fv.clone();
                let mut trivs = Vec::with_capacity(args.len());
                for a in args.drain(..) {
                    let t = self.triv_of(a)?;
                    fv.union_with(&t.fv);
                    trivs.push(t.triv);
                }
                self.recycle(args);
                let serious = self.builder.call(r.triv, trivs);
                self.deliver_serious(serious, fv)
            }
            GVal::Data(d) => Err(PeError::NotAProcedure(d.to_string())),
        }
    }

    /// β-reduction at specialization time: bind the arguments and jump to
    /// the body. Heavyweight dynamic arguments (compiled lambdas) are
    /// let-bound first — as deferred [`Wrap::Triv`]s, popped LIFO at
    /// region completion in the walker's exact order — so unfolding never
    /// duplicates code.
    fn unfold(
        &mut self,
        name: Symbol,
        params: &[Symbol],
        body: u32,
        base_env: GEnv<B>,
        args: Vec<GVal<B>>,
    ) -> Result<Step<B>, PeError> {
        if params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name,
                expected: params.len(),
                got: args.len(),
            });
        }
        self.check_call_limits()?;
        if self.fuel == 0 {
            return Err(PeError::UnfoldLimit(self.stats.unfolds));
        }
        self.fuel -= 1;
        self.stats.unfolds += 1;
        // Strided: one per-unfold trace event would flood the bounded
        // ring. The detail word carries the running total so the trace
        // still shows unfold progress.
        if self.stats.unfolds % 256 == 1 {
            two4one_obs::event_with(two4one_obs::EventKind::Unfold, self.stats.unfolds);
        }
        // Rebind in place: `args` becomes the environment frame directly,
        // with heavyweight dynamic arguments swapped for fresh variables.
        let mut vals = args;
        for (p, a) in params.iter().zip(vals.iter_mut()) {
            if matches!(a, GVal::Dyn(r) if !r.simple) {
                let fresh = self.gensym.fresh(p.as_str());
                let var = self.dyn_val(&fresh);
                if let GVal::Dyn(r) = std::mem::replace(a, var) {
                    self.wraps.push(Wrap::Triv { x: fresh, r });
                }
            }
        }
        let env = env_push(&base_env, vals);
        Ok(Step::Eval(body, env))
    }

    /// Limit checks performed at every call: wall-clock deadline and
    /// emitted-code cap. Both are recoverable at a call boundary.
    /// Suspended while emitting a generic fallback body, which must be
    /// allowed to finish (it is linear in the source program).
    fn check_call_limits(&self) -> Result<(), PeError> {
        if self.in_generic {
            return Ok(());
        }
        self.deadline.check().map_err(PeError::Limit)?;
        if self.builder.code_size() > self.code_cap {
            return Err(PeError::Limit(LimitExceeded {
                kind: LimitKind::CodeSize,
                limit: self.code_cap as u64,
            }));
        }
        Ok(())
    }

    // ----- memoization ---------------------------------------------------

    /// Returns the residual name for `def` specialized to `statics`
    /// (whose key projection the caller has already computed), scheduling
    /// the specialization if it is new.
    fn memo_name(
        &mut self,
        def_idx: u32,
        def: &'p GenDef,
        keys: Vec<StaticKey>,
        statics: Vec<GVal<B>>,
    ) -> Result<Symbol, PeError> {
        let key = MemoKey::new(def.name, keys);
        if let Some(name) = self.cache.get(&key) {
            self.stats.memo_hits += 1;
            two4one_obs::event(two4one_obs::EventKind::MemoHit);
            return Ok(*name);
        }
        if self.cache.len() >= self.memo_cap {
            return Err(PeError::Limit(LimitExceeded {
                kind: LimitKind::MemoEntries,
                limit: self.memo_cap as u64,
            }));
        }
        self.stats.memo_misses += 1;
        two4one_obs::event(two4one_obs::EventKind::MemoMiss);
        let res_name = self.gensym.fresh(def.name.as_str());
        self.cache.insert(key, res_name);
        self.pending.push_back(GPending {
            def: def_idx,
            res_name,
            statics,
        });
        Ok(res_name)
    }

    fn memo_call(
        &mut self,
        def_idx: u32,
        def: &'p GenDef,
        mut args: Vec<GVal<B>>,
    ) -> Result<Step<B>, PeError> {
        if def.params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name: def.name,
                expected: def.params.len(),
                got: args.len(),
            });
        }
        self.check_call_limits()?;
        let mut statics = Vec::new();
        let mut keys = Vec::new();
        let mut dyns: Vec<Resid<B::Triv>> = Vec::new();
        for (p, a) in def.params.iter().zip(args.drain(..)) {
            if p.dynamic {
                dyns.push(self.triv_of(a)?);
            } else {
                match a {
                    GVal::Data(ref d) => {
                        keys.push(StaticKey::Data(d.clone()));
                        statics.push(a);
                    }
                    GVal::FnRef(g) => {
                        // Keyed by the *source* name of the referenced
                        // definition so walker and gen-ext machine agree.
                        keys.push(StaticKey::Fn(self.def_at(g)?.name));
                        statics.push(a);
                    }
                    GVal::Clo(_) => return Err(PeError::ClosureInMemoKey(def.name)),
                    GVal::Dyn(_) => {
                        return Err(PeError::Internal(format!(
                            "dynamic argument for static parameter `{}` of `{}`",
                            p.name, def.name
                        )))
                    }
                }
            }
        }
        self.recycle(args);
        let res_name = self.memo_name(def_idx, def, keys, statics)?;
        let mut fv = SymSet::new();
        let mut trivs = Vec::with_capacity(dyns.len());
        for r in dyns {
            fv.union_with(&r.fv);
            trivs.push(r.triv);
        }
        let serious = self.builder.call_global(&res_name, trivs);
        self.deliver_serious(serious, fv)
    }

    // ----- graceful fallback ---------------------------------------------

    /// Returns the name of the generic (all-dynamic) residual version of
    /// `def`, scheduling its emission if this is the first request.
    fn generic_name(&mut self, def_idx: u32, def: &'p GenDef) -> Symbol {
        if let Some(n) = self.generic.get(&def.name) {
            return *n;
        }
        let res_name = self.gensym.fresh(&format!("{}-generic", def.name));
        self.generic.insert(def.name, res_name);
        self.pending_generic.push_back((def_idx, res_name));
        res_name
    }

    /// Residualizes a call against the generic version of `def` — the
    /// graceful-degradation path taken when a recoverable resource limit
    /// fires at (or downstream of) a guarded top-level call.
    fn generic_call_step(&mut self, g: u32, args: Vec<GVal<B>>) -> Result<Step<B>, PeError> {
        let def = self.def_at(g)?;
        if def.params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name: def.name,
                expected: def.params.len(),
                got: args.len(),
            });
        }
        let name = self.generic_name(g, def);
        let mut fv = SymSet::new();
        let mut trivs = Vec::with_capacity(args.len());
        for a in args {
            let r = self.triv_of(a)?;
            fv.union_with(&r.fv);
            trivs.push(r.triv);
        }
        let serious = self.builder.call_global(&name, trivs);
        self.deliver_serious(serious, fv)
    }

    // ----- region completion ---------------------------------------------

    /// Delivers a completed region's residual code to the boundary frame
    /// on top of the stack, looping while completions cascade (an `if`
    /// or join assembled at one boundary immediately completes the next).
    fn complete(&mut self, mut code: RCode<B>) -> Result<Flow<B>, PeError> {
        loop {
            let Some(top) = self.stack.as_ref() else {
                return Ok(Flow::Done(code));
            };
            if top.f.boundary().is_none() {
                return Err(PeError::Internal(
                    "region completed into an ordinary continuation frame".into(),
                ));
            }
            let Some(frame) = self.pop() else {
                return Ok(Flow::Done(code));
            };
            match frame {
                Frame::LamB { name, fresh, marks } => {
                    // Guards armed inside the body expired when it
                    // completed (the walker's catch frames unwound).
                    self.expire_guards(marks.guards);
                    let mut frees = code.fv;
                    frees.retain(|v| !fresh.contains(v));
                    let triv = self
                        .builder
                        .lambda(&name, &fresh, frees.as_slice(), code.code);
                    return Ok(Flow::Step(Step::Value(GVal::Dyn(Resid {
                        triv,
                        fv: frees,
                        simple: false,
                    }))));
                }
                Frame::IfTail {
                    test,
                    els,
                    env,
                    then_code: None,
                    marks,
                } => {
                    self.expire_guards(marks.guards);
                    let e2 = env.clone();
                    self.push(Frame::IfTail {
                        test,
                        els,
                        env,
                        then_code: Some(code),
                        marks,
                    });
                    return Ok(Flow::Step(Step::Eval(els, e2)));
                }
                Frame::IfTail {
                    test,
                    then_code: Some(then),
                    marks,
                    ..
                } => {
                    self.expire_guards(marks.guards);
                    let mut fv = test.fv;
                    fv.union_with(&then.fv);
                    fv.union_with(&code.fv);
                    let c2 = self.builder.if_(test.triv, then.code, code.code);
                    code = RCode { code: c2, fv };
                    let floor = self.wrap_floor();
                    code = self.apply_wraps(code, floor);
                }
                Frame::Join {
                    test,
                    r,
                    then_,
                    els,
                    env,
                    outer_term,
                    state,
                    marks,
                } => {
                    self.expire_guards(marks.guards);
                    match state {
                        JState::JCode => {
                            let jname = self.gensym.fresh("join");
                            let frees = code.fv.without(&r);
                            let lam = self.builder.lambda(
                                &jname,
                                std::slice::from_ref(&r),
                                frees.as_slice(),
                                code.code,
                            );
                            let e2 = env.clone();
                            self.push(Frame::Join {
                                test,
                                r,
                                then_,
                                els,
                                env,
                                outer_term,
                                state: JState::Then { jname, lam, frees },
                                marks,
                            });
                            return Ok(Flow::Step(Step::Eval(then_, e2)));
                        }
                        JState::Then { jname, lam, frees } => {
                            let e2 = env.clone();
                            self.push(Frame::Join {
                                test,
                                r,
                                then_,
                                els,
                                env,
                                outer_term,
                                state: JState::Else {
                                    jname,
                                    lam,
                                    frees,
                                    then_code: code,
                                },
                                marks,
                            });
                            return Ok(Flow::Step(Step::Eval(els, e2)));
                        }
                        JState::Else {
                            jname,
                            lam,
                            frees,
                            then_code,
                        } => {
                            let mut fv = test.fv;
                            fv.union_with(&then_code.fv.without(&jname));
                            fv.union_with(&code.fv.without(&jname));
                            fv.union_with(&frees);
                            let iff = self.builder.if_(test.triv, then_code.code, code.code);
                            let c2 = self.builder.let_triv(&jname, lam, iff);
                            code = RCode { code: c2, fv };
                            let floor = self.wrap_floor();
                            code = self.apply_wraps(code, floor);
                        }
                    }
                }
                _ => {
                    return Err(PeError::Internal(
                        "ordinary frame at a region boundary".into(),
                    ))
                }
            }
        }
    }

    // ----- recovery and the driver ---------------------------------------

    /// Error recovery, mirroring the walker's nested attempt/catch: pop
    /// guards innermost-first, restore the snapshotted continuation, and
    /// residualize the guarded call against the callee's generic version;
    /// when no guard remains, fall back at the work-item level (the body
    /// recompiled generically), at most once per item.
    fn recover(
        &mut self,
        mut e: PeError,
        def_idx: u32,
        env: &GEnv<B>,
        can_fall_back: &mut bool,
    ) -> Result<Step<B>, PeError> {
        loop {
            if !e.is_recoverable() {
                return Err(e);
            }
            if let Some(g) = self.guards.pop() {
                self.stats.note_fallback(&e);
                self.stack = g.stack;
                self.wraps.truncate(g.wraps_len);
                match self.generic_call_step(g.def, g.args) {
                    Ok(s) => return Ok(s),
                    Err(e2) => {
                        e = e2;
                        continue;
                    }
                }
            }
            if *can_fall_back {
                *can_fall_back = false;
                self.stats.note_fallback(&e);
                self.stack = None;
                self.wraps.clear();
                self.guards.clear();
                self.in_generic = true;
                let generic_ip = self.def_at(def_idx)?.generic;
                return Ok(Step::Eval(generic_ip, env.clone()));
            }
            return Err(e);
        }
    }

    /// Runs one work item — a staged body under `env` — to its residual
    /// definition and emits it.
    fn run_to_done(
        &mut self,
        def_idx: u32,
        res_name: Symbol,
        fresh_params: Vec<Symbol>,
        env: GEnv<B>,
        start: u32,
        drained_generic: bool,
    ) -> Result<(), PeError> {
        self.stack = None;
        self.wraps.clear();
        self.guards.clear();
        self.in_generic = drained_generic;
        // Work-item-level fallback is available once, and never while
        // already emitting a generic body.
        let mut can_fall_back = self.fallback && !drained_generic;
        let mut state = Step::Eval(start, env.clone());
        let code = loop {
            let flow = match state {
                Step::Eval(ip, e) => self.eval(ip, e),
                Step::Value(v) => self.value(v).map(Flow::Step),
                Step::Complete(c) => self.complete(c),
            };
            state = match flow {
                Ok(Flow::Step(s)) => s,
                Ok(Flow::Done(c)) => break c,
                Err(e) => self.recover(e, def_idx, &env, &mut can_fall_back)?,
            };
        };
        debug_assert!(
            code.fv.iter().all(|v| fresh_params.contains(v)),
            "residual `{res_name}` not closed: free {:?}",
            code.fv
        );
        self.builder.define(&res_name, &fresh_params, code.code);
        self.stats.residual_defs += 1;
        if drained_generic {
            self.stats.generic_defs += 1;
        }
        self.in_generic = false;
        Ok(())
    }

    fn run_spec_body(
        &mut self,
        def_idx: u32,
        res_name: Symbol,
        statics: Vec<GVal<B>>,
    ) -> Result<(), PeError> {
        let def = self.def_at(def_idx)?;
        let mut fresh_params = Vec::new();
        let mut it = statics.into_iter();
        let mut vals = Vec::with_capacity(def.params.len());
        for param in &def.params {
            if param.dynamic {
                let fresh = self.gensym.fresh(param.name.as_str());
                let var = self.dyn_val(&fresh);
                vals.push(var);
                fresh_params.push(fresh);
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| PeError::Internal("static argument count drift".into()))?;
                vals.push(v);
            }
        }
        // One frame for the whole parameter list: a single Arc.
        let env = env_push(&None, vals);
        self.run_to_done(def_idx, res_name, fresh_params, env, def.body, false)
    }

    fn run_generic_body(&mut self, def_idx: u32, res_name: Symbol) -> Result<(), PeError> {
        let def = self.def_at(def_idx)?;
        let mut fresh_params = Vec::new();
        let mut vals = Vec::with_capacity(def.params.len());
        for param in &def.params {
            let fresh = self.gensym.fresh(param.name.as_str());
            let var = self.dyn_val(&fresh);
            vals.push(var);
            fresh_params.push(fresh);
        }
        let env = env_push(&None, vals);
        self.run_to_done(def_idx, res_name, fresh_params, env, def.generic, true)
    }

    /// Processes the pending queues: one residual definition per distinct
    /// specialization point, plus at most one generic definition per
    /// source function requested by fallbacks.
    fn drain_pending(&mut self) -> Result<(), PeError> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                self.run_spec_body(p.def, p.res_name, p.statics)?;
            } else if let Some((def_idx, res_name)) = self.pending_generic.pop_front() {
                self.run_generic_body(def_idx, res_name)?;
            } else {
                return Ok(());
            }
        }
    }
}
