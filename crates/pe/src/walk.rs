//! The interpretive walker — Fig. 3 of the paper over the staged IR.
//!
//! This is the continuation-based offline specializer, re-expressed as a
//! consumer of [`GenProgram`]: where the original engine recursed over
//! annotated syntax trees, the walker follows instruction pointers into
//! the flat staged code. Continuations are heap-allocated closures
//! (`Kont`), environments are name-keyed, and every action — gensym
//! draws, builder calls, memo probes, observability events — happens in
//! exactly the order the tree-walking engine performed them, which is
//! what the gen-ext machine ([`crate::genrun`]) is tested bit-for-bit
//! against.
//!
//! Continuation-based partial evaluation (Bondorf; Lawall & Danvy) is
//! what makes the residual code come out in A-normal form: every residual
//! *serious* computation is named by a `let` with a fresh variable the
//! moment it is emitted, and dynamic conditionals get a join point in
//! non-tail position instead of duplicating their continuation.

use crate::engine::{MemoKey, RCode, Resid, SpecStats, StaticKey};
use crate::{PeError, SpecOptions};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use two4one_anf::build::CodeBuilder;
use two4one_interp::env::Env;
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::{Deadline, LimitExceeded, LimitKind};
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::{Gensym, Symbol};
use two4one_syntax::symset::SymSet;
use two4one_syntax::value::{apply_prim_datum, PrimError};
use two4one_vm::{GenDef, GenInstr, GenLam, GenProgram};

/// A specialization-time value.
pub enum SVal<B: CodeBuilder> {
    /// Static first-order data.
    Data(Datum),
    /// A specialization-time closure.
    Clo(Arc<PClosure<B>>),
    /// A top-level function used as a value (definition index).
    FnRef(u32),
    /// A dynamic value: residual code.
    Dyn(Resid<B::Triv>),
}

impl<B: CodeBuilder> Clone for SVal<B> {
    fn clone(&self) -> Self {
        match self {
            SVal::Data(d) => SVal::Data(d.clone()),
            SVal::Clo(c) => SVal::Clo(c.clone()),
            SVal::FnRef(g) => SVal::FnRef(*g),
            SVal::Dyn(r) => SVal::Dyn(r.clone()),
        }
    }
}

/// A specialization-time closure.
pub struct PClosure<B: CodeBuilder> {
    /// Index of the staged lambda.
    pub lam: u32,
    /// Captured specialization-time environment.
    pub env: PEnv<B>,
}

/// Specialization-time environments.
pub type PEnv<B> = Env<SVal<B>>;

type KontFn<'p, B> = dyn Fn(&mut Spec<'p, B>, SVal<B>) -> Result<RCode<B>, PeError> + 'p;
type ListKontFn<'p, B> = dyn Fn(&mut Spec<'p, B>, Vec<SVal<B>>) -> Result<RCode<B>, PeError> + 'p;

/// The specialization continuation. `Tail` marks the boundary of a
/// residual function body; delivering a serious computation there produces
/// a tail call (a jump), everywhere else a fresh `let`.
pub enum Kont<'p, B: CodeBuilder> {
    /// Body boundary.
    Tail,
    /// An ordinary continuation.
    Op(Arc<KontFn<'p, B>>),
}

impl<'p, B: CodeBuilder> Clone for Kont<'p, B> {
    fn clone(&self) -> Self {
        match self {
            Kont::Tail => Kont::Tail,
            Kont::Op(f) => Kont::Op(f.clone()),
        }
    }
}

impl<'p, B: CodeBuilder + 'p> Kont<'p, B> {
    fn op(f: impl Fn(&mut Spec<'p, B>, SVal<B>) -> Result<RCode<B>, PeError> + 'p) -> Self {
        Kont::Op(Arc::new(f))
    }
}

struct Pending<B: CodeBuilder> {
    def: u32,
    res_name: Symbol,
    statics: Vec<SVal<B>>,
}

/// The walker state.
pub struct Spec<'p, B: CodeBuilder> {
    prog: &'p GenProgram,
    /// The residual-code backend.
    pub builder: B,
    gensym: Gensym,
    cache: HashMap<MemoKey, Symbol>,
    pending: VecDeque<Pending<B>>,
    /// Per source function: the name of its generic (all-dynamic) residual
    /// version, if one has been requested by a fallback.
    generic: HashMap<Symbol, Symbol>,
    pending_generic: VecDeque<(u32, Symbol)>,
    fuel: u64,
    depth: usize,
    max_depth: usize,
    memo_cap: usize,
    code_cap: usize,
    deadline: Deadline,
    ticks: u64,
    /// Degrade gracefully at recoverable limits (see [`SpecOptions`]).
    fallback: bool,
    /// True while emitting a generic fallback body. Generic emission does
    /// no unfolding and is linear in the source, so resource checks are
    /// suspended — the escape hatch must be allowed to finish.
    in_generic: bool,
    /// Counters.
    pub stats: SpecStats,
}

/// Runs the interpretive walker over a staged program: specializes
/// `entry` with respect to `static_args`, producing a residual program
/// through the given backend.
///
/// `static_args` are matched positionally against the *static* parameters
/// of the entry's division; its dynamic parameters become the parameters
/// of the residual entry definition (which keeps the entry's name).
///
/// # Errors
///
/// See [`PeError`].
pub fn specialize_staged<B: CodeBuilder>(
    prog: &GenProgram,
    entry: &Symbol,
    static_args: &[Datum],
    builder: B,
    options: &SpecOptions,
    deadline: Deadline,
) -> Result<(B::Program, SpecStats), PeError> {
    let entry_idx = prog.lookup(entry).ok_or(PeError::NoSuchFunction(*entry))?;
    let def = &prog.defs[entry_idx as usize];
    let n_static = def.params.iter().filter(|p| !p.dynamic).count();
    if n_static != static_args.len() {
        return Err(PeError::StaticArgCount {
            entry: *entry,
            expected: n_static,
            got: static_args.len(),
        });
    }
    let limits = &options.limits;
    let mut spec = Spec {
        prog,
        builder,
        gensym: Gensym::new(),
        cache: HashMap::new(),
        pending: VecDeque::new(),
        generic: HashMap::new(),
        pending_generic: VecDeque::new(),
        fuel: limits.unfold_fuel.unwrap_or(u64::MAX),
        depth: 0,
        max_depth: limits.max_depth.unwrap_or(usize::MAX),
        memo_cap: limits.memo_cap.unwrap_or(usize::MAX),
        code_cap: limits.code_cap.unwrap_or(usize::MAX),
        deadline,
        ticks: 0,
        fallback: options.fallback,
        in_generic: false,
        stats: SpecStats::default(),
    };
    let mut fresh_params = Vec::new();
    let mut statics = static_args.iter();
    let mut binds = Vec::with_capacity(def.params.len());
    for p in &def.params {
        if p.dynamic {
            let fresh = spec.gensym.fresh(p.name.as_str());
            binds.push((p.name, spec.dyn_var(&fresh)));
            fresh_params.push(fresh);
        } else {
            let d = statics
                .next()
                .ok_or_else(|| PeError::Internal("static argument count drift".into()))?;
            binds.push((p.name, SVal::Data(d.clone())));
        }
    }
    // One frame for the whole parameter list: a single Arc.
    let env = PEnv::<B>::empty().extend_many(binds);
    let body = match spec.spec(def.body, &env, Kont::Tail) {
        Ok(b) => b,
        Err(e) if spec.fallback && e.is_recoverable() => {
            spec.stats.note_fallback(&e);
            spec.spec_generic_body(def, &env)?
        }
        Err(e) => return Err(e),
    };
    debug_assert!(
        body.fv.iter().all(|v| fresh_params.contains(v)),
        "residual entry body not closed: free {:?}",
        body.fv
    );
    spec.builder.define(entry, &fresh_params, body.code);
    spec.stats.residual_defs += 1;
    spec.drain_pending()?;
    let stats = spec.stats.clone();
    Ok((spec.builder.finish(entry), stats))
}

impl<'p, B: CodeBuilder + 'p> Spec<'p, B> {
    // ----- staged-code accessors ----------------------------------------

    fn instr(&self, ip: u32) -> Result<&'p GenInstr, PeError> {
        let prog: &'p GenProgram = self.prog;
        prog.at(ip)
            .ok_or_else(|| PeError::Internal(format!("instruction pointer {ip} out of range")))
    }

    fn def(&self, i: u32) -> Result<&'p GenDef, PeError> {
        self.prog
            .defs
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("definition index {i} out of range")))
    }

    fn lam(&self, i: u32) -> Result<&'p GenLam, PeError> {
        self.prog
            .lams
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("lambda index {i} out of range")))
    }

    fn const_at(&self, i: u32) -> Result<&'p Datum, PeError> {
        self.prog
            .consts
            .get(i as usize)
            .ok_or_else(|| PeError::Internal(format!("constant index {i} out of range")))
    }

    // ----- residual-value helpers ---------------------------------------

    fn dyn_var(&mut self, x: &Symbol) -> SVal<B> {
        SVal::Dyn(Resid {
            triv: self.builder.var(x),
            fv: SymSet::singleton(*x),
            simple: true,
        })
    }

    /// Coerces a specialization-time value to a residual trivial.
    fn triv_of(&mut self, v: SVal<B>) -> Result<Resid<B::Triv>, PeError> {
        match v {
            SVal::Dyn(r) => Ok(r),
            SVal::Data(d) => Ok(Resid {
                triv: self.builder.const_(&d),
                fv: SymSet::new(),
                simple: true,
            }),
            SVal::FnRef(g) => self.lift_fnref(g),
            SVal::Clo(c) => {
                let name = self.lam(c.lam)?.name;
                Err(PeError::Internal(format!(
                    "specialization-time closure `{name}` used as residual code; \
                     the binding-time analysis should have made it dynamic"
                )))
            }
        }
    }

    /// Lifting a top-level function reference: reference the all-dynamic
    /// residual version of the function.
    ///
    /// With fallback enabled, a function that still has static parameters
    /// (which happens inside generic fallback bodies, where the
    /// binding-time division no longer applies) or whose all-dynamic
    /// version cannot be scheduled because the memo cache is full is
    /// redirected to its *generic* version instead.
    fn lift_fnref(&mut self, g: u32) -> Result<Resid<B::Triv>, PeError> {
        let def = self.def(g)?;
        if def.params.iter().any(|p| !p.dynamic) {
            if self.fallback {
                let name = self.generic_name(g, def);
                return Ok(self.global_ref(&name));
            }
            return Err(PeError::Internal(format!(
                "function `{}` escapes into dynamic context but still has \
                 static parameters",
                def.name
            )));
        }
        let name = match self.memo_name(g, def, Vec::new(), Vec::new()) {
            Ok(n) => n,
            Err(e) if self.fallback && e.is_recoverable() => {
                self.stats.note_fallback(&e);
                self.generic_name(g, def)
            }
            Err(e) => return Err(e),
        };
        Ok(self.global_ref(&name))
    }

    fn global_ref(&mut self, name: &Symbol) -> Resid<B::Triv> {
        Resid {
            triv: self.builder.global(name),
            fv: SymSet::new(),
            simple: true,
        }
    }

    // ----- continuation plumbing ----------------------------------------

    fn apply_kont(&mut self, k: &Kont<'p, B>, v: SVal<B>) -> Result<RCode<B>, PeError> {
        match k {
            Kont::Tail => {
                let r = self.triv_of(v)?;
                Ok(RCode {
                    code: self.builder.ret(r.triv),
                    fv: r.fv,
                })
            }
            Kont::Op(f) => f.clone()(self, v),
        }
    }

    /// Emits a serious residual computation: a tail call at a body
    /// boundary, otherwise a fresh `let` (the let-insertion of Fig. 3).
    fn deliver_serious(
        &mut self,
        k: &Kont<'p, B>,
        serious: B::Serious,
        fv_args: SymSet,
    ) -> Result<RCode<B>, PeError> {
        match k {
            Kont::Tail => Ok(RCode {
                code: self.builder.tail(serious),
                fv: fv_args,
            }),
            Kont::Op(_) => {
                let x = self.gensym.fresh("t");
                let var = self.dyn_var(&x);
                let rest = self.apply_kont(k, var)?;
                let mut fv = fv_args;
                fv.union_with(&rest.fv.without(&x));
                Ok(RCode {
                    code: self.builder.let_serious(&x, serious, rest.code),
                    fv,
                })
            }
        }
    }

    /// Builds a residual conditional. With a `Tail` continuation the
    /// branches are simply specialized in tail position (Fig. 3). With an
    /// ordinary continuation, naively duplicating it into both branches —
    /// as Fig. 3 does — makes residual code exponential in the number of
    /// sequential dynamic conditionals, so a *join point* is inserted
    /// instead: `(let ((j (λ (r) K[r]))) (if t (j …) (j …)))`, the same
    /// device the stock A-normalizer uses.
    fn residual_if(
        &mut self,
        test: Resid<B::Triv>,
        then_ip: u32,
        els_ip: u32,
        env: &PEnv<B>,
        k: Kont<'p, B>,
    ) -> Result<RCode<B>, PeError> {
        match k {
            Kont::Tail => {
                let then = self.spec(then_ip, env, Kont::Tail)?;
                let els = self.spec(els_ip, env, Kont::Tail)?;
                let mut fv = test.fv;
                fv.union_with(&then.fv);
                fv.union_with(&els.fv);
                Ok(RCode {
                    code: self.builder.if_(test.triv, then.code, els.code),
                    fv,
                })
            }
            Kont::Op(f) => {
                let r = self.gensym.fresh("r");
                let rv = self.dyn_var(&r);
                let jcode = f(self, rv)?;
                let jname = self.gensym.fresh("join");
                let frees = jcode.fv.without(&r);
                let lam = self.builder.lambda(
                    &jname,
                    std::slice::from_ref(&r),
                    frees.as_slice(),
                    jcode.code,
                );
                let jn = jname;
                let jump = Kont::op(move |s: &mut Spec<'p, B>, v: SVal<B>| {
                    let tr = s.triv_of(v)?;
                    let jv = s.builder.var(&jn);
                    let serious = s.builder.call(jv, vec![tr.triv]);
                    let mut fv = tr.fv;
                    fv.insert(jn);
                    Ok(RCode {
                        code: s.builder.tail(serious),
                        fv,
                    })
                });
                let then = self.spec(then_ip, env, jump.clone())?;
                let els = self.spec(els_ip, env, jump)?;
                let mut fv = test.fv;
                fv.union_with(&then.fv.without(&jname));
                fv.union_with(&els.fv.without(&jname));
                fv.union_with(&frees);
                let iff = self.builder.if_(test.triv, then.code, els.code);
                Ok(RCode {
                    code: self.builder.let_triv(&jname, lam, iff),
                    fv,
                })
            }
        }
    }

    // ----- the specializer proper (Fig. 3) ------------------------------

    /// Specializes the staged expression at `ip` in environment `env`,
    /// delivering the result to `k`.
    pub fn spec(&mut self, ip: u32, env: &PEnv<B>, k: Kont<'p, B>) -> Result<RCode<B>, PeError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(PeError::DepthLimit {
                limit: self.max_depth,
                unfolds: self.stats.unfolds,
            });
        }
        if !self.in_generic {
            if let Err(l) = self.deadline.check_every(&mut self.ticks, 4096) {
                self.depth -= 1;
                return Err(PeError::Limit(l));
            }
        }
        let result = self.spec_inner(ip, env, k);
        self.depth -= 1;
        result
    }

    fn spec_inner(&mut self, ip: u32, env: &PEnv<B>, k: Kont<'p, B>) -> Result<RCode<B>, PeError> {
        match self.instr(ip)? {
            GenInstr::Const(c) => {
                let d = self.const_at(*c)?.clone();
                self.apply_kont(&k, SVal::Data(d))
            }
            GenInstr::Var { name, .. } => {
                let v = env.lookup(name).ok_or_else(|| {
                    PeError::Internal(format!("unbound variable `{name}` at specialization time"))
                })?;
                self.apply_kont(&k, v)
            }
            GenInstr::Global(g) => self.apply_kont(&k, SVal::FnRef(*g)),
            GenInstr::Unbound(x) => Err(PeError::Internal(format!(
                "unbound variable `{x}` at specialization time"
            ))),
            GenInstr::Lift => self.spec(
                ip + 1,
                env,
                Kont::op(move |s, v| {
                    let r = s.triv_of(v)?;
                    s.apply_kont(&k, SVal::Dyn(r))
                }),
            ),
            GenInstr::Clo(l) => {
                let clo = SVal::Clo(Arc::new(PClosure {
                    lam: *l,
                    env: env.clone(),
                }));
                self.apply_kont(&k, clo)
            }
            GenInstr::LamD(l) => {
                let lam = self.lam(*l)?;
                let fresh: Vec<Symbol> = lam
                    .params
                    .iter()
                    .map(|p| self.gensym.fresh(p.as_str()))
                    .collect();
                let mut binds = Vec::with_capacity(fresh.len());
                for (p, f) in lam.params.iter().zip(&fresh) {
                    binds.push((*p, self.dyn_var(f)));
                }
                let inner = env.extend_many(binds);
                let body = self.spec(lam.body, &inner, Kont::Tail)?;
                let mut frees = body.fv;
                frees.retain(|v| !fresh.contains(v));
                let triv = self
                    .builder
                    .lambda(&lam.name, &fresh, frees.as_slice(), body.code);
                self.apply_kont(
                    &k,
                    SVal::Dyn(Resid {
                        triv,
                        fv: frees,
                        simple: false,
                    }),
                )
            }
            GenInstr::IfS { then_, els } => {
                let (then_, els, env2) = (*then_, *els, env.clone());
                self.spec(
                    ip + 1,
                    env,
                    Kont::op(move |s, v| {
                        let truthy = match &v {
                            SVal::Data(d) => d.is_truthy(),
                            SVal::Clo(_) | SVal::FnRef(_) => true,
                            // A "static" test can deliver residual code
                            // when it sits downstream of a residualized
                            // `error` path; fall back to a residual
                            // conditional.
                            SVal::Dyn(r) => {
                                let tr = r.clone();
                                return s.residual_if(tr, then_, els, &env2, k.clone());
                            }
                        };
                        let branch = if truthy { then_ } else { els };
                        s.spec(branch, &env2, k.clone())
                    }),
                )
            }
            GenInstr::IfD { then_, els } => {
                let (then_, els, env2) = (*then_, *els, env.clone());
                self.spec(
                    ip + 1,
                    env,
                    Kont::op(move |s, v| {
                        let tr = s.triv_of(v)?;
                        s.residual_if(tr, then_, els, &env2, k.clone())
                    }),
                )
            }
            GenInstr::Let { name, body } => {
                let (x, body, env2) = (*name, *body, env.clone());
                self.spec(
                    ip + 1,
                    env,
                    Kont::op(move |s, v| {
                        let inner = env2.extend(x, v);
                        s.spec(body, &inner, k.clone())
                    }),
                )
            }
            GenInstr::App { args } => {
                let args: &'p [u32] = args;
                self.spec(ip + 1, env, {
                    let env2 = env.clone();
                    Kont::op(move |s, fval| {
                        let k2 = k.clone();
                        let fval2 = fval.clone();
                        s.spec_list(
                            args,
                            0,
                            env2.clone(),
                            Vec::new(),
                            Arc::new(move |s, argvals| s.apply(fval2.clone(), argvals, k2.clone())),
                        )
                    })
                })
            }
            GenInstr::AppD { args } => {
                let args: &'p [u32] = args;
                let env2 = env.clone();
                self.spec(
                    ip + 1,
                    env,
                    Kont::op(move |s, fval| {
                        let ftr = s.triv_of(fval)?;
                        let k2 = k.clone();
                        s.spec_list(
                            args,
                            0,
                            env2.clone(),
                            Vec::new(),
                            Arc::new(move |s, argvals| {
                                let mut fv = ftr.fv.clone();
                                let mut trivs = Vec::with_capacity(argvals.len());
                                for a in argvals {
                                    let r = s.triv_of(a)?;
                                    fv.union_with(&r.fv);
                                    trivs.push(r.triv);
                                }
                                let serious = s.builder.call(ftr.triv.clone(), trivs);
                                s.deliver_serious(&k2, serious, fv)
                            }),
                        )
                    }),
                )
            }
            GenInstr::Prim { prim, args } => {
                let p = *prim;
                let args: &'p [u32] = args;
                let k2 = k;
                self.spec_list(
                    args,
                    0,
                    env.clone(),
                    Vec::new(),
                    Arc::new(move |s, argvals| {
                        // `procedure?` is the one primitive meaningful on
                        // specialization-time procedures.
                        if p == Prim::ProcedureP
                            && matches!(argvals[0], SVal::Clo(_) | SVal::FnRef(_))
                        {
                            return s.apply_kont(&k2, SVal::Data(Datum::Bool(true)));
                        }
                        // A "static" primitive can receive residual code
                        // downstream of a residualized `error` path; fall
                        // back to a residual application.
                        if argvals.iter().any(|v| matches!(v, SVal::Dyn(_))) {
                            let mut fv = SymSet::new();
                            let mut trivs = Vec::with_capacity(argvals.len());
                            for a in argvals {
                                let r = s.triv_of(a)?;
                                fv.union_with(&r.fv);
                                trivs.push(r.triv);
                            }
                            let serious = s.builder.prim(p, trivs);
                            return s.deliver_serious(&k2, serious, fv);
                        }
                        let mut data = Vec::with_capacity(argvals.len());
                        for v in &argvals {
                            match v {
                                SVal::Data(d) => data.push(d.clone()),
                                SVal::Clo(c) => {
                                    let name = s.lam(c.lam)?.name;
                                    return Err(PeError::StaticPrim {
                                        prim: p,
                                        error: PrimError::TypeError {
                                            prim: p,
                                            expected: "first-order data",
                                            got: format!("#<closure {name}>"),
                                        },
                                    });
                                }
                                SVal::FnRef(g) => {
                                    let name = s.def(*g)?.name;
                                    return Err(PeError::StaticPrim {
                                        prim: p,
                                        error: PrimError::TypeError {
                                            prim: p,
                                            expected: "first-order data",
                                            got: format!("#<procedure {name}>"),
                                        },
                                    });
                                }
                                SVal::Dyn(_) => {
                                    return Err(PeError::Internal(format!(
                                        "dynamic argument to static `{p}`"
                                    )))
                                }
                            }
                        }
                        match apply_prim_datum(p, &data) {
                            Ok(d) => s.apply_kont(&k2, SVal::Data(d)),
                            // A static primitive fault under dynamic
                            // control must not abort specialization: the
                            // branch may be unreachable at run time.
                            // Residualize it — the fault then occurs at run
                            // time exactly when the code is executed.
                            Err(_) => {
                                let mut trivs = Vec::with_capacity(data.len());
                                for d in &data {
                                    trivs.push(s.builder.const_(d));
                                }
                                let serious = s.builder.prim(p, trivs);
                                s.deliver_serious(&k2, serious, SymSet::new())
                            }
                        }
                    }),
                )
            }
            GenInstr::PrimD { prim, args } => {
                let p = *prim;
                let args: &'p [u32] = args;
                let k2 = k;
                self.spec_list(
                    args,
                    0,
                    env.clone(),
                    Vec::new(),
                    Arc::new(move |s, argvals| {
                        let mut fv = SymSet::new();
                        let mut trivs = Vec::with_capacity(argvals.len());
                        for a in argvals {
                            let r = s.triv_of(a)?;
                            fv.union_with(&r.fv);
                            trivs.push(r.triv);
                        }
                        let serious = s.builder.prim(p, trivs);
                        s.deliver_serious(&k2, serious, fv)
                    }),
                )
            }
        }
    }

    /// Specializes a list of staged expressions left to right.
    fn spec_list(
        &mut self,
        args: &'p [u32],
        i: usize,
        env: PEnv<B>,
        acc: Vec<SVal<B>>,
        k: Arc<ListKontFn<'p, B>>,
    ) -> Result<RCode<B>, PeError> {
        if i == args.len() {
            return k.clone()(self, acc);
        }
        let arg = args[i];
        self.spec(
            arg,
            &env.clone(),
            Kont::op(move |s, v| {
                let mut acc2 = acc.clone();
                acc2.push(v);
                s.spec_list(args, i + 1, env.clone(), acc2, k.clone())
            }),
        )
    }

    // ----- application --------------------------------------------------

    fn apply(
        &mut self,
        fval: SVal<B>,
        args: Vec<SVal<B>>,
        k: Kont<'p, B>,
    ) -> Result<RCode<B>, PeError> {
        match fval {
            SVal::Clo(c) => {
                let lam = self.lam(c.lam)?;
                self.unfold(&lam.name, &lam.params, lam.body, c.env.clone(), args, k)
            }
            SVal::FnRef(g) => {
                let def = self.def(g)?;
                // A top-level call is a *recoverable* position: if a
                // resource limit fires while processing it (or anywhere
                // downstream, since the continuation is woven into the
                // callee's specialization), the call is residualized
                // against the generic version of the callee instead.
                let saved = if self.fallback {
                    Some((args.clone(), k.clone()))
                } else {
                    None
                };
                let attempt = if def.memoize {
                    self.memo_call(g, def, args, k)
                } else {
                    let params: Vec<Symbol> = def.params.iter().map(|p| p.name).collect();
                    self.unfold(&def.name, &params, def.body, PEnv::empty(), args, k)
                };
                match (attempt, saved) {
                    (Err(e), Some((args, k))) if e.is_recoverable() => {
                        self.stats.note_fallback(&e);
                        self.generic_call(g, def, args, &k)
                    }
                    (r, _) => r,
                }
            }
            SVal::Dyn(r) => {
                // The operator turned out to be residual code (conservative
                // annotation): emit a residual call.
                let mut fv = r.fv.clone();
                let mut trivs = Vec::with_capacity(args.len());
                for a in args {
                    let t = self.triv_of(a)?;
                    fv.union_with(&t.fv);
                    trivs.push(t.triv);
                }
                let serious = self.builder.call(r.triv, trivs);
                self.deliver_serious(&k, serious, fv)
            }
            SVal::Data(d) => Err(PeError::NotAProcedure(d.to_string())),
        }
    }

    /// β-reduction at specialization time: bind the arguments and
    /// specialize the body. Heavyweight dynamic arguments (compiled
    /// lambdas) are let-bound first so unfolding never duplicates code.
    fn unfold(
        &mut self,
        name: &Symbol,
        params: &[Symbol],
        body: u32,
        base_env: PEnv<B>,
        args: Vec<SVal<B>>,
        k: Kont<'p, B>,
    ) -> Result<RCode<B>, PeError> {
        if params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name: *name,
                expected: params.len(),
                got: args.len(),
            });
        }
        self.check_call_limits()?;
        if self.fuel == 0 {
            return Err(PeError::UnfoldLimit(self.stats.unfolds));
        }
        self.fuel -= 1;
        self.stats.unfolds += 1;
        // Strided: one per-unfold trace event would flood the bounded ring
        // (and cost a clock read per unfold on the hottest loop). The
        // detail word carries the running total so the trace still shows
        // unfold progress.
        if self.stats.unfolds % 256 == 1 {
            two4one_obs::event_with(two4one_obs::EventKind::Unfold, self.stats.unfolds);
        }
        let mut rebinds: Vec<(Symbol, Resid<B::Triv>)> = Vec::new();
        let mut binds = Vec::with_capacity(params.len());
        for (p, a) in params.iter().zip(args) {
            match a {
                SVal::Dyn(r) if !r.simple => {
                    let fresh = self.gensym.fresh(p.as_str());
                    let var = self.dyn_var(&fresh);
                    binds.push((*p, var));
                    rebinds.push((fresh, r));
                }
                other => {
                    binds.push((*p, other));
                }
            }
        }
        let env = base_env.extend_many(binds);
        let mut r = self.spec(body, &env, k)?;
        for (x, triv) in rebinds.into_iter().rev() {
            let mut fv = r.fv.without(&x);
            fv.union_with(&triv.fv);
            r = RCode {
                code: self.builder.let_triv(&x, triv.triv, r.code),
                fv,
            };
        }
        Ok(r)
    }

    // ----- resource checks ----------------------------------------------

    /// Limit checks performed at every call: wall-clock deadline and
    /// emitted-code cap. Both are recoverable at a call boundary.
    /// Suspended while emitting a generic fallback body, which must be
    /// allowed to finish (it is linear in the source program).
    fn check_call_limits(&self) -> Result<(), PeError> {
        if self.in_generic {
            return Ok(());
        }
        self.deadline.check().map_err(PeError::Limit)?;
        if self.builder.code_size() > self.code_cap {
            return Err(PeError::Limit(LimitExceeded {
                kind: LimitKind::CodeSize,
                limit: self.code_cap as u64,
            }));
        }
        Ok(())
    }

    // ----- memoization ---------------------------------------------------

    /// Returns the residual name for `def` specialized to `statics`
    /// (whose key projection the caller has already computed), scheduling
    /// the specialization if it is new.
    ///
    /// # Errors
    ///
    /// [`LimitKind::MemoEntries`] if scheduling a *new* specialization
    /// point would exceed the memo-table cap (hits on existing entries
    /// always succeed).
    fn memo_name(
        &mut self,
        def_idx: u32,
        def: &'p GenDef,
        keys: Vec<StaticKey>,
        statics: Vec<SVal<B>>,
    ) -> Result<Symbol, PeError> {
        let key = MemoKey::new(def.name, keys);
        if let Some(name) = self.cache.get(&key) {
            self.stats.memo_hits += 1;
            two4one_obs::event(two4one_obs::EventKind::MemoHit);
            return Ok(*name);
        }
        if self.cache.len() >= self.memo_cap {
            return Err(PeError::Limit(LimitExceeded {
                kind: LimitKind::MemoEntries,
                limit: self.memo_cap as u64,
            }));
        }
        self.stats.memo_misses += 1;
        two4one_obs::event(two4one_obs::EventKind::MemoMiss);
        let res_name = self.gensym.fresh(def.name.as_str());
        self.cache.insert(key, res_name);
        self.pending.push_back(Pending {
            def: def_idx,
            res_name,
            statics,
        });
        Ok(res_name)
    }

    fn memo_call(
        &mut self,
        def_idx: u32,
        def: &'p GenDef,
        args: Vec<SVal<B>>,
        k: Kont<'p, B>,
    ) -> Result<RCode<B>, PeError> {
        if def.params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name: def.name,
                expected: def.params.len(),
                got: args.len(),
            });
        }
        self.check_call_limits()?;
        let mut statics = Vec::new();
        let mut keys = Vec::new();
        let mut dyns: Vec<Resid<B::Triv>> = Vec::new();
        for (p, a) in def.params.iter().zip(args) {
            if p.dynamic {
                dyns.push(self.triv_of(a)?);
            } else {
                match a {
                    SVal::Data(ref d) => {
                        keys.push(StaticKey::Data(d.clone()));
                        statics.push(a);
                    }
                    SVal::FnRef(g) => {
                        // Keyed by the *source* name of the referenced
                        // definition so walker and gen-ext machine agree.
                        keys.push(StaticKey::Fn(self.def(g)?.name));
                        statics.push(a);
                    }
                    SVal::Clo(_) => return Err(PeError::ClosureInMemoKey(def.name)),
                    SVal::Dyn(_) => {
                        return Err(PeError::Internal(format!(
                            "dynamic argument for static parameter `{}` of `{}`",
                            p.name, def.name
                        )))
                    }
                }
            }
        }
        let res_name = self.memo_name(def_idx, def, keys, statics)?;
        let mut fv = SymSet::new();
        let mut trivs = Vec::with_capacity(dyns.len());
        for r in dyns {
            fv.union_with(&r.fv);
            trivs.push(r.triv);
        }
        let serious = self.builder.call_global(&res_name, trivs);
        self.deliver_serious(&k, serious, fv)
    }

    /// Processes the pending queues: one residual definition per distinct
    /// specialization point, plus at most one generic definition per
    /// source function requested by fallbacks.
    fn drain_pending(&mut self) -> Result<(), PeError> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                self.spec_pending(p)?;
            } else if let Some((def_idx, res_name)) = self.pending_generic.pop_front() {
                self.spec_generic(def_idx, &res_name)?;
            } else {
                return Ok(());
            }
        }
    }

    fn spec_pending(&mut self, p: Pending<B>) -> Result<(), PeError> {
        let def = self.def(p.def)?;
        let mut fresh_params = Vec::new();
        let mut statics = p.statics.into_iter();
        let mut binds = Vec::with_capacity(def.params.len());
        for param in &def.params {
            if param.dynamic {
                let fresh = self.gensym.fresh(param.name.as_str());
                let var = self.dyn_var(&fresh);
                binds.push((param.name, var));
                fresh_params.push(fresh);
            } else {
                let v = statics
                    .next()
                    .ok_or_else(|| PeError::Internal("static argument count drift".into()))?;
                binds.push((param.name, v));
            }
        }
        let env = PEnv::<B>::empty().extend_many(binds);
        let body = match self.spec(def.body, &env, Kont::Tail) {
            Ok(b) => b,
            Err(e) if self.fallback && e.is_recoverable() => {
                self.stats.note_fallback(&e);
                self.spec_generic_body(def, &env)?
            }
            Err(e) => return Err(e),
        };
        debug_assert!(
            body.fv.iter().all(|v| fresh_params.contains(v)),
            "residual `{}` not closed: free {:?}",
            p.res_name,
            body.fv
        );
        self.builder.define(&p.res_name, &fresh_params, body.code);
        self.stats.residual_defs += 1;
        Ok(())
    }

    // ----- graceful fallback --------------------------------------------

    /// Returns the name of the generic (all-dynamic) residual version of
    /// `def`, scheduling its emission if this is the first request. At
    /// most one generic version exists per source function, so fallback
    /// cannot itself grow without bound.
    fn generic_name(&mut self, def_idx: u32, def: &'p GenDef) -> Symbol {
        if let Some(n) = self.generic.get(&def.name) {
            return *n;
        }
        let res_name = self.gensym.fresh(&format!("{}-generic", def.name));
        self.generic.insert(def.name, res_name);
        self.pending_generic.push_back((def_idx, res_name));
        res_name
    }

    /// Residualizes a call against the generic version of `def` — the
    /// graceful-degradation path taken when a recoverable resource limit
    /// fires at (or downstream of) a top-level call. All arguments,
    /// static ones included, are lifted to residual trivials and passed
    /// at run time.
    fn generic_call(
        &mut self,
        def_idx: u32,
        def: &'p GenDef,
        args: Vec<SVal<B>>,
        k: &Kont<'p, B>,
    ) -> Result<RCode<B>, PeError> {
        if def.params.len() != args.len() {
            return Err(PeError::ArityMismatch {
                name: def.name,
                expected: def.params.len(),
                got: args.len(),
            });
        }
        let name = self.generic_name(def_idx, def);
        let mut fv = SymSet::new();
        let mut trivs = Vec::with_capacity(args.len());
        for a in args {
            let r = self.triv_of(a)?;
            fv.union_with(&r.fv);
            trivs.push(r.triv);
        }
        let serious = self.builder.call_global(&name, trivs);
        self.deliver_serious(k, serious, fv)
    }

    /// Emits the generic body of `def` under `env`. The stager has
    /// already staged the all-dynamic version of every definition body
    /// (at [`GenDef::generic`]), so specialization degenerates to a
    /// single structural pass that residualizes everything — equivalent
    /// to compiling the source unspecialized. Static values already in
    /// `env` are lifted to constants at their use sites.
    fn spec_generic_body(&mut self, def: &'p GenDef, env: &PEnv<B>) -> Result<RCode<B>, PeError> {
        let was = self.in_generic;
        self.in_generic = true;
        let r = self.spec(def.generic, env, Kont::Tail);
        self.in_generic = was;
        r
    }

    /// Emits one scheduled generic definition: all parameters dynamic,
    /// body fully residualized.
    fn spec_generic(&mut self, def_idx: u32, res_name: &Symbol) -> Result<(), PeError> {
        let def = self.def(def_idx)?;
        let mut fresh_params = Vec::new();
        let mut binds = Vec::with_capacity(def.params.len());
        for param in &def.params {
            let fresh = self.gensym.fresh(param.name.as_str());
            let var = self.dyn_var(&fresh);
            binds.push((param.name, var));
            fresh_params.push(fresh);
        }
        let env = PEnv::<B>::empty().extend_many(binds);
        let body = self.spec_generic_body(def, &env)?;
        debug_assert!(
            body.fv.iter().all(|v| fresh_params.contains(v)),
            "generic `{res_name}` not closed: free {:?}",
            body.fv
        );
        self.builder.define(res_name, &fresh_params, body.code);
        self.stats.residual_defs += 1;
        self.stats.generic_defs += 1;
        Ok(())
    }
}
