//! Cross-crate pipeline tests: front end → ANF → byte code → VM, checked
//! against the tree-walking interpreter on a suite of realistic programs.

use two4one::{compile, interpret, run_image, with_stack, Datum, Pgg};

/// Programs exercising the whole language surface. Each entry is
/// `(source, entry, args, expected)`; `expected = None` means "whatever the
/// interpreter says".
fn suite() -> Vec<(&'static str, &'static str, Vec<Datum>, Option<&'static str>)> {
    fn d(s: &str) -> Datum {
        two4one::reader::read_one(s).unwrap()
    }
    vec![
        (
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            "fib",
            vec![Datum::Int(15)],
            Some("610"),
        ),
        (
            "(define (map1 f xs) (if (null? xs) '() (cons (f (car xs)) (map1 f (cdr xs)))))
             (define (main xs) (map1 (lambda (x) (* x x)) xs))",
            "main",
            vec![d("(1 2 3 4)")],
            Some("(1 4 9 16)"),
        ),
        (
            "(define (foldl f acc xs) (if (null? xs) acc (foldl f (f acc (car xs)) (cdr xs))))
             (define (main xs) (foldl (lambda (a b) (+ a b)) 0 xs))",
            "main",
            vec![d("(10 20 30)")],
            Some("60"),
        ),
        (
            // Mutual recursion through letrec + named let.
            "(define (main n)
               (letrec ((even? (lambda (i) (if (= i 0) #t (odd? (- i 1)))))
                        (odd? (lambda (i) (if (= i 0) #f (even? (- i 1))))))
                 (let loop ((i 0) (acc '()))
                   (if (> i n) (reverse acc)
                       (loop (+ i 1) (cons (even? i) acc))))))",
            "main",
            vec![Datum::Int(4)],
            Some("(#t #f #t #f #t)"),
        ),
        (
            // Closures with mutation.
            "(define (make-acc init)
               (lambda (amount) (set! init (+ init amount)) init))
             (define (main)
               (let ((acc (make-acc 100)))
                 (acc 10)
                 (acc 20)
                 (acc 0)))",
            "main",
            vec![],
            Some("130"),
        ),
        (
            // Association lists and symbols.
            "(define (env-get k env) (cdr (assq k env)))
             (define (main)
               (let ((env `((a . 1) (b . 2) (c . ,(+ 1 2)))))
                 (list (env-get 'c env) (env-get 'a env))))",
            "main",
            vec![],
            Some("(3 1)"),
        ),
        (
            // Strings and case.
            "(define (kind x)
               (case x
                 ((1 2 3) \"small\")
                 ((10) \"ten\")
                 (else \"other\")))
             (define (main) (list (kind 2) (kind 10) (kind 99)))",
            "main",
            vec![],
            Some("(\"small\" \"ten\" \"other\")"),
        ),
        (
            // Deep tail loop: must run in constant space on the VM.
            "(define (main n) (let loop ((i n) (acc 0)) (if (= i 0) acc (loop (- i 1) (+ acc i)))))",
            "main",
            vec![Datum::Int(100000)],
            Some("5000050000"),
        ),
        (
            // and/or/when/unless/begin coverage.
            "(define (main x)
               (begin
                 (when (> x 0) (display \"pos\"))
                 (unless (> x 0) (display \"neg\"))
                 (list (and (> x 0) (* x 2)) (or (< x 0) 'fine))))",
            "main",
            vec![Datum::Int(5)],
            Some("(10 fine)"),
        ),
    ]
}

#[test]
fn vm_agrees_with_interpreter_on_suite() {
    with_stack(|| {
        let pgg = Pgg::new();
        for (src, entry, args, expected) in suite() {
            let p = pgg.parse(src).unwrap();
            let i = interpret(&p, entry, &args).unwrap();
            let image = compile(&p, entry).unwrap();
            let v = run_image(&image, entry, &args).unwrap();
            assert_eq!(v.value, i.value, "value mismatch for {entry}: {src}");
            assert_eq!(v.output, i.output, "output mismatch for {entry}");
            if let Some(exp) = expected {
                assert_eq!(v.value.to_string(), exp, "{src}");
            }
        }
    });
}

#[test]
fn generic_compiler_agrees_on_suite() {
    // The uncut, compile-time-continuation compiler is an independent
    // implementation; it must agree with the interpreter everywhere the
    // ANF pipeline does.
    with_stack(|| {
        let pgg = Pgg::new();
        for (src, entry, args, _) in suite() {
            let p = pgg.parse(src).unwrap();
            let i = interpret(&p, entry, &args).unwrap();
            let image = two4one_compiler::compile_program_generic(&p, entry).unwrap();
            let v = run_image(&image, entry, &args).unwrap();
            assert_eq!(v.value, i.value, "generic value mismatch: {src}");
            assert_eq!(v.output, i.output, "generic output mismatch: {src}");
        }
    });
}

#[test]
fn peephole_preserves_behavior_on_suite() {
    with_stack(|| {
        let pgg = Pgg::new();
        for (src, entry, args, _) in suite() {
            let p = pgg.parse(src).unwrap();
            // The generic compiler produces the jump chains peephole
            // exists for; check both pipelines.
            for image in [
                compile(&p, entry).unwrap(),
                two4one_compiler::compile_program_generic(&p, entry).unwrap(),
            ] {
                let optimized = two4one::optimize_image(&image);
                assert!(
                    optimized.code_size() <= image.code_size(),
                    "peephole grew code: {src}"
                );
                let a = run_image(&image, entry, &args).unwrap();
                let b = run_image(&optimized, entry, &args).unwrap();
                assert_eq!(a, b, "{src}");
            }
        }
    });
}

#[test]
fn object_files_round_trip_on_suite() {
    with_stack(|| {
        let pgg = Pgg::new();
        for (src, entry, args, _) in suite() {
            let p = pgg.parse(src).unwrap();
            let image = compile(&p, entry).unwrap();
            let loaded = two4one::decode_image(&two4one::encode_image(&image)).unwrap();
            let a = run_image(&image, entry, &args).unwrap();
            let b = run_image(&loaded, entry, &args).unwrap();
            assert_eq!(a, b, "{src}");
        }
    });
}

#[test]
fn runtime_errors_agree_in_kind() {
    with_stack(|| {
        let pgg = Pgg::new();
        for src in [
            "(define (main) (car 5))",
            "(define (main) (1 2))",
            "(define (f x) x) (define (main) (f))",
            "(define (main) (error \"deliberate\" 1))",
            "(define (main) (quotient 1 0))",
        ] {
            let p = pgg.parse(src).unwrap();
            let i = interpret(&p, "main", &[]);
            let image = compile(&p, "main").unwrap();
            let v = run_image(&image, "main", &[]);
            assert!(i.is_err(), "{src}");
            assert!(v.is_err(), "{src}");
        }
    });
}

#[test]
fn disassembly_is_printable() {
    let pgg = Pgg::new();
    let p = pgg.parse("(define (f x) (if x (f (cdr x)) '()))").unwrap();
    let image = compile(&p, "f").unwrap();
    let text = image.disassemble();
    assert!(text.contains("jump-if-false"), "{text}");
    assert!(text.contains("tail-call"), "{text}");
    assert!(image.code_size() > 5);
}

#[test]
fn residual_source_is_loadable_source_text() {
    // Full circle: specialize → print → re-read → compile → run.
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")
            .unwrap();
        let genext = pgg
            .cogen(
                &p,
                "power",
                &two4one::Division::new([two4one::BT::Dynamic, two4one::BT::Static]),
            )
            .unwrap();
        let residual = genext.specialize_source(&[Datum::Int(6)]).unwrap();
        let image = two4one::compile_source_text(&residual.to_source(), "power").unwrap();
        let out = run_image(&image, "power", &[Datum::Int(2)]).unwrap();
        assert_eq!(out.value, Datum::Int(64));
    });
}
