//! Crash-safe cache snapshots (`.t4os` files).
//!
//! Format, following the object-file discipline (magic, version, CRC-32,
//! length-validated decode):
//!
//! ```text
//! magic   8 bytes   "t4osnap\0"
//! version u32 LE    3
//! count   u32 LE    number of records that follow
//! record  ×count:
//!   len   u32 LE    payload length in bytes
//!   crc   u32 LE    CRC-32 (IEEE) of the payload
//!   payload:
//!     program  u32 len + UTF-8     (rendered annotated program + options)
//!     entry    u32 len + UTF-8
//!     statics  u32 len + UTF-8     (rendered static arguments)
//!     name     u32 len + UTF-8     (logical registry name; "" = anonymous)
//!     epoch    u64 LE              (registration epoch; 0 = anonymous)
//!     stats    6 × u64 LE + 1 tag byte (fallback kind, 0 = none)
//!     image    u32 len + VERSION=2 object-file bytes (self-checksummed)
//! ```
//!
//! VERSION=3 added the `name`/`epoch` backedge so restore can judge a
//! record against the live registry (see
//! [`SpecService::restore_bytes`](crate::SpecService::restore_bytes)).
//! Earlier snapshot versions quarantine wholesale at the header check —
//! they cannot say what their entries were derived from.
//!
//! Decoding never panics and never fails as a whole (except that a bad
//! header quarantines the entire file): each record is independently
//! CRC-checked and length-validated, a corrupt record is skipped and
//! counted, and a torn final record (crash mid-write) truncates cleanly —
//! the missing records are counted as quarantined. Every length read is
//! bounded by the bytes actually remaining, so a corrupted length field
//! cannot cause an oversized allocation.

use std::sync::Arc;

use two4one::{decode_image, encode_image, Image, LimitKind, SpecStats};

const MAGIC: &[u8; 8] = b"t4osnap\0";
const VERSION: u32 = 3;
const HEADER_LEN: usize = 8 + 4 + 4;

/// One cache entry in transit between the shard map and a snapshot file.
#[derive(Debug)]
pub(crate) struct SnapRecord {
    pub(crate) program: String,
    pub(crate) entry: String,
    pub(crate) statics: String,
    /// Logical registry name the entry was specialized under; empty for
    /// anonymous entries.
    pub(crate) name: String,
    /// Registration epoch of the backedge; 0 for anonymous entries.
    pub(crate) epoch: u64,
    pub(crate) stats: SpecStats,
    pub(crate) image: Arc<Image>,
}

/// What a decode pass recovered.
#[derive(Debug, Default)]
pub(crate) struct DecodeOutcome {
    pub(crate) records: Vec<SnapRecord>,
    /// Records (or whole-file structures) rejected: CRC mismatch, torn
    /// tail, bad header, undecodable payload, trailing garbage.
    pub(crate) quarantined: u64,
}

// ---- CRC-32 (IEEE 802.3, reflected — same discipline as .t4o files) ----

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for b in bytes {
        crc ^= u32::from(*b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ---- encoding ----------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn kind_tag(kind: Option<LimitKind>) -> u8 {
    match kind {
        None => 0,
        Some(LimitKind::Deadline) => 1,
        Some(LimitKind::Cancelled) => 2,
        Some(LimitKind::StepFuel) => 3,
        Some(LimitKind::UnfoldFuel) => 4,
        Some(LimitKind::Depth) => 5,
        Some(LimitKind::MemoEntries) => 6,
        Some(LimitKind::CodeSize) => 7,
        Some(LimitKind::InputNodes) => 8,
        Some(LimitKind::InputDepth) => 9,
    }
}

fn kind_from_tag(tag: u8) -> Option<Option<LimitKind>> {
    Some(match tag {
        0 => None,
        1 => Some(LimitKind::Deadline),
        2 => Some(LimitKind::Cancelled),
        3 => Some(LimitKind::StepFuel),
        4 => Some(LimitKind::UnfoldFuel),
        5 => Some(LimitKind::Depth),
        6 => Some(LimitKind::MemoEntries),
        7 => Some(LimitKind::CodeSize),
        8 => Some(LimitKind::InputNodes),
        9 => Some(LimitKind::InputDepth),
        _ => return None,
    })
}

fn encode_record(r: &SnapRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    put_str(&mut payload, &r.program);
    put_str(&mut payload, &r.entry);
    put_str(&mut payload, &r.statics);
    put_str(&mut payload, &r.name);
    payload.extend_from_slice(&r.epoch.to_le_bytes());
    for n in [
        r.stats.unfolds,
        r.stats.memo_hits,
        r.stats.memo_misses,
        r.stats.residual_defs,
        r.stats.fallbacks,
        r.stats.generic_defs,
    ] {
        payload.extend_from_slice(&n.to_le_bytes());
    }
    payload.push(kind_tag(r.stats.fallback_kind));
    let image = encode_image(&r.image);
    payload.extend_from_slice(&(image.len() as u32).to_le_bytes());
    payload.extend_from_slice(&image);
    payload
}

/// Encodes a snapshot. Records are written in the order given; the
/// caller sorts them for deterministic output.
pub(crate) fn encode(records: &[SnapRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        let payload = encode_record(r);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

// ---- decoding ----------------------------------------------------------

/// A bounds-checked little-endian reader; every accessor returns `None`
/// instead of running past the end.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.remaining() {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A length-prefixed string; the length is validated against the
    /// bytes actually present before anything is allocated.
    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn parse_record(payload: &[u8]) -> Option<SnapRecord> {
    let mut r = Reader::new(payload);
    let program = r.string()?;
    let entry = r.string()?;
    let statics = r.string()?;
    let name = r.string()?;
    let epoch = r.u64()?;
    let stats = SpecStats {
        unfolds: r.u64()?,
        memo_hits: r.u64()?,
        memo_misses: r.u64()?,
        residual_defs: r.u64()?,
        fallbacks: r.u64()?,
        generic_defs: r.u64()?,
        fallback_kind: kind_from_tag(r.u8()?)?,
    };
    let image_len = r.u32()? as usize;
    let image_bytes = r.take(image_len)?;
    let image = decode_image(image_bytes).ok()?;
    if r.remaining() != 0 {
        // Trailing garbage inside a CRC-valid payload: structurally
        // impossible for files we wrote, so treat it as corruption.
        return None;
    }
    Some(SnapRecord {
        program,
        entry,
        statics,
        name,
        epoch,
        stats,
        image: Arc::new(image),
    })
}

/// Decodes a snapshot, recovering every intact record and quarantining
/// the rest. Never panics, never allocates beyond the input size.
pub(crate) fn decode(bytes: &[u8]) -> DecodeOutcome {
    let mut out = DecodeOutcome::default();
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != MAGIC
        || u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) != VERSION
    {
        // Bad header: nothing in the file can be trusted.
        out.quarantined = 1;
        return out;
    }
    let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as u64;
    let mut r = Reader::new(&bytes[HEADER_LEN..]);
    let mut seen: u64 = 0;
    while seen < count {
        let header = match (r.u32(), r.u32()) {
            (Some(len), Some(crc)) => Some((len as usize, crc)),
            // Torn tail: the crash hit mid-record-header. Everything the
            // count still promised is gone.
            _ => None,
        };
        let Some((len, crc)) = header else {
            out.quarantined += count - seen;
            return out;
        };
        let Some(payload) = r.take(len) else {
            // Torn tail: the final record was cut short mid-payload.
            out.quarantined += count - seen;
            return out;
        };
        seen += 1;
        if crc32(payload) != crc {
            out.quarantined += 1;
            continue;
        }
        match parse_record(payload) {
            Some(rec) => out.records.push(rec),
            None => out.quarantined += 1,
        }
    }
    if r.remaining() != 0 {
        // More bytes than the count admits: the count (or the tail) is
        // corrupt. The parsed records are individually CRC-valid and
        // kept; the excess is flagged.
        out.quarantined += 1;
    }
    out
}

// ---- gen-ext snapshots (`.t4og` containers) ----------------------------
//
// The same discipline as the `.t4os` cache snapshot, but the payload is a
// compiled generating extension (the staged-code IR in its `.t4og` wire
// form, itself self-checksummed) instead of a residual image. Records
// carry the registration facts restore needs to judge them against the
// live registry: the logical name, the *source* extension's cache
// identity and entry (what `Registry::epoch_for_identity` compares), and
// the epoch the artifact was built under (informational — epochs are
// per-process, identity is what travels).

const GENEXT_MAGIC: &[u8; 8] = b"t4ogsnp\0";
const GENEXT_VERSION: u32 = 1;

/// One compiled gen-ext in transit between the registry and a snapshot.
#[derive(Debug)]
pub(crate) struct GenextSnapRecord {
    pub(crate) name: String,
    /// Cache identity of the *source* [`GenExt`](two4one::GenExt) the
    /// artifact was compiled from (rendered annotated program + options).
    pub(crate) identity: String,
    pub(crate) entry: String,
    pub(crate) epoch: u64,
    /// The `.t4og` wire form of the staged program.
    pub(crate) genext: Vec<u8>,
}

/// What a gen-ext snapshot decode recovered.
#[derive(Debug, Default)]
pub(crate) struct GenextDecodeOutcome {
    pub(crate) records: Vec<GenextSnapRecord>,
    pub(crate) quarantined: u64,
}

fn encode_genext_record(r: &GenextSnapRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    put_str(&mut payload, &r.name);
    put_str(&mut payload, &r.identity);
    put_str(&mut payload, &r.entry);
    payload.extend_from_slice(&r.epoch.to_le_bytes());
    payload.extend_from_slice(&(r.genext.len() as u32).to_le_bytes());
    payload.extend_from_slice(&r.genext);
    payload
}

/// Encodes a gen-ext snapshot; the caller sorts records for determinism.
pub(crate) fn encode_genexts(records: &[GenextSnapRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(GENEXT_MAGIC);
    out.extend_from_slice(&GENEXT_VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        let payload = encode_genext_record(r);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

fn parse_genext_record(payload: &[u8]) -> Option<GenextSnapRecord> {
    let mut r = Reader::new(payload);
    let name = r.string()?;
    let identity = r.string()?;
    let entry = r.string()?;
    let epoch = r.u64()?;
    let len = r.u32()? as usize;
    let genext = r.take(len)?.to_vec();
    if r.remaining() != 0 {
        return None;
    }
    Some(GenextSnapRecord {
        name,
        identity,
        entry,
        epoch,
        genext,
    })
}

/// Decodes a gen-ext snapshot with the same recovery semantics as
/// [`decode`]: bad header quarantines the file, bad records are skipped
/// and counted, a torn tail truncates cleanly.
pub(crate) fn decode_genexts(bytes: &[u8]) -> GenextDecodeOutcome {
    let mut out = GenextDecodeOutcome::default();
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != GENEXT_MAGIC
        || u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) != GENEXT_VERSION
    {
        out.quarantined = 1;
        return out;
    }
    let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as u64;
    let mut r = Reader::new(&bytes[HEADER_LEN..]);
    let mut seen: u64 = 0;
    while seen < count {
        let header = match (r.u32(), r.u32()) {
            (Some(len), Some(crc)) => Some((len as usize, crc)),
            _ => None,
        };
        let Some((len, crc)) = header else {
            out.quarantined += count - seen;
            return out;
        };
        let Some(payload) = r.take(len) else {
            out.quarantined += count - seen;
            return out;
        };
        seen += 1;
        if crc32(payload) != crc {
            out.quarantined += 1;
            continue;
        }
        match parse_genext_record(payload) {
            Some(rec) => out.records.push(rec),
            None => out.quarantined += 1,
        }
    }
    if r.remaining() != 0 {
        out.quarantined += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one::{Image, Symbol};

    fn record(tag: &str) -> SnapRecord {
        SnapRecord {
            program: format!("(define (f x) {tag})"),
            entry: "f".to_string(),
            statics: "(1 2)".to_string(),
            name: String::new(),
            epoch: 0,
            stats: SpecStats {
                unfolds: 7,
                fallback_kind: Some(LimitKind::UnfoldFuel),
                ..SpecStats::default()
            },
            image: Arc::new(Image {
                templates: Vec::new(),
                entry: Symbol::new("f"),
            }),
        }
    }

    fn named_record(name: &str, epoch: u64) -> SnapRecord {
        SnapRecord {
            name: name.to_string(),
            epoch,
            ..record(name)
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let records = vec![record("a"), record("b"), named_record("p", 3)];
        let bytes = encode(&records);
        let out = decode(&bytes);
        assert_eq!(out.quarantined, 0);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].program, records[0].program);
        assert_eq!(out.records[0].stats, records[0].stats);
        assert_eq!(out.records[2].name, "p");
        assert_eq!(out.records[2].epoch, 3);
        // Re-encoding reproduces the bytes exactly.
        assert_eq!(encode(&out.records), bytes);
    }

    #[test]
    fn older_snapshot_version_quarantines_wholesale() {
        // A VERSION=2 snapshot has no backedges — nothing in it can be
        // judged against the live registry, so the whole file is
        // rejected at the header, not record by record.
        let mut bytes = encode(&[record("a"), record("b")]);
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let out = decode(&bytes);
        assert_eq!(out.quarantined, 1);
        assert!(out.records.is_empty());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode(&[]);
        let out = decode(&bytes);
        assert_eq!(out.quarantined, 0);
        assert!(out.records.is_empty());
    }

    #[test]
    fn bad_header_quarantines_whole_file() {
        assert_eq!(decode(b"").quarantined, 1);
        assert_eq!(decode(b"not a snapshot at all").quarantined, 1);
        let mut bytes = encode(&[record("a")]);
        bytes[0] ^= 0xff;
        let out = decode(&bytes);
        assert_eq!(out.quarantined, 1);
        assert!(out.records.is_empty());
    }

    #[test]
    fn flipped_record_byte_is_quarantined_others_survive() {
        let bytes = encode(&[record("a"), record("b")]);
        // Flip a byte inside the first record's payload (just past the
        // header and record header).
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 8 + 6] ^= 0x40;
        let out = decode(&bad);
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].program, record("b").program);
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let bytes = encode(&[record("a"), record("b")]);
        for cut in [bytes.len() - 1, bytes.len() - 10, HEADER_LEN + 3] {
            let out = decode(&bytes[..cut]);
            assert!(out.quarantined >= 1, "cut at {cut} not quarantined");
            assert!(out.records.len() <= 1);
        }
    }

    #[test]
    fn oversized_length_field_does_not_allocate_or_panic() {
        let mut bytes = encode(&[record("a")]);
        // Claim a 4 GiB record.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let out = decode(&bytes);
        assert!(out.records.is_empty());
        assert_eq!(out.quarantined, 1);
    }

    fn genext_record(name: &str, epoch: u64) -> GenextSnapRecord {
        GenextSnapRecord {
            name: name.to_string(),
            identity: format!("identity-of-{name}"),
            entry: "f".to_string(),
            epoch,
            genext: vec![0xde, 0xad, 0xbe, 0xef, epoch as u8],
        }
    }

    #[test]
    fn genext_snapshot_round_trips() {
        let records = vec![genext_record("p", 1), genext_record("q", 3)];
        let bytes = encode_genexts(&records);
        let out = decode_genexts(&bytes);
        assert_eq!(out.quarantined, 0);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].name, "p");
        assert_eq!(out.records[1].epoch, 3);
        assert_eq!(out.records[1].genext, records[1].genext);
        assert_eq!(encode_genexts(&out.records), bytes);
    }

    #[test]
    fn genext_snapshot_rejects_corruption_per_record() {
        let bytes = encode_genexts(&[genext_record("p", 1), genext_record("q", 2)]);
        // Whole-file: wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_genexts(&bad).quarantined, 1);
        assert!(decode_genexts(&bad).records.is_empty());
        // A cache snapshot is not a gen-ext snapshot.
        assert_eq!(decode_genexts(&encode(&[record("a")])).quarantined, 1);
        // Per-record: flip a payload byte, the other record survives.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 8 + 5] ^= 0x20;
        let out = decode_genexts(&bad);
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].name, "q");
        // Torn tail truncates cleanly.
        let out = decode_genexts(&bytes[..bytes.len() - 3]);
        assert!(out.quarantined >= 1);
        assert_eq!(out.records.len(), 1);
    }
}
