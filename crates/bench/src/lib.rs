//! Shared harness for the paper-reproduction benchmarks (Sec. 7).
//!
//! The paper's measurements (Pentium/90, Scheme 48 0.46, seconds,
//! cumulative over many runs) cannot be matched in absolute terms; what
//! must reproduce is the *shape*: which configuration wins and by roughly
//! what factor. The [`paper`] module records the published numbers so the
//! `tables` binary can print them next to measured values.

use std::time::{Duration, Instant};
use two4one::{with_stack, CallPolicy, Datum, Division, GenExt, Pgg, BT};
use two4one_langs as langs;

pub mod harness;

/// A benchmark subject: an interpreter plus the static program it is
/// specialized over (the paper's MIXWELL and LAZY rows).
pub struct Subject {
    /// Row label.
    pub name: &'static str,
    /// The interpreter source.
    pub interp_src: &'static str,
    /// Its entry point.
    pub entry: &'static str,
    /// Unfold/memoize policies.
    pub policies: Vec<(&'static str, CallPolicy)>,
    /// The static input (the interpreted program).
    pub program: Datum,
    /// A dynamic argument vector for executing residual code.
    pub run_args: Datum,
}

/// The two subjects of Sec. 7.
pub fn subjects() -> Vec<Subject> {
    vec![
        Subject {
            name: "MIXWELL",
            interp_src: langs::MIXWELL_INTERP,
            entry: "mixwell-run",
            policies: langs::mixwell_policies(),
            program: langs::mixwell_program(),
            run_args: Datum::list([Datum::Int(30)]),
        },
        Subject {
            name: "LAZY",
            interp_src: langs::LAZY_INTERP,
            entry: "lazy-run",
            policies: langs::lazy_policies(),
            program: langs::lazy_program(),
            run_args: Datum::list([Datum::Int(3), Datum::Int(12)]),
        },
    ]
}

impl Subject {
    /// The configured PGG for this subject.
    pub fn pgg(&self) -> Pgg {
        self.policies
            .iter()
            .fold(Pgg::new(), |p, (n, pol)| p.policy(n, *pol))
    }

    /// The interpreter as Core Scheme.
    pub fn parsed(&self) -> two4one::cs::Program {
        self.pgg()
            .parse(self.interp_src)
            .expect("interpreter parses")
    }

    /// The generating extension under the compilation division
    /// (program static, input dynamic).
    pub fn genext(&self) -> GenExt {
        self.pgg()
            .cogen(
                &self.parsed(),
                self.entry,
                &Division::new([BT::Static, BT::Dynamic]),
            )
            .expect("cogen")
    }

    /// The generating extension with everything dynamic (Fig. 8's
    /// "normal compilation" mode). The per-function unfold policies are
    /// *not* applied here: they are only meaningful under the compilation
    /// division (with nothing static, unfolding a recursive interpreter
    /// loop would never terminate); the automatic Bondorf rule memoizes
    /// every recursive function with dynamic control instead.
    pub fn genext_all_dynamic(&self) -> GenExt {
        Pgg::new()
            .cogen(&self.parsed(), self.entry, &Division::all_dynamic(2))
            .expect("cogen all-dynamic")
    }
}

/// Times `f()` `reps` times on a large-stack worker thread and returns the
/// minimum duration (the usual noise-robust point estimate).
pub fn time_min<F>(reps: u32, f: F) -> Duration
where
    F: Fn() + Send + 'static,
{
    with_stack(move || {
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed());
        }
        best
    })
}

/// The numbers published in the paper, for side-by-side printing.
pub mod paper {
    /// Fig. 6 "Generation speed" (seconds, cumulative): (source, object).
    pub const FIG6: &[(&str, f64, f64)] = &[("MIXWELL", 3.072, 3.770), ("LAZY", 1.832, 3.451)];

    /// Fig. 8 "Using RTCG for normal compilation":
    /// (name, BTA, Load, Generate, Compile).
    pub const FIG8: &[(&str, f64, f64, f64, f64)] = &[
        ("MIXWELL", 2.730, 4.026, 0.652, 0.964),
        ("LAZY", 2.253, 3.217, 0.568, 0.604),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_build_their_genexts() {
        with_stack(|| {
            for s in subjects() {
                let g = s.genext();
                let img = g
                    .specialize_object(std::slice::from_ref(&s.program))
                    .unwrap();
                assert!(img.code_size() > 0);
                let gd = s.genext_all_dynamic();
                let img = gd.specialize_object(&[]).unwrap();
                assert!(img.code_size() > 0);
            }
        });
    }

    #[test]
    fn time_min_returns_positive() {
        let d = time_min(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }
}
