//! S-expression data: the external representation of programs and the
//! first-order value universe of the partial evaluator.

use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// An s-expression datum.
///
/// `Datum` doubles as (1) the concrete syntax read from source text and
/// (2) the domain of *static* first-order values inside the specializer,
/// which is why it implements `Eq` and `Hash` (memoization keys are tuples
/// of data).
///
/// Only exact integers are supported as numbers; the paper's benchmarks do
/// not require inexact arithmetic.
///
/// # Example
///
/// ```
/// use two4one_syntax::Datum;
/// let d = Datum::list([Datum::from(1), Datum::from(2)]);
/// assert_eq!(d.to_string(), "(1 2)");
/// assert_eq!(d.list_len(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Datum {
    /// The empty list `()`.
    Nil,
    /// The unspecified value (result of one-armed `if`, `set!`, etc.).
    Unspec,
    /// `#t` / `#f`.
    Bool(bool),
    /// An exact integer.
    Int(i64),
    /// A character, written `#\c`.
    Char(char),
    /// An immutable string.
    Str(Arc<str>),
    /// A symbol.
    Sym(Symbol),
    /// A pair.
    Pair(Arc<(Datum, Datum)>),
}

impl Datum {
    /// Constructs a pair.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        Datum::Pair(Arc::new((car, cdr)))
    }

    /// Constructs a proper list from an iterator.
    pub fn list<I>(items: I) -> Datum
    where
        I: IntoIterator<Item = Datum>,
        I::IntoIter: DoubleEndedIterator,
    {
        items
            .into_iter()
            .rev()
            .fold(Datum::Nil, |acc, d| Datum::cons(d, acc))
    }

    /// Constructs a symbol datum.
    pub fn sym(name: &str) -> Datum {
        Datum::Sym(Symbol::new(name))
    }

    /// Constructs a string datum.
    pub fn string(s: &str) -> Datum {
        Datum::Str(Arc::from(s))
    }

    /// The `car` of a pair, if this is a pair.
    pub fn car(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.0),
            _ => None,
        }
    }

    /// The `cdr` of a pair, if this is a pair.
    pub fn cdr(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.1),
            _ => None,
        }
    }

    /// True for `()`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::Nil)
    }

    /// True for a pair.
    pub fn is_pair(&self) -> bool {
        matches!(self, Datum::Pair(_))
    }

    /// True if this datum is a proper list.
    pub fn is_list(&self) -> bool {
        let mut d = self;
        loop {
            match d {
                Datum::Nil => return true,
                Datum::Pair(p) => d = &p.1,
                _ => return false,
            }
        }
    }

    /// The length of a proper list, or `None` for non-lists.
    pub fn list_len(&self) -> Option<usize> {
        let mut n = 0;
        let mut d = self;
        loop {
            match d {
                Datum::Nil => return Some(n),
                Datum::Pair(p) => {
                    n += 1;
                    d = &p.1;
                }
                _ => return None,
            }
        }
    }

    /// Iterates over the elements of a (possibly improper) list; the
    /// iterator yields the cars and stops at the first non-pair tail, which
    /// can be retrieved with [`ListIter::tail`].
    pub fn iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }

    /// Collects a proper list into a vector; `None` if improper.
    pub fn to_vec(&self) -> Option<Vec<Datum>> {
        let mut out = Vec::new();
        let mut it = self.iter();
        for d in it.by_ref() {
            out.push(d.clone());
        }
        if it.tail().is_nil() {
            Some(out)
        } else {
            None
        }
    }

    /// If this is a proper list whose head is the symbol `head`, returns the
    /// remaining elements.
    pub fn as_form(&self, head: &str) -> Option<Vec<Datum>> {
        let v = self.to_vec()?;
        match v.first() {
            Some(Datum::Sym(s)) if s.as_str() == head => Some(v[1..].to_vec()),
            _ => None,
        }
    }

    /// The symbol name, if this is a symbol.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self {
            Datum::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Datum::Bool(false))
    }

    /// True for data that evaluate to themselves in Scheme (numbers,
    /// booleans, characters, strings).
    pub fn is_self_evaluating(&self) -> bool {
        matches!(
            self,
            Datum::Int(_) | Datum::Bool(_) | Datum::Char(_) | Datum::Str(_) | Datum::Unspec
        )
    }

    /// Structural size (number of pairs plus atoms), useful for tests and
    /// code-growth accounting.
    pub fn size(&self) -> usize {
        match self {
            Datum::Pair(p) => 1 + p.0.size() + p.1.size(),
            _ => 1,
        }
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Self {
        Datum::Int(n)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Self {
        Datum::Bool(b)
    }
}

impl From<Symbol> for Datum {
    fn from(s: Symbol) -> Self {
        Datum::Sym(s)
    }
}

impl From<&str> for Datum {
    /// Interprets the string as a *symbol* name (the common case when
    /// building syntax); use [`Datum::string`] for string literals.
    fn from(s: &str) -> Self {
        Datum::sym(s)
    }
}

impl FromIterator<Datum> for Datum {
    fn from_iter<I: IntoIterator<Item = Datum>>(iter: I) -> Self {
        Datum::list(iter.into_iter().collect::<Vec<_>>())
    }
}

/// Iterator over the cars of a list datum; see [`Datum::iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    cur: &'a Datum,
}

impl<'a> ListIter<'a> {
    /// The tail at which iteration stopped (`Nil` for proper lists).
    pub fn tail(&self) -> &'a Datum {
        self.cur
    }
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Datum;

    fn next(&mut self) -> Option<&'a Datum> {
        match self.cur {
            Datum::Pair(p) => {
                self.cur = &p.1;
                Some(&p.0)
            }
            _ => None,
        }
    }
}

impl fmt::Debug for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Nil => f.write_str("()"),
            Datum::Unspec => f.write_str("#!unspecific"),
            Datum::Bool(true) => f.write_str("#t"),
            Datum::Bool(false) => f.write_str("#f"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Char(c) => match c {
                ' ' => f.write_str("#\\space"),
                '\n' => f.write_str("#\\newline"),
                '\t' => f.write_str("#\\tab"),
                c => write!(f, "#\\{c}"),
            },
            Datum::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Datum::Sym(s) => write!(f, "{s}"),
            Datum::Pair(_) => {
                // Print quote sugar back.
                if let (Some(Datum::Sym(head)), Some(2)) = (self.car(), self.list_len()) {
                    let sugar = match head.as_str() {
                        "quote" => Some("'"),
                        "quasiquote" => Some("`"),
                        "unquote" => Some(","),
                        "unquote-splicing" => Some(",@"),
                        _ => None,
                    };
                    if let Some(s) = sugar {
                        let arg = self.cdr().and_then(|d| d.car()).expect("len-2 list");
                        return write!(f, "{s}{arg}");
                    }
                }
                f.write_str("(")?;
                let mut it = self.iter();
                let mut first = true;
                for d in it.by_ref() {
                    if !first {
                        f.write_str(" ")?;
                    }
                    first = false;
                    write!(f, "{d}")?;
                }
                if !it.tail().is_nil() {
                    write!(f, " . {}", it.tail())?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(items: &[Datum]) -> Datum {
        Datum::list(items.to_vec())
    }

    #[test]
    fn list_construction_and_access() {
        let d = l(&[Datum::from(1), Datum::from(2), Datum::from(3)]);
        assert_eq!(d.list_len(), Some(3));
        assert!(d.is_list());
        assert_eq!(d.car(), Some(&Datum::Int(1)));
        assert_eq!(d.cdr().unwrap().list_len(), Some(2));
    }

    #[test]
    fn improper_list_detection() {
        let d = Datum::cons(Datum::from(1), Datum::from(2));
        assert!(!d.is_list());
        assert_eq!(d.list_len(), None);
        assert_eq!(d.to_vec(), None);
        let mut it = d.iter();
        assert_eq!(it.next(), Some(&Datum::Int(1)));
        assert_eq!(it.next(), None);
        assert_eq!(it.tail(), &Datum::Int(2));
    }

    #[test]
    fn display_round_shapes() {
        assert_eq!(Datum::Nil.to_string(), "()");
        assert_eq!(Datum::from(true).to_string(), "#t");
        assert_eq!(Datum::from(-42).to_string(), "-42");
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::string("a\"b\\c\n").to_string(), "\"a\\\"b\\\\c\\n\"");
        let d = Datum::cons(Datum::from(1), Datum::cons(Datum::from(2), Datum::from(3)));
        assert_eq!(d.to_string(), "(1 2 . 3)");
    }

    #[test]
    fn quote_sugar_prints_back() {
        let d = l(&[Datum::sym("quote"), Datum::sym("x")]);
        assert_eq!(d.to_string(), "'x");
        let d = l(&[
            Datum::sym("quasiquote"),
            l(&[Datum::sym("unquote"), Datum::sym("x")]),
        ]);
        assert_eq!(d.to_string(), "`,x");
    }

    #[test]
    fn as_form_matches_heads() {
        let d = l(&[Datum::sym("define"), Datum::sym("x"), Datum::from(1)]);
        let rest = d.as_form("define").unwrap();
        assert_eq!(rest.len(), 2);
        assert!(d.as_form("lambda").is_none());
        assert!(Datum::from(3).as_form("define").is_none());
    }

    #[test]
    fn truthiness_is_scheme_style() {
        assert!(Datum::Int(0).is_truthy());
        assert!(Datum::Nil.is_truthy());
        assert!(!Datum::Bool(false).is_truthy());
    }

    #[test]
    fn datum_is_hashable_and_eq() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(l(&[Datum::from(1), Datum::sym("a")]), "v");
        assert_eq!(m.get(&l(&[Datum::from(1), Datum::sym("a")])), Some(&"v"));
    }

    #[test]
    fn size_counts_pairs_and_atoms() {
        assert_eq!(Datum::from(1).size(), 1);
        assert_eq!(l(&[Datum::from(1), Datum::from(2)]).size(), 5);
    }
}
