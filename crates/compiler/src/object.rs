//! The compiler as code-generation combinators — the fused backend.
//!
//! Act 3 of the paper (Sec. 6.3): "a second set of macros … turn the
//! compiler functions into combinators. These combinators … replace
//! counterparts in the PGG normally responsible for producing output code
//! in the source language. The new combinators directly produce object
//! code."
//!
//! [`ObjectBuilder`] implements the specializer's [`CodeBuilder`] interface
//! with:
//!
//! * trivial terms as *data one level deep* — in particular, variables are
//!   passed as **names** and converted to code at their use site, which is
//!   the paper's Sec. 6.4 resolution of the name/compilator duality;
//! * code bodies as emission functions `Asm × CEnv × depth → ()`, i.e. the
//!   compilators of [`crate::emit`] partially applied to their syntax;
//! * lambdas compiled *eagerly* into sub-templates (their compile-time
//!   environment is just parameters + free variables, known immediately).
//!
//! No residual syntax tree is ever constructed: the specializer's output
//! arrives here as a stream of constructor calls and leaves as byte code.
//! That is the deforestation of Sec. 5.4, performed by monomorphization.

use crate::cenv::{CEnv, Loc};
use crate::{emit, CompileError};
use std::sync::Arc;
use two4one_anf::build::CodeBuilder;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Asm, Image, Template};

/// A residual trivial term in the object backend.
#[derive(Clone)]
pub enum ObjTriv {
    /// A constant.
    Const(Datum),
    /// A local variable, by name (resolved against the compile-time
    /// environment at the use site).
    Var(Symbol),
    /// A top-level residual function used as a value.
    Global(Symbol),
    /// An already-compiled closure: template plus the names of the free
    /// variables to capture at the construction site.
    Closure {
        /// Sub-template for the lambda body.
        template: Arc<Template>,
        /// Free variables to load and capture, in template order.
        free: Vec<Symbol>,
    },
}

/// A residual serious term (call or primitive application).
pub enum ObjSerious {
    /// Call through a computed procedure.
    Call(ObjTriv, Vec<ObjTriv>),
    /// Call to a top-level residual function.
    CallGlobal(Symbol, Vec<ObjTriv>),
    /// Primitive application.
    Prim(Prim, Vec<ObjTriv>),
}

/// A residual body: an emission function over assembler, compile-time
/// environment, and stack depth — the exact parameter list of the paper's
/// compilators.
type EmitFn = dyn Fn(&mut Asm, &CEnv, u16) -> Result<(), CompileError> + Send + Sync;

#[derive(Clone)]
pub struct ObjCode(Arc<EmitFn>);

impl ObjCode {
    fn new(
        f: impl Fn(&mut Asm, &CEnv, u16) -> Result<(), CompileError> + Send + Sync + 'static,
    ) -> Self {
        ObjCode(Arc::new(f))
    }

    /// Runs the emission function.
    pub fn emit(&self, asm: &mut Asm, cenv: &CEnv, depth: u16) -> Result<(), CompileError> {
        (self.0)(asm, cenv, depth)
    }
}

fn emit_triv(t: &ObjTriv, asm: &mut Asm, cenv: &CEnv) -> Result<(), CompileError> {
    match t {
        ObjTriv::Const(d) => emit::emit_const(asm, d),
        ObjTriv::Var(x) => match cenv.lookup(x) {
            Some(loc) => {
                emit::emit_var(asm, loc);
                Ok(())
            }
            None => Err(CompileError::Unbound(*x)),
        },
        ObjTriv::Global(g) => emit::emit_global(asm, g),
        ObjTriv::Closure { template, free } => {
            emit::emit_make_closure(asm, template.clone(), free, |asm, x| match cenv.lookup(x) {
                Some(loc) => {
                    emit::emit_var(asm, loc);
                    Ok(())
                }
                None => Err(CompileError::Unbound(*x)),
            })
        }
    }
}

/// Pushes the arguments of a serious term; returns the count.
fn emit_args(args: &[ObjTriv], asm: &mut Asm, cenv: &CEnv) -> Result<u8, CompileError> {
    let n = u8::try_from(args.len()).map_err(|_| CompileError::TooManyArgs(args.len()))?;
    for a in args {
        emit_triv(a, asm, cenv)?;
        emit::emit_push(asm);
    }
    Ok(n)
}

fn emit_serious(
    s: &ObjSerious,
    asm: &mut Asm,
    cenv: &CEnv,
    tail: bool,
) -> Result<(), CompileError> {
    match s {
        ObjSerious::Call(f, args) => {
            let n = emit_args(args, asm, cenv)?;
            emit_triv(f, asm, cenv)?;
            if tail {
                emit::emit_tail_call(asm, n);
            } else {
                emit::emit_call(asm, n);
            }
        }
        ObjSerious::CallGlobal(g, args) => {
            let n = emit_args(args, asm, cenv)?;
            emit::emit_global(asm, g)?;
            if tail {
                emit::emit_tail_call(asm, n);
            } else {
                emit::emit_call(asm, n);
            }
        }
        ObjSerious::Prim(p, args) => {
            let n = emit_args(args, asm, cenv)?;
            emit::emit_prim(asm, *p, n);
            if tail {
                emit::emit_return(asm);
            }
        }
    }
    Ok(())
}

/// The object-code backend for the specializer.
#[derive(Default)]
pub struct ObjectBuilder {
    defs: Vec<(Symbol, Arc<Template>)>,
    error: Option<CompileError>,
    ops: usize,
}

impl ObjectBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ObjectBuilder {
            defs: Vec::new(),
            error: None,
            ops: 0,
        }
    }

    fn count(&mut self) {
        self.ops += 1;
    }

    fn record(&mut self, e: CompileError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Compiles a body into a fresh template (shared by `lambda` and
    /// `define`).
    fn compile_closed(
        &mut self,
        name: &Symbol,
        params: &[Symbol],
        free: &[Symbol],
        body: &ObjCode,
    ) -> Option<Arc<Template>> {
        let arity = match u8::try_from(params.len()) {
            Ok(a) => a,
            Err(_) => {
                self.record(CompileError::TooManyArgs(params.len()));
                return None;
            }
        };
        let nfree = match u16::try_from(free.len()) {
            Ok(n) => n,
            Err(_) => {
                self.record(CompileError::TooManyArgs(free.len()));
                return None;
            }
        };
        let mut asm = Asm::new(*name, arity, nfree);
        let mut cenv = CEnv::empty();
        for (i, p) in params.iter().enumerate() {
            cenv = cenv.bind(*p, Loc::Local(i as u16));
        }
        for (i, v) in free.iter().enumerate() {
            cenv = cenv.bind(*v, Loc::Captured(i as u16));
        }
        match body
            .emit(&mut asm, &cenv, params.len() as u16)
            .and_then(|()| asm.finish().map_err(CompileError::from))
        {
            Ok(t) => {
                // Templates are real emitted code; weigh them by length so
                // code_size tracks actual object-code growth, not just
                // constructor traffic.
                self.ops += t.code.len();
                Some(t)
            }
            Err(e) => {
                self.record(e);
                None
            }
        }
    }
}

impl CodeBuilder for ObjectBuilder {
    type Triv = ObjTriv;
    type Serious = ObjSerious;
    type Code = ObjCode;
    /// Compilation can fail (e.g. encoding overflows); the error surfaces
    /// when the program is finished.
    type Program = Result<Image, CompileError>;

    fn const_(&mut self, d: &Datum) -> ObjTriv {
        self.count();
        ObjTriv::Const(d.clone())
    }

    fn var(&mut self, x: &Symbol) -> ObjTriv {
        self.count();
        ObjTriv::Var(*x)
    }

    fn global(&mut self, x: &Symbol) -> ObjTriv {
        self.count();
        ObjTriv::Global(*x)
    }

    fn lambda(
        &mut self,
        name: &Symbol,
        params: &[Symbol],
        free: &[Symbol],
        body: ObjCode,
    ) -> ObjTriv {
        self.count();
        match self.compile_closed(name, params, free, &body) {
            Some(template) => ObjTriv::Closure {
                template,
                free: free.to_vec(),
            },
            None => ObjTriv::Const(Datum::Unspec), // poisoned; error recorded
        }
    }

    fn call(&mut self, f: ObjTriv, args: Vec<ObjTriv>) -> ObjSerious {
        self.count();
        ObjSerious::Call(f, args)
    }

    fn call_global(&mut self, g: &Symbol, args: Vec<ObjTriv>) -> ObjSerious {
        self.count();
        ObjSerious::CallGlobal(*g, args)
    }

    fn prim(&mut self, p: Prim, args: Vec<ObjTriv>) -> ObjSerious {
        self.count();
        ObjSerious::Prim(p, args)
    }

    fn ret(&mut self, t: ObjTriv) -> ObjCode {
        self.count();
        ObjCode::new(move |asm, cenv, _depth| {
            emit_triv(&t, asm, cenv)?;
            emit::emit_return(asm);
            Ok(())
        })
    }

    fn tail(&mut self, s: ObjSerious) -> ObjCode {
        self.count();
        ObjCode::new(move |asm, cenv, _depth| emit_serious(&s, asm, cenv, true))
    }

    fn let_serious(&mut self, x: &Symbol, rhs: ObjSerious, body: ObjCode) -> ObjCode {
        self.count();
        let x = *x;
        ObjCode::new(move |asm, cenv, depth| {
            emit_serious(&rhs, asm, cenv, false)?;
            emit::emit_bind(asm);
            let inner = cenv.bind(x, Loc::Local(depth));
            body.emit(asm, &inner, depth + 1)
        })
    }

    fn let_triv(&mut self, x: &Symbol, rhs: ObjTriv, body: ObjCode) -> ObjCode {
        self.count();
        let x = *x;
        ObjCode::new(move |asm, cenv, depth| {
            emit_triv(&rhs, asm, cenv)?;
            emit::emit_bind(asm);
            let inner = cenv.bind(x, Loc::Local(depth));
            body.emit(asm, &inner, depth + 1)
        })
    }

    fn if_(&mut self, t: ObjTriv, then: ObjCode, els: ObjCode) -> ObjCode {
        self.count();
        ObjCode::new(move |asm, cenv, depth| {
            emit_triv(&t, asm, cenv)?;
            let alt = emit::emit_branch_false(asm);
            then.emit(asm, cenv, depth)?;
            emit::attach(asm, alt);
            els.emit(asm, cenv, depth)
        })
    }

    fn define(&mut self, name: &Symbol, params: &[Symbol], body: ObjCode) {
        self.count();
        if let Some(t) = self.compile_closed(name, params, &[], &body) {
            self.defs.push((*name, t));
        }
    }

    fn finish(mut self, entry: &Symbol) -> Result<Image, CompileError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Entry first, mirroring SourceBuilder.
        if let Some(pos) = self.defs.iter().position(|(n, _)| n == entry) {
            let d = self.defs.remove(pos);
            self.defs.insert(0, d);
        }
        Ok(Image {
            templates: self.defs,
            entry: *entry,
        })
    }

    fn code_size(&self) -> usize {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_vm::{Machine, Value};

    /// Drives both builders through the same constructor calls and checks
    /// the object backend against the compiled source backend — a small
    /// instance of the fusion theorem.
    fn build_countdown<B: CodeBuilder>(b: &mut B) -> Symbol {
        // (define (f x) (let ((t (zero? x)))
        //                 (if t 'done (let ((u (- x 1))) (f u)))))
        let f = Symbol::new("f");
        let x = Symbol::new("x");
        let t = Symbol::new("t");
        let u = Symbol::new("u");
        let xv = b.var(&x);
        let test = b.prim(Prim::ZeroP, vec![xv]);
        let done = {
            let c = b.const_(&Datum::sym("done"));
            b.ret(c)
        };
        let recur = {
            let uv = b.var(&u);
            let call = b.call_global(&f, vec![uv]);
            let inner = b.tail(call);
            let xv = b.var(&x);
            let one = b.const_(&Datum::Int(1));
            let sub = b.prim(Prim::Sub, vec![xv, one]);
            b.let_serious(&u, sub, inner)
        };
        let tv = b.var(&t);
        let cond = b.if_(tv, done, recur);
        let body = b.let_serious(&t, test, cond);
        b.define(&f, &[x], body);
        f
    }

    #[test]
    fn object_builder_runs() {
        let mut b = ObjectBuilder::new();
        let f = build_countdown(&mut b);
        let image = b.finish(&f).unwrap();
        let mut m = Machine::load(&image);
        let v = m.call_global(&f, vec![Value::Int(10_000)]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::sym("done")));
    }

    #[test]
    fn fused_output_equals_compiled_source_output() {
        use two4one_anf::build::SourceBuilder;

        let mut ob = ObjectBuilder::new();
        let f = build_countdown(&mut ob);
        let fused = ob.finish(&f).unwrap();

        let mut sb = SourceBuilder::new();
        let f2 = build_countdown(&mut sb);
        let source_prog = sb.finish(&f2);
        let compiled = crate::compile_program(&source_prog, f2.as_str()).unwrap();

        assert_eq!(fused.templates.len(), compiled.templates.len());
        for ((n1, t1), (n2, t2)) in fused.templates.iter().zip(&compiled.templates) {
            assert_eq!(n1, n2);
            assert_eq!(
                t1,
                t2,
                "template mismatch:\n{}\nvs\n{}",
                t1.disassemble(),
                t2.disassemble()
            );
        }
    }

    #[test]
    fn lambdas_capture_free_variables() {
        // (define (mk n) (lambda (x) (+ x n)))   then ((mk 3) 4) = 7
        let mut b = ObjectBuilder::new();
        let mk = Symbol::new("mk");
        let n = Symbol::new("n");
        let x = Symbol::new("x");
        let lam_body = {
            let xv = b.var(&x);
            let nv = b.var(&n);
            let s = b.prim(Prim::Add, vec![xv, nv]);
            b.tail(s)
        };
        let lam = b.lambda(
            &Symbol::new("adder"),
            std::slice::from_ref(&x),
            std::slice::from_ref(&n),
            lam_body,
        );
        let body = b.ret(lam);
        b.define(&mk, &[n], body);
        let image = b.finish(&mk).unwrap();
        let mut m = Machine::load(&image);
        let add3 = m.call_global(&mk, vec![Value::Int(3)]).unwrap();
        let v = m.call_value(add3, vec![Value::Int(4)]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(7)));
    }

    #[test]
    fn unbound_variable_error_surfaces_at_finish() {
        let mut b = ObjectBuilder::new();
        let bad = b.var(&Symbol::new("nope"));
        let code = b.ret(bad);
        b.define(&Symbol::new("f"), &[], code);
        let err = b.finish(&Symbol::new("f")).unwrap_err();
        assert_eq!(err, CompileError::Unbound(Symbol::new("nope")));
    }
}
