//! Deterministic, seed-driven fault injection.
//!
//! Robustness tests need to answer one question for every way the engine
//! can be starved or fed garbage: *does it return a typed error — never a
//! panic, never a hang — and does it still work afterwards?* This module
//! generates the "ways": resource-starvation faults expressed as
//! [`Limits`] records (fuel exhaustion at step N, deadline expiry, memo
//! and depth caps), and byte-level corruption of serialized images
//! (bit flips, truncation, zeroed spans, garbage appends).
//!
//! Everything is derived from a [`Rng`] seed, so a failing case is
//! reproducible by number.

use crate::rng::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use two4one_syntax::limits::Limits;

/// One injected resource-starvation fault: a limit tight enough that a
/// non-trivial pipeline run will hit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Interpreter/VM step fuel runs out after `n` steps.
    StepFuel(u64),
    /// Wall-clock deadline expires after the given budget (often zero, so
    /// expiry is immediate and the test is time-independent).
    Deadline(Duration),
    /// Specializer unfold fuel runs out after `n` unfoldings.
    UnfoldFuel(u64),
    /// Specializer memo table capped at `n` entries.
    MemoCap(usize),
    /// Specializer recursion depth capped at `n`.
    SpecDepth(usize),
    /// Reader nesting depth capped at `n`.
    InputDepth(usize),
    /// Reader node count capped at `n`.
    InputNodes(usize),
}

impl Fault {
    /// The `Limits` record that injects this fault (everything else
    /// unlimited, so exactly one failure mode is exercised).
    pub fn limits(&self) -> Limits {
        let base = Limits::none();
        match *self {
            Fault::StepFuel(n) => base.with_step_fuel(n),
            Fault::Deadline(d) => base.with_timeout(d),
            Fault::UnfoldFuel(n) => base.with_unfold_fuel(n),
            Fault::MemoCap(n) => base.with_memo_cap(n),
            Fault::SpecDepth(n) => base.with_max_depth(n),
            Fault::InputDepth(n) => base.with_input_depth_cap(n),
            Fault::InputNodes(n) => base.with_input_node_cap(n),
        }
    }

    /// A short label for failure messages.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::StepFuel(_) => "step-fuel",
            Fault::Deadline(_) => "deadline",
            Fault::UnfoldFuel(_) => "unfold-fuel",
            Fault::MemoCap(_) => "memo-cap",
            Fault::SpecDepth(_) => "spec-depth",
            Fault::InputDepth(_) => "input-depth",
            Fault::InputNodes(_) => "input-nodes",
        }
    }
}

/// Generates one starvation fault. Budgets are small but varied, so the
/// limit trips at different points of the run from seed to seed.
pub fn gen_fault(rng: &mut Rng) -> Fault {
    match rng.index(7) {
        0 => Fault::StepFuel(rng.below(200)),
        // Zero-duration deadline: expires immediately, no sleeping needed.
        1 => Fault::Deadline(Duration::ZERO),
        2 => Fault::UnfoldFuel(rng.below(50)),
        3 => Fault::MemoCap(rng.index(4)),
        4 => Fault::SpecDepth(1 + rng.index(20)),
        5 => Fault::InputDepth(1 + rng.index(10)),
        _ => Fault::InputNodes(1 + rng.index(10)),
    }
}

/// Deterministic panic injection for worker-crash recovery tests.
///
/// Counts invocations of [`PanicPlan::tick`] and panics on exactly the
/// chosen one (counted from 1; `0` never fires). Shared behind an `Arc`
/// so a serving-layer hook and the test can both see the call count —
/// the test asserts both that the crash happened *and* that the system
/// stayed usable afterwards.
#[derive(Debug)]
pub struct PanicPlan {
    calls: AtomicU64,
    panic_on: u64,
}

impl PanicPlan {
    /// A plan that panics on the `call`-th tick (`0` = never).
    pub fn panic_on(call: u64) -> Arc<Self> {
        Arc::new(PanicPlan {
            calls: AtomicU64::new(0),
            panic_on: call,
        })
    }

    /// A plan that panics on the first tick only.
    pub fn once() -> Arc<Self> {
        Self::panic_on(1)
    }

    /// Registers one invocation; panics if this is the chosen one.
    ///
    /// # Panics
    ///
    /// On the configured invocation — that is the point.
    pub fn tick(&self) {
        let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.panic_on != 0 && n == self.panic_on {
            panic!("injected fault: panic on call {n}");
        }
    }

    /// How many times [`PanicPlan::tick`] has run (including the one
    /// that panicked).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

/// How a serialized image was damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One bit flipped somewhere in the payload.
    BitFlip,
    /// The byte stream cut short.
    Truncate,
    /// A span of bytes zeroed.
    ZeroSpan,
    /// Garbage appended past the end.
    Append,
}

/// Damages `bytes` in one seed-determined way. Never returns the input
/// unchanged (on empty input it appends garbage).
pub fn corrupt(bytes: &[u8], rng: &mut Rng) -> (Vec<u8>, Corruption) {
    let mut out = bytes.to_vec();
    let kind = if out.is_empty() {
        Corruption::Append
    } else {
        *rng.pick(&[
            Corruption::BitFlip,
            Corruption::Truncate,
            Corruption::ZeroSpan,
            Corruption::Append,
        ])
    };
    match kind {
        Corruption::BitFlip => {
            let i = rng.index(out.len());
            out[i] ^= 1 << rng.index(8);
        }
        Corruption::Truncate => {
            let keep = rng.index(out.len());
            out.truncate(keep);
        }
        Corruption::ZeroSpan => {
            let start = rng.index(out.len());
            let len = 1 + rng.index((out.len() - start).min(16));
            for b in &mut out[start..start + len] {
                *b = 0;
            }
        }
        Corruption::Append => {
            for _ in 0..1 + rng.index(16) {
                out.push(rng.below(256) as u8);
            }
        }
    }
    (out, kind)
}

/// One adversarial wire-client behavior for network storm tests: how a
/// hostile or broken peer mangles an otherwise-valid protocol exchange.
/// The server must answer every one of these with a typed error or a
/// reaped connection — never a panic, never a stuck thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// Send only the first `keep` bytes of the frame, then close — a torn
    /// frame (possibly mid-header).
    TornFrame {
        /// How many leading bytes of the valid frame to send.
        keep: usize,
    },
    /// Send bytes that are not a protocol frame at all.
    GarbageBytes(Vec<u8>),
    /// Send the valid frame one byte at a time, pausing between bytes —
    /// a slow-loris writer that should trip the request read deadline if
    /// the pauses outlast it.
    StalledWriter {
        /// Pause between bytes.
        pause: Duration,
    },
    /// Send the valid frame, then slam the connection shut without
    /// reading the response — the server should notice and cancel the
    /// in-flight work.
    MidStreamAbort,
}

impl WireFault {
    /// A short label for failure messages.
    pub fn label(&self) -> &'static str {
        match self {
            WireFault::TornFrame { .. } => "torn-frame",
            WireFault::GarbageBytes(_) => "garbage-bytes",
            WireFault::StalledWriter { .. } => "stalled-writer",
            WireFault::MidStreamAbort => "mid-stream-abort",
        }
    }
}

/// Generates one wire fault for a valid frame of `frame_len` bytes.
/// `pause` bounds the stalled writer's per-byte delay so tests control
/// their own wall-clock budget.
pub fn gen_wire_fault(rng: &mut Rng, frame_len: usize, pause: Duration) -> WireFault {
    match rng.index(4) {
        0 => WireFault::TornFrame {
            keep: rng.index(frame_len.max(1)),
        },
        1 => {
            let mut bytes = Vec::new();
            for _ in 0..1 + rng.index(64) {
                bytes.push(rng.below(256) as u8);
            }
            // Never let garbage alias the frame magic: the point of this
            // fault is a peer speaking the wrong protocol entirely.
            if bytes[0] == b'T' {
                bytes[0] = b'X';
            }
            WireFault::GarbageBytes(bytes)
        }
        2 => WireFault::StalledWriter { pause },
        _ => WireFault::MidStreamAbort,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::limits::LimitKind;

    #[test]
    fn faults_map_to_single_limit() {
        let l = Fault::UnfoldFuel(7).limits();
        assert_eq!(l.unfold_fuel, Some(7));
        assert_eq!(l.step_fuel, None);
        assert_eq!(l.memo_cap, None);
        let l = Fault::Deadline(Duration::ZERO).limits();
        assert!(l.deadline().expired());
        assert_eq!(l.deadline().fault().kind, LimitKind::Deadline);
    }

    #[test]
    fn corruption_is_deterministic_and_changes_bytes() {
        let img: Vec<u8> = (0..64).collect();
        for seed in 0..100 {
            let (a, ka) = corrupt(&img, &mut Rng::new(seed));
            let (b, kb) = corrupt(&img, &mut Rng::new(seed));
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ka, kb);
            assert_ne!(a, img, "seed {seed}: corruption must change the bytes");
        }
        // Empty input still yields damage.
        let (e, k) = corrupt(&[], &mut Rng::new(3));
        assert!(!e.is_empty());
        assert_eq!(k, Corruption::Append);
    }

    #[test]
    fn panic_plan_fires_exactly_once_and_keeps_counting() {
        let plan = PanicPlan::panic_on(2);
        plan.tick();
        let p = plan.clone();
        let r = std::panic::catch_unwind(move || p.tick());
        assert!(r.is_err(), "second tick must panic");
        plan.tick(); // third tick is quiet again
        assert_eq!(plan.calls(), 3);
        let never = PanicPlan::panic_on(0);
        for _ in 0..10 {
            never.tick();
        }
        assert_eq!(never.calls(), 10);
    }

    #[test]
    fn gen_fault_covers_all_kinds() {
        let mut seen = std::collections::HashSet::new();
        let mut rng = Rng::new(0);
        for _ in 0..200 {
            seen.insert(gen_fault(&mut rng).label());
        }
        assert_eq!(seen.len(), 7, "{seen:?}");
    }
}

#[cfg(test)]
mod wire_fault_tests {
    use super::*;

    #[test]
    fn gen_wire_fault_covers_all_kinds_and_is_deterministic() {
        let mut seen = std::collections::HashSet::new();
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            seen.insert(gen_wire_fault(&mut rng, 32, Duration::from_millis(1)).label());
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
        let a = gen_wire_fault(&mut Rng::new(3), 32, Duration::ZERO);
        let b = gen_wire_fault(&mut Rng::new(3), 32, Duration::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn garbage_never_aliases_the_frame_magic() {
        for seed in 0..500 {
            if let WireFault::GarbageBytes(bytes) =
                gen_wire_fault(&mut Rng::new(seed), 16, Duration::ZERO)
            {
                assert!(!bytes.is_empty());
                assert_ne!(bytes[0], b'T', "seed {seed}");
            }
        }
    }

    #[test]
    fn torn_frames_never_send_the_whole_frame() {
        for seed in 0..200 {
            if let WireFault::TornFrame { keep } =
                gen_wire_fault(&mut Rng::new(seed), 48, Duration::ZERO)
            {
                assert!(keep < 48, "seed {seed}: keep={keep}");
            }
        }
    }
}
