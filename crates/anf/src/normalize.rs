//! A-normalization: Core Scheme → ANF.
//!
//! This is the path a *stock* compiler takes for arbitrary programs (the
//! "Compile" column of the paper's Fig. 8); the specializer bypasses it by
//! emitting ANF directly.
//!
//! The normalizer is continuation-based. Non-tail conditionals get a *join
//! point* — a let-bound lambda receiving the branch result — so the
//! normalization continuation is used linearly and code size stays linear
//! in the input. (The specializer, following Fig. 3, duplicates its
//! continuation at dynamic conditionals instead; both produce valid ANF.)

use crate::{App, Def, Expr, Lambda, Program, Rhs, Triv};
use std::sync::Arc;
use two4one_syntax::cs;
use two4one_syntax::symbol::{Gensym, Symbol};

/// Normalizes a whole program.
pub fn normalize(prog: &cs::Program) -> Program {
    let mut gensym = Gensym::new();
    Program {
        defs: prog
            .defs
            .iter()
            .map(|d| Def {
                name: d.name,
                params: d.params.clone(),
                body: normalize_expr(&d.body, &mut gensym),
            })
            .collect(),
    }
}

/// Normalizes a single expression (in tail position).
pub fn normalize_expr(e: &cs::Expr, gensym: &mut Gensym) -> Expr {
    Norm { gensym }.tail(e)
}

struct Norm<'g> {
    gensym: &'g mut Gensym,
}

type K<'a> = Box<dyn FnOnce(&mut Norm, Triv) -> Expr + 'a>;
type KSeq<'a> = Box<dyn FnOnce(&mut Norm, Vec<Triv>) -> Expr + 'a>;

impl Norm<'_> {
    /// Normalizes `e` in tail position.
    fn tail(&mut self, e: &cs::Expr) -> Expr {
        match e {
            cs::Expr::Const(_) | cs::Expr::Var(_) | cs::Expr::Lambda(_) => {
                let t = self.triv(e);
                Expr::Ret(t)
            }
            cs::Expr::If(t, c, a) => self.name(
                t,
                Box::new(move |s, tv| Expr::If(tv, Box::new(s.tail(c)), Box::new(s.tail(a)))),
            ),
            cs::Expr::Let(x, rhs, body) => self.named(*x, rhs, Box::new(move |s| s.tail(body))),
            cs::Expr::App(f, args) => self.name(
                f,
                Box::new(move |s, ft| {
                    s.name_seq(
                        args,
                        Vec::new(),
                        Box::new(move |_, argts| Expr::Tail(App::Call(ft, argts))),
                    )
                }),
            ),
            cs::Expr::PrimApp(p, args) => {
                let p = *p;
                self.name_seq(
                    args,
                    Vec::new(),
                    Box::new(move |_, argts| Expr::Tail(App::Prim(p, argts))),
                )
            }
        }
    }

    /// Normalizes `e`, then passes a *trivial* term denoting its value to
    /// the continuation `k`.
    fn name(&mut self, e: &cs::Expr, k: K<'_>) -> Expr {
        match e {
            cs::Expr::Const(_) | cs::Expr::Var(_) | cs::Expr::Lambda(_) => {
                let t = self.triv(e);
                k(self, t)
            }
            cs::Expr::If(t, c, a) => {
                // Join point: (let ((j (lambda (r) K[r]))) (if t (j …) (j …)))
                let j = self.gensym.fresh("join");
                let r = self.gensym.fresh("r");
                let jt = j;
                let join_body = {
                    let rv = Triv::Var(r);
                    k(self, rv)
                };
                let jump = move |s: &mut Norm, br: &cs::Expr, j: Symbol| {
                    s.name(
                        br,
                        Box::new(move |_, bt| Expr::Tail(App::Call(Triv::Var(j), vec![bt]))),
                    )
                };
                let jc = jump(self, c, j);
                let ja = jump(self, a, j);
                let test_and_branch = self.name(
                    t,
                    Box::new(move |_, tv| Expr::If(tv, Box::new(jc), Box::new(ja))),
                );
                Expr::Let(
                    jt,
                    Rhs::Triv(Triv::Lambda(Arc::new(Lambda {
                        name: j,
                        params: vec![r],
                        body: join_body,
                    }))),
                    Box::new(test_and_branch),
                )
            }
            cs::Expr::Let(x, rhs, body) => self.named(*x, rhs, Box::new(move |s| s.name(body, k))),
            cs::Expr::App(f, args) => {
                let tmp = self.gensym.fresh("t");
                let tmp2 = tmp;
                self.name(
                    f,
                    Box::new(move |s, ft| {
                        s.name_seq(
                            args,
                            Vec::new(),
                            Box::new(move |s, argts| {
                                let rest = k(s, Triv::Var(tmp2));
                                Expr::Let(tmp2, Rhs::App(App::Call(ft, argts)), Box::new(rest))
                            }),
                        )
                    }),
                )
            }
            cs::Expr::PrimApp(p, args) => {
                let p = *p;
                let tmp = self.gensym.fresh("t");
                self.name_seq(
                    args,
                    Vec::new(),
                    Box::new(move |s, argts| {
                        let rest = k(s, Triv::Var(tmp));
                        Expr::Let(tmp, Rhs::App(App::Prim(p, argts)), Box::new(rest))
                    }),
                )
            }
        }
    }

    /// Normalizes a list of expressions left-to-right into trivials.
    fn name_seq<'a>(&mut self, es: &'a [cs::Expr], mut acc: Vec<Triv>, k: KSeq<'a>) -> Expr {
        match es.split_first() {
            None => k(self, acc),
            Some((first, rest)) => self.name(
                first,
                Box::new(move |s, t| {
                    acc.push(t);
                    s.name_seq(rest, acc, k)
                }),
            ),
        }
    }

    /// Normalizes `(let (x rhs) …)` keeping the binding structure: serious
    /// right-hand sides bind directly without an extra temporary.
    fn named(
        &mut self,
        x: Symbol,
        rhs: &cs::Expr,
        then: Box<dyn FnOnce(&mut Norm) -> Expr + '_>,
    ) -> Expr {
        match rhs {
            cs::Expr::Const(_) | cs::Expr::Var(_) | cs::Expr::Lambda(_) => {
                let t = self.triv(rhs);
                Expr::Let(x, Rhs::Triv(t), Box::new(then(self)))
            }
            cs::Expr::App(f, args) => self.name(
                f,
                Box::new(move |s, ft| {
                    s.name_seq(
                        args,
                        Vec::new(),
                        Box::new(move |s, argts| {
                            Expr::Let(x, Rhs::App(App::Call(ft, argts)), Box::new(then(s)))
                        }),
                    )
                }),
            ),
            cs::Expr::PrimApp(p, args) => {
                let p = *p;
                self.name_seq(
                    args,
                    Vec::new(),
                    Box::new(move |s, argts| {
                        Expr::Let(x, Rhs::App(App::Prim(p, argts)), Box::new(then(s)))
                    }),
                )
            }
            cs::Expr::Let(y, rhs2, body2) => {
                self.named(*y, rhs2, Box::new(move |s| s.named(x, body2, then)))
            }
            cs::Expr::If(..) => {
                // General case: produce a trivial for the conditional
                // (introduces a join point) and bind it.
                self.name(
                    rhs,
                    Box::new(move |s, t| Expr::Let(x, Rhs::Triv(t), Box::new(then(s)))),
                )
            }
        }
    }

    /// Converts an expression that is already trivial.
    fn triv(&mut self, e: &cs::Expr) -> Triv {
        match e {
            cs::Expr::Const(d) => Triv::Const(d.clone()),
            cs::Expr::Var(x) => Triv::Var(*x),
            cs::Expr::Lambda(l) => Triv::Lambda(Arc::new(Lambda {
                name: l.name,
                params: l.params.clone(),
                body: self.tail(&l.body),
            })),
            _ => unreachable!("triv called on serious expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs_is_anf;
    use two4one_syntax::reader::read_one;

    fn norm(src: &str) -> Expr {
        let e = cs::parse_expr(&read_one(src).unwrap()).unwrap();
        normalize_expr(&e, &mut Gensym::new())
    }

    #[test]
    fn already_anf_stays_put_shapewise() {
        let e = norm("(let ((t (f x))) (g t))");
        assert!(cs_is_anf(&e.to_cs()));
        assert!(matches!(e, Expr::Let(_, Rhs::App(App::Call(..)), _)));
    }

    #[test]
    fn nested_calls_get_named() {
        let e = norm("(f (g x) (h y))");
        assert!(cs_is_anf(&e.to_cs()));
        // let t1 = (g x) in let t2 = (h y) in tail (f t1 t2)
        match &e {
            Expr::Let(_, Rhs::App(App::Call(f1, _)), body) => {
                assert_eq!(*f1, Triv::Var(Symbol::new("g")));
                assert!(matches!(&**body, Expr::Let(_, Rhs::App(App::Call(..)), _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn evaluation_order_left_to_right() {
        let e = norm("(f (g 1) (h 2))");
        let text = e.to_string();
        let g_pos = text.find("(g 1)").unwrap();
        let h_pos = text.find("(h 2)").unwrap();
        assert!(g_pos < h_pos, "{text}");
    }

    #[test]
    fn serious_test_is_named() {
        let e = norm("(if (f x) 1 2)");
        assert!(cs_is_anf(&e.to_cs()));
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn tail_if_has_no_join_point() {
        let e = norm("(if x (f x) (g x))");
        assert!(matches!(e, Expr::If(..)));
        assert!(!e.to_string().contains("join"));
    }

    #[test]
    fn nontail_if_gets_join_point() {
        let e = norm("(+ 1 (if x 2 3))");
        assert!(cs_is_anf(&e.to_cs()));
        assert!(e.to_string().contains("join"), "{e}");
    }

    #[test]
    fn let_of_if_goes_through_join() {
        let e = norm("(let ((v (if a 1 2))) (+ v 1))");
        assert!(cs_is_anf(&e.to_cs()));
    }

    #[test]
    fn lambda_bodies_are_normalized() {
        let e = norm("(lambda (x) (f (g x)))");
        match e {
            Expr::Ret(Triv::Lambda(l)) => assert!(cs_is_anf(&l.body.to_cs())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_points_linearize_nested_ifs() {
        // Two non-tail ifs: code must stay linear (2 join points, no 4-way
        // duplication of the continuation).
        let e = norm("(+ (if a 1 2) (if b 3 4))");
        let text = e.to_string();
        assert!(text.matches("join").count() >= 2);
        assert!(cs_is_anf(&e.to_cs()));
    }

    #[test]
    fn whole_program_normalization() {
        let p = cs::parse_program(
            &two4one_syntax::reader::read_all(
                "(define (f x) (g (h x))) (define (g y) y) (define (h z) z)",
            )
            .unwrap(),
        )
        .unwrap();
        let anf = normalize(&p);
        assert_eq!(anf.defs.len(), 3);
        for d in &anf.defs {
            assert!(cs_is_anf(&d.body.to_cs()), "{}", d.body);
        }
        // Round-trip through source text re-parses.
        let text = anf.to_source();
        assert!(two4one_syntax::reader::read_all(&text).is_ok());
    }
}
