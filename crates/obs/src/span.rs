//! Lightweight spans and a bounded per-thread trace ring.
//!
//! A [`Span`] marks one pipeline phase on the current thread: entering
//! pushes an `Enter` event into the thread's ring buffer, dropping pushes
//! an `Exit` with the measured duration and records it into the global
//! per-phase latency histogram (`t4o_phase_nanos{phase=...}`). Point
//! events ([`event`]) mark individual decisions — an unfold, a memo hit,
//! a cache hit, a breaker trip — so a request's trace (front-end → BTA →
//! specialize → compile → vm-exec plus its decisions) can be dumped on
//! demand or on error.
//!
//! The ring is strictly per-thread and bounded ([`TRACE_CAP`] events,
//! oldest evicted first), so tracing can stay on in production: no locks,
//! no allocation beyond the ring itself, no unbounded growth. Work that
//! hops to a helper thread carries its trace back explicitly — see
//! [`take_trace`] / [`absorb_trace`].
//!
//! Everything here is gated by [`set_enabled`](crate::set_enabled): with
//! observability off, `Span::enter` and `event` are a single relaxed
//! atomic load.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::Histogram;

/// Capacity of the per-thread trace ring, in events.
pub const TRACE_CAP: usize = 256;

/// A pipeline phase, used to label spans and per-phase histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reader + front end (desugar, rename, lift, lower).
    Frontend,
    /// Binding-time analysis.
    Bta,
    /// The specializer (fused with code generation on the object path).
    Specialize,
    /// The stand-alone ANF compiler.
    Compile,
    /// Byte-code VM execution.
    VmExec,
    /// One serving-layer request end to end.
    Serve,
    /// Staging + compiling a generating extension.
    GenextBuild,
    /// Running a compiled generating extension on static inputs.
    GenextRun,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::Frontend,
        Phase::Bta,
        Phase::Specialize,
        Phase::Compile,
        Phase::VmExec,
        Phase::Serve,
        Phase::GenextBuild,
        Phase::GenextRun,
    ];

    /// The phase's label value in metrics and traces.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Frontend => "frontend",
            Phase::Bta => "bta",
            Phase::Specialize => "specialize",
            Phase::Compile => "compile",
            Phase::VmExec => "vm-exec",
            Phase::Serve => "serve",
            Phase::GenextBuild => "genext-build",
            Phase::GenextRun => "genext-run",
        }
    }
}

/// A point decision worth seeing in a request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The specializer unfolded a call.
    Unfold,
    /// Specialization-point memo hit.
    MemoHit,
    /// Specialization-point memo miss (a new residual function).
    MemoMiss,
    /// A recoverable limit downgraded a call to generic fallback code.
    Fallback,
    /// The serving layer retried a transiently starved fill.
    Retry,
    /// Serving-layer cache hit.
    CacheHit,
    /// Serving-layer cache miss (this request leads the fill).
    CacheMiss,
    /// Request coalesced onto another leader's in-flight fill.
    Coalesced,
    /// Request shed at admission (overload).
    Shed,
    /// A per-request deadline fired.
    DeadlineExceeded,
    /// The circuit breaker answered with generic fallback code.
    BreakerOpen,
    /// A cache entry was restored from a snapshot.
    Restored,
    /// A snapshot record was quarantined during restore.
    Quarantined,
    /// A program was redefined; the detail word is the new epoch.
    Redefined,
    /// Cached specializations were invalidated by a redefinition; the
    /// detail word is how many.
    Invalidated,
    /// Snapshot records were dropped on restore because their program was
    /// redefined since the snapshot; the detail word is how many.
    StaleDropped,
    /// An in-flight fill finished for an epoch that died under it; the
    /// result was served to its waiters but never cached.
    EpochConflict,
    /// A Tier-0 (generically compiled, provisional) image answered a cold
    /// miss instead of blocking on the specializer.
    Tier0Served,
    /// A hot provisional entry was enqueued for background
    /// specialization; the detail word is its observed hit count.
    PromoteEnqueued,
    /// A background promotion finished and the specialized image was
    /// hot-swapped into the current-epoch cache slot.
    Promoted,
    /// A finished background promotion was tombstoned because its epoch
    /// died mid-build (a `redefine` landed); nothing was swapped in.
    SwapEpochConflict,
    /// A promoted entry was demoted back to the provisional tier (its
    /// background specialization failed or degraded irrecoverably).
    Demoted,
}

impl EventKind {
    /// The event's name in trace dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Unfold => "unfold",
            EventKind::MemoHit => "memo-hit",
            EventKind::MemoMiss => "memo-miss",
            EventKind::Fallback => "fallback",
            EventKind::Retry => "retry",
            EventKind::CacheHit => "cache-hit",
            EventKind::CacheMiss => "cache-miss",
            EventKind::Coalesced => "coalesced",
            EventKind::Shed => "shed",
            EventKind::DeadlineExceeded => "deadline-exceeded",
            EventKind::BreakerOpen => "breaker-open",
            EventKind::Restored => "restored",
            EventKind::Quarantined => "quarantined",
            EventKind::Redefined => "redefined",
            EventKind::Invalidated => "invalidated",
            EventKind::StaleDropped => "stale-dropped",
            EventKind::EpochConflict => "epoch-conflict",
            EventKind::Tier0Served => "tier0-served",
            EventKind::PromoteEnqueued => "promote-enqueued",
            EventKind::Promoted => "promoted",
            EventKind::SwapEpochConflict => "swap-epoch-conflict",
            EventKind::Demoted => "demoted",
        }
    }
}

/// One entry in a thread's trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process's observability epoch (first use).
    pub at_ns: u64,
    /// What happened.
    pub what: TraceWhat,
}

/// The payload of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceWhat {
    /// A phase began on this thread.
    Enter(Phase),
    /// A phase ended; `nanos` is its measured duration.
    Exit {
        /// The phase that ended.
        phase: Phase,
        /// Measured duration of the span.
        nanos: u64,
    },
    /// A point decision, with an event-specific detail word (0 when the
    /// event carries no quantity).
    Point(EventKind, u64),
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the observability epoch.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static TRACE: RefCell<VecDeque<TraceEvent>> =
        RefCell::new(VecDeque::with_capacity(TRACE_CAP));
}

fn push(ev: TraceEvent) {
    // `try_*` throughout: a trace entry is never worth a panic, and the
    // TLS slot may already be gone during thread teardown.
    let _ = TRACE.try_with(|t| {
        if let Ok(mut ring) = t.try_borrow_mut() {
            if ring.len() >= TRACE_CAP {
                ring.pop_front();
            }
            ring.push_back(ev);
        }
    });
}

/// Records a point event on the current thread (no-op when observability
/// is disabled).
pub fn event(kind: EventKind) {
    event_with(kind, 0);
}

/// Records a point event carrying a detail word (a count, an index, …).
pub fn event_with(kind: EventKind, detail: u64) {
    if !crate::enabled() {
        return;
    }
    push(TraceEvent {
        at_ns: now_ns(),
        what: TraceWhat::Point(kind, detail),
    });
}

/// A copy of the current thread's trace, oldest event first.
pub fn trace() -> Vec<TraceEvent> {
    TRACE
        .try_with(|t| {
            t.try_borrow()
                .map(|ring| ring.iter().copied().collect())
                .unwrap_or_default()
        })
        .unwrap_or_default()
}

/// Drains the current thread's trace (oldest first), leaving it empty.
/// Used to hand a worker thread's events back to the thread that owns the
/// request — see [`absorb_trace`].
pub fn take_trace() -> Vec<TraceEvent> {
    TRACE
        .try_with(|t| {
            t.try_borrow_mut()
                .map(|mut ring| ring.drain(..).collect())
                .unwrap_or_default()
        })
        .unwrap_or_default()
}

/// Appends events (typically a worker thread's [`take_trace`] result) to
/// the current thread's ring, evicting oldest entries past capacity.
pub fn absorb_trace(events: Vec<TraceEvent>) {
    for ev in events {
        push(ev);
    }
}

/// Clears the current thread's trace.
pub fn clear_trace() {
    let _ = TRACE.try_with(|t| {
        if let Ok(mut ring) = t.try_borrow_mut() {
            ring.clear();
        }
    });
}

/// Renders a trace as one human-readable line per event.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let at_us = ev.at_ns / 1_000;
        match ev.what {
            TraceWhat::Enter(p) => {
                out.push_str(&format!("[{at_us:>10} µs] enter {}\n", p.name()));
            }
            TraceWhat::Exit { phase, nanos } => {
                out.push_str(&format!(
                    "[{at_us:>10} µs] exit  {} ({:.3} ms)\n",
                    phase.name(),
                    nanos as f64 / 1e6
                ));
            }
            TraceWhat::Point(kind, 0) => {
                out.push_str(&format!("[{at_us:>10} µs] event {}\n", kind.name()));
            }
            TraceWhat::Point(kind, detail) => {
                out.push_str(&format!(
                    "[{at_us:>10} µs] event {} ({detail})\n",
                    kind.name()
                ));
            }
        }
    }
    out
}

fn phase_histograms() -> &'static [Histogram; Phase::ALL.len()] {
    static H: OnceLock<[Histogram; Phase::ALL.len()]> = OnceLock::new();
    H.get_or_init(|| {
        Phase::ALL
            .map(|p| crate::global().histogram_with("t4o_phase_nanos", Some(("phase", p.name()))))
    })
}

/// Forces registration of every per-phase histogram in the global
/// registry, so an exposition page shows all phase families even before
/// any span has run.
pub fn touch_phase_metrics() {
    let _ = phase_histograms();
}

/// An RAII phase marker. `enter` pushes an `Enter` trace event; dropping
/// pushes `Exit` with the measured duration and records it into the
/// global `t4o_phase_nanos{phase=...}` histogram. Inert (two relaxed
/// loads total) when observability is disabled.
#[derive(Debug)]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Span {
    /// Enters `phase` on the current thread.
    #[must_use = "a span measures until it is dropped; binding it to _ drops immediately"]
    pub fn enter(phase: Phase) -> Span {
        if !crate::enabled() {
            return Span { phase, start: None };
        }
        push(TraceEvent {
            at_ns: now_ns(),
            what: TraceWhat::Enter(phase),
        });
        Span {
            phase,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        push(TraceEvent {
            at_ns: now_ns(),
            what: TraceWhat::Exit {
                phase: self.phase,
                nanos,
            },
        });
        phase_histograms()[self.phase as usize].record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read the trace ring or toggle the global
    /// enabled switch, so `disabled_records_nothing`'s off-window cannot
    /// drop a concurrent test's events.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn span_records_enter_exit_and_histogram() {
        let _g = serial();
        clear_trace();
        {
            let _s = Span::enter(Phase::Bta);
        }
        let tr = trace();
        assert!(tr
            .iter()
            .any(|e| matches!(e.what, TraceWhat::Enter(Phase::Bta))));
        assert!(tr.iter().any(|e| matches!(
            e.what,
            TraceWhat::Exit {
                phase: Phase::Bta,
                ..
            }
        )));
        assert!(phase_histograms()[Phase::Bta as usize].count() >= 1);
        clear_trace();
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let _g = serial();
        clear_trace();
        let extra = 44;
        for i in 0..(TRACE_CAP as u64 + extra) {
            event_with(EventKind::Unfold, i);
        }
        let tr = trace();
        assert_eq!(tr.len(), TRACE_CAP);
        // The oldest `extra` events were evicted: the ring starts at
        // `extra` and ends at the last one pushed.
        assert_eq!(tr[0].what, TraceWhat::Point(EventKind::Unfold, extra));
        assert_eq!(
            tr[TRACE_CAP - 1].what,
            TraceWhat::Point(EventKind::Unfold, TRACE_CAP as u64 + extra - 1)
        );
        clear_trace();
    }

    #[test]
    fn take_and_absorb_move_events_between_threads() {
        let _g = serial();
        clear_trace();
        let carried = std::thread::spawn(|| {
            event(EventKind::MemoHit);
            event(EventKind::MemoMiss);
            take_trace()
        })
        .join()
        .unwrap_or_default();
        assert_eq!(carried.len(), 2);
        absorb_trace(carried);
        let tr = trace();
        assert!(tr
            .iter()
            .any(|e| e.what == TraceWhat::Point(EventKind::MemoHit, 0)));
        clear_trace();
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        clear_trace();
        crate::set_enabled(false);
        event(EventKind::Unfold);
        {
            let _s = Span::enter(Phase::Compile);
        }
        crate::set_enabled(true);
        assert!(trace().is_empty());
    }

    #[test]
    fn render_trace_is_line_per_event() {
        let events = vec![
            TraceEvent {
                at_ns: 1_000,
                what: TraceWhat::Enter(Phase::Specialize),
            },
            TraceEvent {
                at_ns: 2_000,
                what: TraceWhat::Point(EventKind::Unfold, 3),
            },
            TraceEvent {
                at_ns: 3_000,
                what: TraceWhat::Exit {
                    phase: Phase::Specialize,
                    nanos: 2_000,
                },
            },
        ];
        let text = render_trace(&events);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("enter specialize"));
        assert!(text.contains("event unfold (3)"));
        assert!(text.contains("exit  specialize"));
    }
}
