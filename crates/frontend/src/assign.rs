//! Assignment elimination.
//!
//! Mutated variables become heap cells: their binding wraps the value in
//! `box`, references become `unbox`, and `set!` becomes `set-box!`.
//! `letrec` whose right-hand sides are all lambdas (and whose binders are
//! never assigned) is *kept* for the lambda-lifting pass; any other
//! `letrec` is lowered to cells here.
//!
//! Requires the input to be alpha-renamed (all binders unique).

use crate::surface::{SExpr, STop};
use std::collections::HashSet;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::{Gensym, Symbol};

/// Runs assignment elimination over a renamed program.
pub fn eliminate_assignments(tops: Vec<STop>, gensym: &mut Gensym) -> Vec<STop> {
    // Pass 1: which variables are assigned anywhere?
    let mut mutated = HashSet::new();
    for t in &tops {
        collect_mutated(&t.body, &mut mutated);
    }
    // Pass 2: rewrite. `cellified` grows when non-lambda letrecs are lowered.
    tops.into_iter()
        .map(|t| {
            let mut cellified: HashSet<Symbol> = mutated.clone();
            let body = rewrite(t.body, &mut cellified, gensym);
            // Mutated parameters: rebind through a cell at function entry.
            let mut params = Vec::with_capacity(t.params.len());
            let mut body = body;
            for p in t.params.into_iter().rev() {
                if mutated.contains(&p) {
                    let raw = gensym.fresh(p.as_str());
                    body = SExpr::Let(
                        vec![(p, SExpr::Prim(Prim::BoxNew, vec![SExpr::Var(raw)]))],
                        Box::new(body),
                    );
                    params.push(raw);
                } else {
                    params.push(p);
                }
            }
            params.reverse();
            STop {
                name: t.name,
                params,
                body,
            }
        })
        .collect()
}

fn collect_mutated(e: &SExpr, out: &mut HashSet<Symbol>) {
    match e {
        SExpr::Set(x, rhs) => {
            out.insert(*x);
            collect_mutated(rhs, out);
        }
        SExpr::Lambda { body, .. } => collect_mutated(body, out),
        SExpr::If(a, b, c) => {
            collect_mutated(a, out);
            collect_mutated(b, out);
            collect_mutated(c, out);
        }
        SExpr::Let(bs, body) | SExpr::Letrec(bs, body) => {
            bs.iter().for_each(|(_, rhs)| collect_mutated(rhs, out));
            collect_mutated(body, out);
        }
        SExpr::Begin(es) => es.iter().for_each(|e| collect_mutated(e, out)),
        SExpr::App(f, args) => {
            collect_mutated(f, out);
            args.iter().for_each(|a| collect_mutated(a, out));
        }
        SExpr::Prim(_, args) => args.iter().for_each(|a| collect_mutated(a, out)),
        SExpr::Const(_) | SExpr::Var(_) => {}
    }
}

fn rewrite(e: SExpr, cellified: &mut HashSet<Symbol>, gensym: &mut Gensym) -> SExpr {
    match e {
        SExpr::Const(_) => e,
        SExpr::Var(x) => {
            if cellified.contains(&x) {
                SExpr::Prim(Prim::BoxRef, vec![SExpr::Var(x)])
            } else {
                SExpr::Var(x)
            }
        }
        SExpr::Set(x, rhs) => SExpr::Prim(
            Prim::BoxSet,
            vec![SExpr::Var(x), rewrite(*rhs, cellified, gensym)],
        ),
        SExpr::Lambda { name, params, body } => {
            let mut body = rewrite(*body, cellified, gensym);
            let mut new_params = Vec::with_capacity(params.len());
            for p in params.into_iter().rev() {
                if cellified.contains(&p) {
                    let raw = gensym.fresh(p.as_str());
                    body = SExpr::Let(
                        vec![(p, SExpr::Prim(Prim::BoxNew, vec![SExpr::Var(raw)]))],
                        Box::new(body),
                    );
                    new_params.push(raw);
                } else {
                    new_params.push(p);
                }
            }
            new_params.reverse();
            SExpr::Lambda {
                name,
                params: new_params,
                body: Box::new(body),
            }
        }
        SExpr::If(a, b, c) => SExpr::if_(
            rewrite(*a, cellified, gensym),
            rewrite(*b, cellified, gensym),
            rewrite(*c, cellified, gensym),
        ),
        SExpr::Let(bs, body) => {
            let bs = bs
                .into_iter()
                .map(|(x, rhs)| {
                    let rhs = rewrite(rhs, cellified, gensym);
                    if cellified.contains(&x) {
                        (x, SExpr::Prim(Prim::BoxNew, vec![rhs]))
                    } else {
                        (x, rhs)
                    }
                })
                .collect();
            SExpr::Let(bs, Box::new(rewrite(*body, cellified, gensym)))
        }
        SExpr::Letrec(bs, body) => {
            let keep = bs
                .iter()
                .all(|(x, rhs)| matches!(rhs, SExpr::Lambda { .. }) && !cellified.contains(x));
            if keep {
                let bs = bs
                    .into_iter()
                    .map(|(x, rhs)| (x, rewrite(rhs, cellified, gensym)))
                    .collect();
                SExpr::Letrec(bs, Box::new(rewrite(*body, cellified, gensym)))
            } else {
                // Lower to cells:
                //   (let ((x (box #f)) ...) (set-box! x rhs) ... body)
                for (x, _) in &bs {
                    cellified.insert(*x);
                }
                let binders: Vec<(Symbol, SExpr)> = bs
                    .iter()
                    .map(|(x, _)| {
                        (
                            *x,
                            SExpr::Prim(Prim::BoxNew, vec![SExpr::Const(Datum::Bool(false))]),
                        )
                    })
                    .collect();
                let mut seq: Vec<SExpr> = bs
                    .into_iter()
                    .map(|(x, rhs)| {
                        SExpr::Prim(
                            Prim::BoxSet,
                            vec![SExpr::Var(x), rewrite(rhs, cellified, gensym)],
                        )
                    })
                    .collect();
                seq.push(rewrite(*body, cellified, gensym));
                SExpr::Let(binders, Box::new(SExpr::Begin(seq)))
            }
        }
        SExpr::Begin(es) => SExpr::Begin(
            es.into_iter()
                .map(|e| rewrite(e, cellified, gensym))
                .collect(),
        ),
        SExpr::App(f, args) => SExpr::app(
            rewrite(*f, cellified, gensym),
            args.into_iter()
                .map(|a| rewrite(a, cellified, gensym))
                .collect(),
        ),
        SExpr::Prim(p, args) => SExpr::Prim(
            p,
            args.into_iter()
                .map(|a| rewrite(a, cellified, gensym))
                .collect(),
        ),
    }
}

/// True if the expression still contains a `set!` or a non-lambda `letrec`
/// (used to check the pass's postcondition in tests).
pub fn has_assignments(e: &SExpr) -> bool {
    match e {
        SExpr::Set(..) => true,
        SExpr::Letrec(bs, body) => {
            bs.iter()
                .any(|(_, rhs)| !matches!(rhs, SExpr::Lambda { .. }) || has_assignments(rhs))
                || has_assignments(body)
        }
        SExpr::Lambda { body, .. } => has_assignments(body),
        SExpr::If(a, b, c) => has_assignments(a) || has_assignments(b) || has_assignments(c),
        SExpr::Let(bs, body) => {
            bs.iter().any(|(_, rhs)| has_assignments(rhs)) || has_assignments(body)
        }
        SExpr::Begin(es) => es.iter().any(has_assignments),
        SExpr::App(f, args) => has_assignments(f) || args.iter().any(has_assignments),
        SExpr::Prim(_, args) => args.iter().any(has_assignments),
        SExpr::Const(_) | SExpr::Var(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar::desugar_program;
    use crate::rename::rename_program;
    use two4one_syntax::reader::read_all;

    fn pipeline(src: &str) -> Vec<STop> {
        let mut g = Gensym::new();
        let tops = desugar_program(&read_all(src).unwrap()).unwrap();
        let renamed = rename_program(tops, &mut g).unwrap();
        eliminate_assignments(renamed, &mut g)
    }

    #[test]
    fn set_is_gone() {
        let tops = pipeline(
            "(define (counter)
               (let ((n 0))
                 (lambda () (set! n (+ n 1)) n)))",
        );
        assert!(!has_assignments(&tops[0].body));
    }

    #[test]
    fn mutated_let_binding_boxed() {
        let tops = pipeline("(define (f) (let ((n 0)) (set! n 1) n))");
        match &tops[0].body {
            SExpr::Let(bs, _) => {
                assert!(matches!(bs[0].1, SExpr::Prim(Prim::BoxNew, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mutated_param_rebound_through_cell() {
        let tops = pipeline("(define (f x) (set! x 1) x)");
        // body = (let ((x (box x%raw))) (begin (set-box! x 1) (unbox x)))
        match &tops[0].body {
            SExpr::Let(bs, body) => {
                assert!(matches!(bs[0].1, SExpr::Prim(Prim::BoxNew, _)));
                assert!(matches!(**body, SExpr::Begin(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lambda_letrec_kept() {
        let tops = pipeline(
            "(define (f xs)
               (letrec ((len (lambda (l) (if (null? l) 0 (+ 1 (len (cdr l)))))))
                 (len xs)))",
        );
        assert!(matches!(&tops[0].body, SExpr::Letrec(..)));
    }

    #[test]
    fn value_letrec_lowered_to_cells() {
        let tops = pipeline("(define (f) (letrec ((x (cons 1 '()))) x))");
        match &tops[0].body {
            SExpr::Let(bs, body) => {
                assert!(matches!(bs[0].1, SExpr::Prim(Prim::BoxNew, _)));
                assert!(matches!(**body, SExpr::Begin(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unmutated_code_untouched() {
        let tops = pipeline("(define (f x) (+ x 1))");
        assert!(matches!(&tops[0].body, SExpr::Prim(Prim::Add, _)));
    }
}
