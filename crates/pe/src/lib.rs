//! The specializer — Fig. 3 of the paper, generic over the code backend.
//!
//! This is a continuation-based offline specializer for Annotated Core
//! Scheme, built around an explicit **staged-code IR**
//! ([`GenProgram`](two4one_vm::GenProgram)): the annotated source is first
//! *staged* ([`stage`]) into a flat instruction array — variables resolved
//! to lexical addresses, globals to definition indices, generic fallback
//! bodies pre-compiled — and specialization proper then executes that IR.
//! Two consumers exist:
//!
//! * the interpretive **walker** ([`walk`]) — the classical
//!   continuation-based engine (Bondorf; Lawall & Danvy), whose
//!   heap-allocated continuations make residual code come out in A-normal
//!   form;
//! * the **gen-ext machine** ([`genrun`]) — the staged IR run as bytecode
//!   with explicit continuation frames and slot-addressed environments:
//!   the compiled generating extension of the second Futamura projection.
//!   It emits bit-identical residual programs to the walker.
//!
//! Both are **generic over [`CodeBuilder`](two4one_anf::build::CodeBuilder)** — the reification of
//! the paper's Sec. 6.3. With `SourceBuilder` the system is the classical
//! source-to-source partial evaluator; with the compiler's `ObjectBuilder`
//! it *is* the fused run-time code generator: monomorphization plays the
//! role of deforestation (Sec. 5.4) and no residual syntax tree is ever
//! built.
//!
//! Memoization (Sec. 4's "standard" machinery, Thiemann 1996): calls to
//! functions marked [`CallPolicy::Memoize`](two4one_syntax::acs::CallPolicy::Memoize) are residualized; each distinct
//! tuple of static argument values produces one residual definition, driven
//! from a pending queue so cross-function work does not nest.

pub mod engine;
pub mod genrun;
pub mod staged;
pub mod walk;

pub use engine::SpecStats;
pub use genrun::run_genext;
pub use staged::stage;
pub use walk::specialize_staged;

use std::fmt;
use two4one_anf::build::CodeBuilder;
use two4one_syntax::acs::AProgram;
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::{Deadline, LimitExceeded, LimitKind, Limits};
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;
use two4one_syntax::value::PrimError;

/// Specializes `entry` with respect to `static_args`, producing a residual
/// program through the given backend.
///
/// Stages `prog` into the gen-ext IR and runs the interpretive walker over
/// it. Callers that specialize the same program repeatedly should
/// [`stage`] once and reuse the staged program (or compile it into a
/// gen-ext and use [`run_genext`]).
///
/// `static_args` are matched positionally against the *static* parameters
/// of the entry's division; its dynamic parameters become the parameters of
/// the residual entry definition (which keeps the entry's name).
///
/// # Errors
///
/// See [`PeError`].
pub fn specialize<B: CodeBuilder>(
    prog: &AProgram,
    entry: &Symbol,
    static_args: &[Datum],
    builder: B,
    options: &SpecOptions,
) -> Result<(B::Program, SpecStats), PeError> {
    let deadline = options.limits.deadline();
    specialize_with_deadline(prog, entry, static_args, builder, options, deadline)
}

/// Like [`specialize`], but runs under a caller-supplied [`Deadline`]
/// instead of starting one from `options.limits.timeout`. This is how a
/// serving layer threads a per-request deadline or a [`CancelToken`]
/// (see [`Deadline::with_cancel`]) into the specializer: the token is
/// checked at the same amortized points as the wall clock, so a
/// cancellation stops the run mid-specialization.
///
/// [`CancelToken`]: two4one_syntax::limits::CancelToken
pub fn specialize_with_deadline<B: CodeBuilder>(
    prog: &AProgram,
    entry: &Symbol,
    static_args: &[Datum],
    builder: B,
    options: &SpecOptions,
    deadline: Deadline,
) -> Result<(B::Program, SpecStats), PeError> {
    let staged = stage(prog)?;
    specialize_staged(&staged, entry, static_args, builder, options, deadline)
}

/// Tuning knobs for specialization.
///
/// The resource knobs live in [`Limits`] (shared with the rest of the
/// engine): [`Limits::unfold_fuel`] meters call unfolding,
/// [`Limits::max_depth`] bounds the specializer's own recursion,
/// [`Limits::memo_cap`] bounds the memoization cache,
/// [`Limits::code_cap`] bounds emitted residual code, and
/// [`Limits::timeout`] bounds wall-clock time.
///
/// `fallback` selects what happens when a *recoverable* limit is hit at a
/// call: with `true` (the default) the specializer degrades gracefully,
/// residualizing the call against a generically-compiled (all-dynamic)
/// version of the callee; with `false` it aborts with the corresponding
/// [`PeError`], which is useful in tests and when a limit overrun should
/// be loud.
#[derive(Debug, Clone)]
pub struct SpecOptions {
    /// Resource limits (see [`Limits`]).
    pub limits: Limits,
    /// Degrade gracefully at recoverable limits instead of aborting.
    pub fallback: bool,
}

impl Default for SpecOptions {
    fn default() -> Self {
        SpecOptions::new()
    }
}

impl SpecOptions {
    /// Governed limits with graceful fallback — the production default.
    pub fn new() -> Self {
        SpecOptions {
            limits: Limits::default(),
            fallback: true,
        }
    }

    /// The given limits with fallback disabled: limit overruns abort with
    /// a typed error instead of degrading.
    pub fn strict(limits: Limits) -> Self {
        SpecOptions {
            limits,
            fallback: false,
        }
    }
}

/// Errors during specialization.
#[derive(Debug, Clone, PartialEq)]
pub enum PeError {
    /// Entry point or callee not defined.
    NoSuchFunction(Symbol),
    /// Static application of a non-procedure.
    NotAProcedure(String),
    /// Wrong number of arguments in a static call.
    ArityMismatch {
        /// Callee.
        name: Symbol,
        /// Expected.
        expected: usize,
        /// Got.
        got: usize,
    },
    /// Wrong number of static arguments supplied to the entry point.
    StaticArgCount {
        /// Entry name.
        entry: Symbol,
        /// Static parameters of the entry.
        expected: usize,
        /// Static arguments supplied.
        got: usize,
    },
    /// A static primitive application failed at specialization time. Note
    /// that offline partial evaluation evaluates static code under dynamic
    /// conditionals *speculatively*, so this can fire for a branch the
    /// program would never take at run time.
    StaticPrim {
        /// The primitive.
        prim: Prim,
        /// The failure.
        error: PrimError,
    },
    /// A specialization-time closure reached a memoization key position;
    /// the binding-time analysis should have residualized it.
    ClosureInMemoKey(Symbol),
    /// Unfold fuel exhausted: static recursion did not terminate. Consider
    /// marking the offending function as a memoization point.
    UnfoldLimit(u64),
    /// Specializer recursion-depth limit exceeded; includes the unfold
    /// count at the point of failure for diagnosis.
    DepthLimit {
        /// Configured limit.
        limit: usize,
        /// Unfolds performed when the limit was hit.
        unfolds: u64,
    },
    /// A resource limit other than unfold fuel or depth was exceeded
    /// (deadline, memoization-cache cap, or emitted-code cap).
    Limit(LimitExceeded),
    /// Invariant violation (an annotation or specializer bug).
    Internal(String),
}

impl PeError {
    /// True for limit overruns the specializer can recover from at a
    /// top-level call boundary by residualizing the call against a
    /// generically-compiled version of the callee: unfold fuel, the memo
    /// cap, the code cap, and the deadline. Depth overruns (Rust-stack
    /// exhaustion) and genuine specialization errors are not recoverable.
    pub fn is_recoverable(&self) -> bool {
        match self {
            PeError::UnfoldLimit(_) => true,
            PeError::Limit(l) => matches!(
                l.kind,
                LimitKind::Deadline | LimitKind::MemoEntries | LimitKind::CodeSize
            ),
            _ => false,
        }
    }
}

impl fmt::Display for PeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeError::NoSuchFunction(g) => write!(f, "no top-level definition `{g}`"),
            PeError::NotAProcedure(v) => {
                write!(f, "static application of non-procedure {v}")
            }
            PeError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(f, "`{name}` expects {expected} argument(s), got {got}"),
            PeError::StaticArgCount {
                entry,
                expected,
                got,
            } => write!(
                f,
                "entry `{entry}` has {expected} static parameter(s), got {got} static argument(s)"
            ),
            PeError::StaticPrim { prim, error } => {
                write!(f, "static `{prim}` failed at specialization time: {error}")
            }
            PeError::ClosureInMemoKey(g) => write!(
                f,
                "closure in memoization key of `{g}`; this indicates a \
                 binding-time analysis bug"
            ),
            PeError::UnfoldLimit(n) => write!(
                f,
                "unfold fuel ({n}) exhausted: static recursion does not \
                 terminate — mark the function as a memoization point"
            ),
            PeError::DepthLimit { limit, unfolds } => write!(
                f,
                "specializer depth limit ({limit}) exceeded after {unfolds} \
                 unfolds"
            ),
            PeError::Limit(l) => write!(f, "specialization limit: {l}"),
            PeError::Internal(m) => write!(f, "internal specializer error: {m}"),
        }
    }
}

impl std::error::Error for PeError {}
