//! Deriving a MIXWELL compiler from the MIXWELL interpreter — the first
//! Futamura projection, with object code falling out directly (Sec. 7's
//! first benchmark subject).
//!
//! ```text
//! cargo run --example mixwell_compiler
//! ```

use two4one::{interpret, run_image, with_stack, Datum, Division, Pgg, BT};
use two4one_langs as langs;

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    // Building the PGG for the interpreter: mw-call is the specialization
    // point (one residual function per MIXWELL function).
    let mut pgg = Pgg::new();
    for (name, policy) in langs::mixwell_policies() {
        pgg = pgg.policy(name, policy);
    }
    let interp = pgg.parse(langs::MIXWELL_INTERP)?;

    // The generating extension of the interpreter *is* a compiler.
    let compiler = pgg.cogen(
        &interp,
        "mixwell-run",
        &Division::new([BT::Static, BT::Dynamic]),
    )?;

    let program = langs::mixwell_program();
    println!("MIXWELL input program:\n{program}\n");

    // Interpret (slow path).
    let args = Datum::list([Datum::Int(30)]);
    let slow = interpret(&interp, "mixwell-run", &[program.clone(), args.clone()])?;
    println!("interpreted  : {}", slow.value);

    // Compile by specialization — residual source first…
    let residual = compiler.specialize_source(std::slice::from_ref(&program))?;
    println!(
        "\nresidual (compiled) program, {} definitions:\n{}",
        residual.defs.len(),
        residual.to_source()
    );

    // …and then the fused path: object code directly.
    let image = compiler.specialize_object(&[program])?;
    let fast = run_image(&image, "mixwell-run", &[args])?;
    println!("compiled     : {}", fast.value);
    assert_eq!(slow.value, fast.value);
    println!(
        "\nobject code: {} templates, {} instructions total",
        image.templates.len(),
        image.code_size()
    );
    Ok(())
}
