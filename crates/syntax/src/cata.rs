//! The syntax functor and the generic recursion schema of Sec. 5.1–5.3.
//!
//! The paper treats syntax as the least fixed point of a functor
//! `MkSyntax` and describes compilers and specializers as *catamorphisms*:
//! per-construct functions `ev-const, ev-var, …` folded over the tree by a
//! generic recursion schema (Fig. 5). The fusion theorem of Sec. 5.4 is a
//! statement about such catamorphisms.
//!
//! [`ExprF`] is `MkSyntax` with the recursive positions abstracted to a
//! type parameter; [`cata`] is the recursion schema `cata_CS`. The ANF
//! compiler and the specializer in this workspace are written against
//! builder traits, which is the same idea with the algebra packaged as a
//! trait — this module keeps the paper's formulation available and is used
//! to state algebraic properties in tests.

use crate::cs::{Expr, Lambda};
use crate::datum::Datum;
use crate::prim::Prim;
use crate::symbol::Symbol;
use std::sync::Arc;

/// One layer of Core Scheme syntax with recursive positions of type `X` —
/// the functor `MkSyntax(X)` of Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprF<X> {
    /// `const c`
    Const(Datum),
    /// `var x`
    Var(Symbol),
    /// `lam (x₁…xₙ, body)`
    Lam {
        /// Name hint carried through from [`Lambda`].
        name: Symbol,
        /// Parameters.
        params: Vec<Symbol>,
        /// Body.
        body: X,
    },
    /// `if (t, c, a)`
    If(X, X, X),
    /// `let (x, rhs, body)`
    Let(Symbol, X, X),
    /// `app (f, args)`
    App(X, Vec<X>),
    /// `prim (op, args)`
    Prim(Prim, Vec<X>),
}

impl<X> ExprF<X> {
    /// The functorial action `MkSyntax(f)`: applies `f` to every recursive
    /// position, preserving the shape.
    pub fn map<Y>(self, mut f: impl FnMut(X) -> Y) -> ExprF<Y> {
        match self {
            ExprF::Const(d) => ExprF::Const(d),
            ExprF::Var(x) => ExprF::Var(x),
            ExprF::Lam { name, params, body } => ExprF::Lam {
                name,
                params,
                body: f(body),
            },
            ExprF::If(a, b, c) => ExprF::If(f(a), f(b), f(c)),
            ExprF::Let(x, rhs, body) => ExprF::Let(x, f(rhs), f(body)),
            ExprF::App(g, args) => ExprF::App(f(g), args.into_iter().map(f).collect()),
            ExprF::Prim(p, args) => ExprF::Prim(p, args.into_iter().map(f).collect()),
        }
    }

    /// The recursive subterms, in evaluation order.
    pub fn children(&self) -> Vec<&X> {
        match self {
            ExprF::Const(_) | ExprF::Var(_) => vec![],
            ExprF::Lam { body, .. } => vec![body],
            ExprF::If(a, b, c) => vec![a, b, c],
            ExprF::Let(_, rhs, body) => vec![rhs, body],
            ExprF::App(f, args) => {
                let mut v = vec![f];
                v.extend(args.iter());
                v
            }
            ExprF::Prim(_, args) => args.iter().collect(),
        }
    }
}

/// Unrolls one layer of an [`Expr`]: the initial-algebra structure map
/// inverse `Syntax → MkSyntax(Syntax)`.
pub fn project(e: &Expr) -> ExprF<&Expr> {
    match e {
        Expr::Const(d) => ExprF::Const(d.clone()),
        Expr::Var(x) => ExprF::Var(*x),
        Expr::Lambda(l) => ExprF::Lam {
            name: l.name,
            params: l.params.clone(),
            body: &l.body,
        },
        Expr::If(a, b, c) => ExprF::If(a, b, c),
        Expr::Let(x, rhs, body) => ExprF::Let(*x, rhs, body),
        Expr::App(f, args) => ExprF::App(f, args.iter().collect()),
        Expr::PrimApp(p, args) => ExprF::Prim(*p, args.iter().collect()),
    }
}

/// Rolls one layer back up: the structure map `MkSyntax(Syntax) → Syntax`.
pub fn embed(layer: ExprF<Expr>) -> Expr {
    match layer {
        ExprF::Const(d) => Expr::Const(d),
        ExprF::Var(x) => Expr::Var(x),
        ExprF::Lam { name, params, body } => Expr::Lambda(Arc::new(Lambda { name, params, body })),
        ExprF::If(a, b, c) => Expr::If(Box::new(a), Box::new(b), Box::new(c)),
        ExprF::Let(x, rhs, body) => Expr::Let(x, Box::new(rhs), Box::new(body)),
        ExprF::App(f, args) => Expr::App(Box::new(f), args),
        ExprF::Prim(p, args) => Expr::PrimApp(p, args),
    }
}

/// The generic recursion schema `cata_CS(ev)(-)` of Fig. 5: folds the
/// algebra `alg : MkSyntax(R) → R` over the expression.
///
/// # Example
///
/// Computing expression size as a catamorphism:
///
/// ```
/// use two4one_syntax::cata::{cata, ExprF};
/// use two4one_syntax::cs::parse_expr;
/// use two4one_syntax::reader::read_one;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let e = parse_expr(&read_one("(if a (+ b 1) c)")?)?;
/// let size = cata(&e, &mut |layer: ExprF<usize>| {
///     1 + layer.children().iter().map(|n| **n).sum::<usize>()
/// });
/// assert_eq!(size, e.size());
/// # Ok(())
/// # }
/// ```
pub fn cata<R>(e: &Expr, alg: &mut impl FnMut(ExprF<R>) -> R) -> R {
    let layer = project(e).map(|child| cata(child, alg));
    alg(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::parse_expr;
    use crate::reader::read_one;

    fn e(src: &str) -> Expr {
        parse_expr(&read_one(src).unwrap()).unwrap()
    }

    #[test]
    fn cata_reconstructs_identity() {
        // cata with the structure map is the identity — the initial-algebra
        // property that underlies the fusion theorem.
        for src in [
            "(lambda (x) (let ((y (+ x 1))) (if y (f y) 'done)))",
            "((lambda (f) (f f)) (lambda (g) 1))",
        ] {
            let expr = e(src);
            let back = cata(&expr, &mut embed);
            assert_eq!(back, expr);
        }
    }

    #[test]
    fn cata_counts_constants() {
        let expr = e("(+ 1 (if x 2 (g 3 4)))");
        let n = cata(&expr, &mut |layer: ExprF<usize>| match layer {
            ExprF::Const(_) => 1,
            other => other.children().iter().map(|n| **n).sum(),
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn functor_law_identity() {
        let expr = e("(let ((x 1)) x)");
        let layer = project(&expr);
        let mapped = layer.clone().map(|c| c);
        assert_eq!(mapped, layer);
    }

    #[test]
    fn children_in_evaluation_order() {
        let expr = e("(f a b)");
        let layer = project(&expr);
        assert_eq!(layer.children().len(), 3);
    }
}
