//! Persistent environments: immutable linked frames with O(1) extension.
//!
//! Shared by the interpreter and the specializer (which stores
//! partial-evaluation-time values in the same shape).
//!
//! A frame holds either a single binding or an inline slice of bindings
//! ([`Env::extend_many`]): binding all parameters of a call or unfold in
//! one frame costs one `Arc` instead of one per parameter, which matters
//! to the specializer — it rebuilds environments at every unfold.

use std::sync::Arc;
use two4one_syntax::symbol::Symbol;

/// A persistent environment mapping symbols to values of type `V`.
///
/// Extension is O(1) and does not affect other holders of the environment;
/// lookup is O(depth). Scopes in Core Scheme are shallow, so this is both
/// simple and fast.
#[derive(Debug)]
pub struct Env<V>(Option<Arc<Node<V>>>);

#[derive(Debug)]
enum Bindings<V> {
    /// A single binding, stored inline.
    One(Symbol, V),
    /// A whole parameter list bound at once.
    Many(Box<[(Symbol, V)]>),
}

#[derive(Debug)]
struct Node<V> {
    binds: Bindings<V>,
    next: Env<V>,
}

impl<V> Clone for Env<V> {
    fn clone(&self) -> Self {
        Env(self.0.clone())
    }
}

impl<V> Default for Env<V> {
    fn default() -> Self {
        Env(None)
    }
}

impl<V> Env<V> {
    /// The empty environment.
    pub fn empty() -> Self {
        Env(None)
    }
}

impl<V: Clone> Env<V> {
    /// Extends with one binding, returning the new environment.
    pub fn extend(&self, name: Symbol, value: V) -> Env<V> {
        Env(Some(Arc::new(Node {
            binds: Bindings::One(name, value),
            next: self.clone(),
        })))
    }

    /// Extends with a whole group of bindings in **one frame** (one `Arc`).
    /// Within the group, later bindings shadow earlier ones, exactly as if
    /// they had been [`Env::extend`]ed left to right.
    pub fn extend_many(&self, binds: impl IntoIterator<Item = (Symbol, V)>) -> Env<V> {
        let mut binds: Vec<(Symbol, V)> = binds.into_iter().collect();
        match binds.len() {
            0 => self.clone(),
            1 => {
                let (name, value) = binds.remove(0);
                self.extend(name, value)
            }
            _ => Env(Some(Arc::new(Node {
                binds: Bindings::Many(binds.into_boxed_slice()),
                next: self.clone(),
            }))),
        }
    }

    /// Looks up the innermost binding of `name`.
    pub fn lookup(&self, name: &Symbol) -> Option<V> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            match &node.binds {
                Bindings::One(n, v) => {
                    if n == name {
                        return Some(v.clone());
                    }
                }
                Bindings::Many(bs) => {
                    // Reverse: later bindings in the frame shadow earlier.
                    if let Some((_, v)) = bs.iter().rev().find(|(n, _)| n == name) {
                        return Some(v.clone());
                    }
                }
            }
            cur = &node.next.0;
        }
        None
    }

    /// True if `name` is bound.
    pub fn contains(&self, name: &Symbol) -> bool {
        let mut cur = &self.0;
        while let Some(node) = cur {
            let found = match &node.binds {
                Bindings::One(n, _) => n == name,
                Bindings::Many(bs) => bs.iter().any(|(n, _)| n == name),
            };
            if found {
                return true;
            }
            cur = &node.next.0;
        }
        false
    }

    /// Number of bindings (including shadowed ones).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = &self.0;
        while let Some(node) = cur {
            n += match &node.binds {
                Bindings::One(..) => 1,
                Bindings::Many(bs) => bs.len(),
            };
            cur = &node.next.0;
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_and_lookup() {
        let e = Env::empty();
        let e1 = e.extend(Symbol::new("x"), 1);
        let e2 = e1.extend(Symbol::new("y"), 2);
        assert_eq!(e2.lookup(&Symbol::new("x")), Some(1));
        assert_eq!(e2.lookup(&Symbol::new("y")), Some(2));
        assert_eq!(e1.lookup(&Symbol::new("y")), None);
        assert_eq!(e.lookup(&Symbol::new("x")), None);
    }

    #[test]
    fn shadowing_finds_innermost() {
        let e = Env::empty()
            .extend(Symbol::new("x"), 1)
            .extend(Symbol::new("x"), 2);
        assert_eq!(e.lookup(&Symbol::new("x")), Some(2));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn persistence() {
        let base = Env::empty().extend(Symbol::new("a"), 0);
        let left = base.extend(Symbol::new("b"), 1);
        let right = base.extend(Symbol::new("b"), 2);
        assert_eq!(left.lookup(&Symbol::new("b")), Some(1));
        assert_eq!(right.lookup(&Symbol::new("b")), Some(2));
        assert!(base.contains(&Symbol::new("a")));
        assert!(!base.contains(&Symbol::new("b")));
        assert!(Env::<i32>::empty().is_empty());
    }

    #[test]
    fn extend_many_binds_a_frame() {
        let e = Env::empty().extend_many([
            (Symbol::new("a"), 1),
            (Symbol::new("b"), 2),
            (Symbol::new("c"), 3),
        ]);
        assert_eq!(e.lookup(&Symbol::new("a")), Some(1));
        assert_eq!(e.lookup(&Symbol::new("b")), Some(2));
        assert_eq!(e.lookup(&Symbol::new("c")), Some(3));
        assert_eq!(e.len(), 3);
        assert!(e.contains(&Symbol::new("b")));
        assert!(!e.contains(&Symbol::new("d")));
    }

    #[test]
    fn extend_many_matches_sequential_shadowing() {
        // Duplicate names within one frame: the later binding wins, same
        // as chained extend.
        let many = Env::empty().extend_many([(Symbol::new("x"), 1), (Symbol::new("x"), 2)]);
        let seq = Env::empty()
            .extend(Symbol::new("x"), 1)
            .extend(Symbol::new("x"), 2);
        assert_eq!(
            many.lookup(&Symbol::new("x")),
            seq.lookup(&Symbol::new("x"))
        );
    }

    #[test]
    fn extend_many_of_zero_and_one() {
        let base = Env::empty().extend(Symbol::new("a"), 0);
        let same = base.extend_many(std::iter::empty());
        assert_eq!(same.len(), 1);
        let one = base.extend_many([(Symbol::new("b"), 1)]);
        assert_eq!(one.lookup(&Symbol::new("b")), Some(1));
    }

    #[test]
    fn outer_frames_still_visible_past_many() {
        let e = Env::empty()
            .extend(Symbol::new("outer"), 10)
            .extend_many([(Symbol::new("p"), 1), (Symbol::new("q"), 2)]);
        assert_eq!(e.lookup(&Symbol::new("outer")), Some(10));
    }
}
