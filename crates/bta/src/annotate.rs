//! Reconstruction: analysis results → Annotated Core Scheme with lifts.
//!
//! The `demand` flag means "this value must be residual code". A static
//! node under demand is wrapped in `lift` *at the outermost point* — the
//! specializer then evaluates the whole static subtree and inlines its
//! value as a constant, which is the essence of constant propagation by
//! partial evaluation.

use crate::analysis::{Analysis, Node, NodeId};
use std::sync::Arc;
use two4one_syntax::acs::{ADef, AExpr, ALambda, AParam, AProgram, CallPolicy, BT};

/// Builds the annotated program from a finished analysis.
pub fn reconstruct(a: &Analysis) -> AProgram {
    let defs = a
        .fns
        .iter()
        .enumerate()
        .map(|(g, f)| {
            let memo = a.memo_fn[g];
            // Note: no `demand` on the body even for the entry and for
            // memoized functions — the specializer's Tail continuation
            // lifts static results at the boundary itself, and wrapping
            // the body in `lift` here would force *recursive unfoldings*
            // of the same definition to residualize their results.
            // Closures escaping through those boundaries are handled in
            // the analysis (escape rules), not by a syntactic lift.
            ADef {
                name: f.name,
                params: f
                    .params
                    .iter()
                    .map(|p| AParam {
                        name: *p,
                        bt: a.bt_var.get(p).copied().unwrap_or(BT::Static),
                    })
                    .collect(),
                body: annotate(a, f.body, false),
                policy: if memo {
                    CallPolicy::Memoize
                } else {
                    CallPolicy::Unfold
                },
                result_bt: a.result_fn[g],
            }
        })
        .collect();
    AProgram { defs }
}

fn annotate(a: &Analysis, n: NodeId, demand: bool) -> AExpr {
    let bt = a.bt_node[n];
    if demand && bt == BT::Static {
        debug_assert!(
            a.flow_node[n].is_empty(),
            "static node with procedure flow under demand: the fixpoint \
             should have residualized {:?}",
            a.flow_node[n]
        );
        return AExpr::Lift(Arc::new(annotate(a, n, false)));
    }
    match &a.nodes[n] {
        Node::Const(d) => AExpr::Const(d.clone()),
        Node::Var(x) => AExpr::Var(*x),
        Node::Lam(l) => {
            let info = &a.lams[*l];
            let lam = |body| {
                Arc::new(ALambda {
                    name: info.name,
                    params: info.params.clone(),
                    body,
                })
            };
            if a.dyn_lam[*l] {
                AExpr::LamD(lam(annotate(a, info.body, true)))
            } else {
                AExpr::Lam(lam(annotate(a, info.body, false)))
            }
        }
        Node::If(t, c, alt) => {
            let test_dynamic = a.bt_node[*t].is_dynamic();
            let result_dynamic = bt.is_dynamic();
            let branch_demand = result_dynamic;
            let (tc, cc, ac) = (
                annotate(a, *t, test_dynamic),
                annotate(a, *c, branch_demand),
                annotate(a, *alt, branch_demand),
            );
            if test_dynamic {
                AExpr::IfD(Arc::new(tc), Arc::new(cc), Arc::new(ac))
            } else {
                AExpr::If(Arc::new(tc), Arc::new(cc), Arc::new(ac))
            }
        }
        Node::Let(x, rhs, body) => AExpr::Let(
            *x,
            Arc::new(annotate(a, *rhs, false)),
            Arc::new(annotate(a, *body, demand)),
        ),
        Node::App(f, args) => {
            if a.bt_node[*f].is_dynamic() {
                AExpr::AppD(
                    Arc::new(annotate(a, *f, true)),
                    args.iter()
                        .map(|x| Arc::new(annotate(a, *x, true)))
                        .collect(),
                )
            } else {
                let callees = a.callees(*f);
                if callees.is_empty() {
                    // Degenerate: operator is static but no procedure can
                    // reach it (dead code or a type error at run time).
                    // Residualize conservatively.
                    return AExpr::AppD(
                        Arc::new(annotate(a, *f, true)),
                        args.iter()
                            .map(|x| Arc::new(annotate(a, *x, true)))
                            .collect(),
                    );
                }
                AExpr::App(
                    Arc::new(annotate(a, *f, false)),
                    args.iter()
                        .enumerate()
                        .map(|(i, x)| {
                            Arc::new(annotate(a, *x, a.site_param_bt(&callees, i).is_dynamic()))
                        })
                        .collect(),
                )
            }
        }
        Node::Prim(p, args) => {
            let all_static = args.iter().all(|x| !a.bt_node[*x].is_dynamic());
            if p.is_pure() && all_static {
                AExpr::Prim(
                    *p,
                    args.iter()
                        .map(|x| Arc::new(annotate(a, *x, false)))
                        .collect(),
                )
            } else {
                AExpr::PrimD(
                    *p,
                    args.iter()
                        .map(|x| Arc::new(annotate(a, *x, true)))
                        .collect(),
                )
            }
        }
    }
}

/// Well-formedness check for annotated programs, used in tests: no static
/// construct consumes a dynamic value, lifts wrap only static expressions,
/// and dynamic constructs only consume dynamic or lifted operands.
pub fn well_formed(a: &Analysis, prog: &AProgram) -> bool {
    // Spot-check the key invariant on the analysis side: every dynamic
    // lambda has dynamic parameters.
    let lams_ok = (0..a.lams.len()).all(|l| {
        !a.dyn_lam[l]
            || a.lams[l]
                .params
                .iter()
                .all(|p| a.bt_var.get(p).copied() == Some(BT::Dynamic))
    });
    // Memoized functions must have dynamic results.
    let fns_ok = prog
        .defs
        .iter()
        .all(|d| d.policy != CallPolicy::Memoize || d.result_bt == BT::Dynamic);
    lams_ok && fns_ok
}

#[allow(unused_imports)]
pub use self::well_formed as check_well_formed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Division, Options};
    use two4one_frontend::frontend;

    #[test]
    fn well_formedness_on_samples() {
        for (src, entry, div) in [
            (
                "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
                "power",
                vec![BT::Dynamic, BT::Static],
            ),
            (
                "(define (walk xs acc) (if (null? xs) acc (walk (cdr xs) (+ acc 1))))",
                "walk",
                vec![BT::Dynamic, BT::Dynamic],
            ),
            (
                "(define (mk n) (lambda (x) (+ x n)))",
                "mk",
                vec![BT::Static],
            ),
        ] {
            let p = frontend(src).unwrap();
            let mut a =
                Analysis::build(&p, &entry.into(), &Division::new(div), &Options::default());
            a.run(&two4one_syntax::limits::Deadline::unlimited())
                .unwrap();
            let prog = reconstruct(&a);
            assert!(well_formed(&a, &prog), "{src}\n{prog}");
        }
    }
}
