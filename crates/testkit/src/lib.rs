//! Random-program generators and fault injection for testing.
//!
//! The central oracle of the workspace is *engine agreement*: the
//! tree-walking interpreter, the stock compiler + VM, and the specializer
//! must compute the same function. This crate generates random but
//! well-scoped Core Scheme programs (and random data) to drive those
//! comparisons, plus deterministic fault schedules ([`faults`]) for the
//! robustness suite.
//!
//! Everything is driven by the in-repo [`Rng`] (the workspace builds
//! offline, with no property-testing dependency): a test picks a range of
//! seeds, and each seed reproduces one case exactly.
//!
//! Program generation happens in two phases: first a *sketch* tree with de
//! Bruijn-ish variable indices, then a resolution pass that maps indices to
//! the variables actually in scope (or to literals when the scope is
//! empty), guaranteeing closed programs with unique binders.

pub mod faults;
pub mod rng;

pub use rng::Rng;

use std::sync::Arc;
use two4one_syntax::cs::{Def, Expr, Lambda, Program};
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// An expression sketch: variables are indices into the enclosing scope.
#[derive(Debug, Clone)]
pub enum Sketch {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// A variable, resolved modulo the scope size.
    Var(usize),
    /// Arithmetic on two subterms.
    Arith(Prim, Box<Sketch>, Box<Sketch>),
    /// Comparison producing a boolean.
    Cmp(Prim, Box<Sketch>, Box<Sketch>),
    /// Conditional.
    If(Box<Sketch>, Box<Sketch>, Box<Sketch>),
    /// Let binding.
    Let(Box<Sketch>, Box<Sketch>),
    /// Immediately applied unary lambda (keeps arities trivially correct).
    ApplyLambda(Box<Sketch>, Box<Sketch>),
    /// A lambda passed to a higher-order global.
    CallGlobal(usize, Box<Sketch>, Box<Sketch>),
    /// Pair construction and access (kept total by construction/selection
    /// pairing).
    ConsCar(Box<Sketch>, Box<Sketch>),
}

const ARITH: &[Prim] = &[Prim::Add, Prim::Sub, Prim::Mul];
const CMP: &[Prim] = &[Prim::Lt, Prim::Le, Prim::NumEq, Prim::EqualP];

/// Generates a random sketch with at most `depth` levels of nesting.
pub fn gen_sketch(rng: &mut Rng, depth: usize) -> Sketch {
    if depth == 0 {
        return match rng.index(3) {
            0 => Sketch::Int(rng.range_i64(-20, 20)),
            1 => Sketch::Bool(rng.flip()),
            _ => Sketch::Var(rng.index(8)),
        };
    }
    let d = depth - 1;
    match rng.index(8) {
        0 => Sketch::Int(rng.range_i64(-20, 20)),
        1 => Sketch::Arith(
            *rng.pick(ARITH),
            Box::new(gen_sketch(rng, d)),
            Box::new(gen_sketch(rng, d)),
        ),
        2 => Sketch::Cmp(
            *rng.pick(CMP),
            Box::new(gen_sketch(rng, d)),
            Box::new(gen_sketch(rng, d)),
        ),
        3 => Sketch::If(
            Box::new(gen_sketch(rng, d)),
            Box::new(gen_sketch(rng, d)),
            Box::new(gen_sketch(rng, d)),
        ),
        4 => Sketch::Let(Box::new(gen_sketch(rng, d)), Box::new(gen_sketch(rng, d))),
        5 => Sketch::ApplyLambda(Box::new(gen_sketch(rng, d)), Box::new(gen_sketch(rng, d))),
        6 => Sketch::CallGlobal(
            rng.index(GLOBALS.len()),
            Box::new(gen_sketch(rng, d)),
            Box::new(gen_sketch(rng, d)),
        ),
        _ => Sketch::ConsCar(Box::new(gen_sketch(rng, d)), Box::new(gen_sketch(rng, d))),
    }
}

/// Names and arities of the fixed global functions every generated program
/// defines.
const GLOBALS: &[(&str, usize)] = &[("gadd", 2), ("gsel", 2)];

struct Resolver {
    counter: u64,
}

impl Resolver {
    fn fresh(&mut self) -> Symbol {
        self.counter += 1;
        Symbol::new(&format!("v%{}", self.counter))
    }

    fn resolve(&mut self, s: &Sketch, scope: &[Symbol]) -> Expr {
        match s {
            Sketch::Int(n) => Expr::Const(Datum::Int(*n)),
            Sketch::Bool(b) => Expr::Const(Datum::Bool(*b)),
            Sketch::Var(i) => {
                if scope.is_empty() {
                    Expr::Const(Datum::Int(*i as i64))
                } else {
                    Expr::Var(scope[i % scope.len()])
                }
            }
            Sketch::Arith(p, a, b) => {
                Expr::PrimApp(*p, vec![self.resolve(a, scope), self.resolve(b, scope)])
            }
            Sketch::Cmp(p, a, b) => {
                Expr::PrimApp(*p, vec![self.resolve(a, scope), self.resolve(b, scope)])
            }
            Sketch::If(t, c, a) => Expr::if_(
                self.resolve(t, scope),
                self.resolve(c, scope),
                self.resolve(a, scope),
            ),
            Sketch::Let(r, b) => {
                let x = self.fresh();
                let rhs = self.resolve(r, scope);
                let mut inner = scope.to_vec();
                inner.push(x);
                Expr::let_(x, rhs, self.resolve(b, &inner))
            }
            Sketch::ApplyLambda(body, arg) => {
                let x = self.fresh();
                let mut inner = scope.to_vec();
                inner.push(x);
                let lam = Expr::Lambda(Arc::new(Lambda {
                    name: Symbol::new("anon"),
                    params: vec![x],
                    body: self.resolve(body, &inner),
                }));
                Expr::app(lam, vec![self.resolve(arg, scope)])
            }
            Sketch::CallGlobal(g, a, b) => {
                let (name, arity) = GLOBALS[g % GLOBALS.len()];
                debug_assert_eq!(arity, 2);
                Expr::app(
                    Expr::Var(Symbol::new(name)),
                    vec![self.resolve(a, scope), self.resolve(b, scope)],
                )
            }
            Sketch::ConsCar(a, b) => {
                // (car (cons a b)) — exercises pairs while staying total.
                let pair = Expr::PrimApp(
                    Prim::Cons,
                    vec![self.resolve(a, scope), self.resolve(b, scope)],
                );
                Expr::PrimApp(Prim::Car, vec![pair])
            }
        }
    }
}

/// Builds a closed program from sketches: fixed library globals plus a
/// two-parameter `main` whose body is the resolved sketch.
pub fn program_from_sketch(main_body: &Sketch, gadd_body: &Sketch) -> Program {
    let mut r = Resolver { counter: 0 };
    let a = Symbol::new("a%main");
    let b = Symbol::new("b%main");
    let main = Def {
        name: Symbol::new("main"),
        params: vec![a, b],
        body: r.resolve(main_body, &[a, b]),
    };
    let ga = Symbol::new("a%gadd");
    let gb = Symbol::new("b%gadd");
    let gadd = Def {
        name: Symbol::new("gadd"),
        params: vec![ga, gb],
        body: r.resolve(gadd_body, &[ga, gb]),
    };
    // gsel: a higher-orderish selector on plain values.
    let sa = Symbol::new("a%gsel");
    let sb = Symbol::new("b%gsel");
    let gsel = Def {
        name: Symbol::new("gsel"),
        params: vec![sa, sb],
        body: Expr::if_(
            Expr::PrimApp(Prim::Lt, vec![Expr::Var(sa), Expr::Var(sb)]),
            Expr::Var(sa),
            Expr::Var(sb),
        ),
    };
    Program {
        defs: vec![main, gadd, gsel],
    }
}

/// Generates a whole closed program (main body and `gadd` body are
/// independent random sketches).
pub fn gen_program(rng: &mut Rng) -> Program {
    let main = gen_sketch(rng, 5);
    let gadd = gen_sketch(rng, 4);
    program_from_sketch(&main, &gadd)
}

const SYM_HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const SYM_TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789!?<>=+*-";
const CHARS: &[char] = &['a', ' ', '\n', 'λ'];

/// Generates random first-order data (for reader/printer round-trips) with
/// at most `depth` levels of nesting.
pub fn gen_datum(rng: &mut Rng, depth: usize) -> Datum {
    if depth > 0 && rng.chance(2, 5) {
        return if rng.flip() {
            Datum::cons(gen_datum(rng, depth - 1), gen_datum(rng, depth - 1))
        } else {
            let n = rng.index(4);
            Datum::list(
                (0..n)
                    .map(|_| gen_datum(rng, depth - 1))
                    .collect::<Vec<_>>(),
            )
        };
    }
    match rng.index(6) {
        0 => Datum::Nil,
        1 => Datum::Bool(rng.flip()),
        2 => Datum::Int(rng.range_i64(-1000, 1000)),
        3 => {
            let mut s = String::new();
            s.push(*rng.pick(SYM_HEAD) as char);
            for _ in 0..rng.index(6) {
                s.push(*rng.pick(SYM_TAIL) as char);
            }
            Datum::sym(&s)
        }
        4 => {
            let mut s = String::new();
            for _ in 0..rng.index(8) {
                // Printable ASCII.
                s.push((0x20 + rng.below(0x5f) as u8) as char);
            }
            Datum::string(&s)
        }
        _ => Datum::Char(*rng.pick(CHARS)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_closed() {
        for seed in 0..200 {
            let p = gen_program(&mut Rng::new(seed));
            assert!(
                p.unbound_vars().is_empty(),
                "seed {seed}: {:?}",
                p.unbound_vars()
            );
        }
    }

    #[test]
    fn generated_programs_have_unique_binders() {
        // Collect all binders; uniqueness is what BTA requires.
        fn binders(e: &Expr, out: &mut Vec<Symbol>) {
            match e {
                Expr::Lambda(l) => {
                    out.extend(l.params.iter().cloned());
                    binders(&l.body, out);
                }
                Expr::Let(x, r, b) => {
                    out.push(*x);
                    binders(r, out);
                    binders(b, out);
                }
                Expr::If(a, b, c) => {
                    binders(a, out);
                    binders(b, out);
                    binders(c, out);
                }
                Expr::App(f, args) => {
                    binders(f, out);
                    args.iter().for_each(|a| binders(a, out));
                }
                Expr::PrimApp(_, args) => args.iter().for_each(|a| binders(a, out)),
                _ => {}
            }
        }
        for seed in 0..200 {
            let p = gen_program(&mut Rng::new(seed));
            let mut all = Vec::new();
            for d in &p.defs {
                all.extend(d.params.iter().cloned());
                binders(&d.body, &mut all);
            }
            let set: std::collections::HashSet<_> = all.iter().collect();
            assert_eq!(set.len(), all.len(), "seed {seed}");
        }
    }

    #[test]
    fn datum_generator_is_printable_and_deterministic() {
        for seed in 0..200 {
            let d1 = gen_datum(&mut Rng::new(seed), 4);
            let d2 = gen_datum(&mut Rng::new(seed), 4);
            assert_eq!(d1, d2, "seed {seed}");
            let _ = d1.to_string();
        }
    }
}
