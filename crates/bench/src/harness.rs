//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the usual benchmarking crates are
//! unavailable. This module reproduces exactly the slice of their API the
//! `benches/` files use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`/`iter_custom`, and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros — and reports the
//! median and minimum per-iteration time for each benchmark.
//!
//! Set `T4O_BENCH_SAMPLES` to override the sample count (e.g. `=3` for a
//! smoke run in CI).

use std::time::{Duration, Instant};

/// Harness entry point; one per benchmark binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: default_samples(),
            results: Vec::new(),
        }
    }
}

/// One finished measurement, for programmatic consumption (e.g. writing a
/// trajectory JSON file next to the printed report).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within its group.
    pub id: String,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Minimum per-iteration time across samples.
    pub min: Duration,
}

fn default_samples() -> usize {
    std::env::var("T4O_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// A group of measurements sharing a heading and sample count.
pub struct Group {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Group {
    /// Sets how many samples to take per benchmark (the env override
    /// `T4O_BENCH_SAMPLES` wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var_os("T4O_BENCH_SAMPLES").is_none() && n > 0 {
            self.samples = n;
        }
        self
    }

    /// Measures one benchmark: runs `f` once per sample and prints the
    /// median and minimum per-iteration time.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { per_iter: None };
            f(&mut b);
            if let Some(d) = b.per_iter {
                times.push(d);
            }
        }
        if times.is_empty() {
            println!("  {id}: no measurement");
            return self;
        }
        times.sort();
        let median = times[times.len() / 2];
        let min = times[0];
        println!("  {id}: median {}  min {}", fmt(median), fmt(min));
        self.results.push(BenchResult {
            id: id.to_string(),
            median,
            min,
        });
        self
    }

    /// Ends the group (kept for API compatibility; printing is eager).
    pub fn finish(&mut self) {}

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Writes a group's results as a small JSON trajectory file (one object
/// per measurement), so successive runs can be compared across PRs.
///
/// # Errors
///
/// Propagates I/O failures from writing `path`.
pub fn write_json(path: impl AsRef<std::path::Path>, group: &Group) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"group\": \"{}\",\n", escape(group.name())));
    out.push_str("  \"results\": [\n");
    for (i, r) in group.results().iter().enumerate() {
        let comma = if i + 1 == group.results().len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}}}{comma}\n",
            escape(&r.id),
            r.median.as_nanos(),
            r.min.as_nanos()
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to the benchmark closure; records one sample.
pub struct Bencher {
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `f` directly, auto-scaling the iteration count so one sample
    /// takes at least ~2 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.per_iter = Some(elapsed / iters.max(1) as u32);
                return;
            }
            iters *= 4;
        }
    }

    /// Lets the closure time `iters` iterations itself (for setup-heavy
    /// benchmarks) and records the per-iteration cost.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let mut iters: u64 = 1;
        loop {
            let elapsed = f(iters);
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.per_iter = Some(elapsed / iters.max(1) as u32);
                return;
            }
            iters *= 4;
        }
    }
}

/// Builds the function `criterion_group!` names from a list of benchmark
/// functions, mirroring the classic macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` for a benchmark binary, mirroring the classic macro.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            $name();
        }
    };
}
