//! Network-layer counters, mirroring the serving layer's
//! `ServeStats`/`ServeSnapshot` discipline: one cell struct registered in
//! a metrics registry (so every family appears, zero-valued, from
//! construction), one stable snapshot struct whose `fields()` array is
//! the single source for the human-readable line, the JSON rendering,
//! and the test assertions.

use std::fmt;

use two4one::obs;

/// Counters maintained by the network front end, registered as
/// `t4o_net_*` families.
#[derive(Debug, Default)]
pub(crate) struct NetStats {
    pub(crate) conns_accepted: obs::Counter,
    pub(crate) conns_rejected: obs::Counter,
    pub(crate) conns_reaped: obs::Counter,
    pub(crate) disconnects: obs::Counter,
    pub(crate) requests_http: obs::Counter,
    pub(crate) requests_bin: obs::Counter,
    pub(crate) responses_ok: obs::Counter,
    pub(crate) protocol_errors: obs::Counter,
    pub(crate) auth_failures: obs::Counter,
    pub(crate) tenant_rejections: obs::Counter,
    pub(crate) overloaded: obs::Counter,
    pub(crate) drain_events: obs::Counter,
    pub(crate) worker_panics: obs::Counter,
    pub(crate) match_registered: obs::Counter,
    pub(crate) match_rejected: obs::Counter,
    pub(crate) open_conns: obs::Gauge,
    pub(crate) request_latency: obs::Histogram,
}

/// The `(family name, snapshot field)` table — shared by registration and
/// [`init_metrics`], so the exposition surfaces can never drift from the
/// snapshot.
const FAMILIES: [&str; 15] = [
    "t4o_net_conns_accepted_total",
    "t4o_net_conns_rejected_total",
    "t4o_net_conns_reaped_total",
    "t4o_net_disconnects_total",
    "t4o_net_requests_http_total",
    "t4o_net_requests_bin_total",
    "t4o_net_responses_ok_total",
    "t4o_net_protocol_errors_total",
    "t4o_net_auth_failures_total",
    "t4o_net_tenant_rejections_total",
    "t4o_net_overloaded_total",
    "t4o_net_drain_events_total",
    "t4o_net_worker_panics_total",
    "t4o_match_registered_total",
    "t4o_match_rejected_total",
];

impl NetStats {
    /// Counters registered in `registry`; every family exists (at zero)
    /// from the moment the server is built.
    pub(crate) fn register(registry: &obs::MetricsRegistry) -> Self {
        NetStats {
            conns_accepted: registry.counter(FAMILIES[0]),
            conns_rejected: registry.counter(FAMILIES[1]),
            conns_reaped: registry.counter(FAMILIES[2]),
            disconnects: registry.counter(FAMILIES[3]),
            requests_http: registry.counter(FAMILIES[4]),
            requests_bin: registry.counter(FAMILIES[5]),
            responses_ok: registry.counter(FAMILIES[6]),
            protocol_errors: registry.counter(FAMILIES[7]),
            auth_failures: registry.counter(FAMILIES[8]),
            tenant_rejections: registry.counter(FAMILIES[9]),
            overloaded: registry.counter(FAMILIES[10]),
            drain_events: registry.counter(FAMILIES[11]),
            worker_panics: registry.counter(FAMILIES[12]),
            match_registered: registry.counter(FAMILIES[13]),
            match_rejected: registry.counter(FAMILIES[14]),
            open_conns: registry.gauge("t4o_net_open_conns"),
            request_latency: registry.histogram("t4o_net_request_nanos"),
        }
    }

    pub(crate) fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            conns_accepted: self.conns_accepted.get(),
            conns_rejected: self.conns_rejected.get(),
            conns_reaped: self.conns_reaped.get(),
            disconnects: self.disconnects.get(),
            requests_http: self.requests_http.get(),
            requests_bin: self.requests_bin.get(),
            responses_ok: self.responses_ok.get(),
            protocol_errors: self.protocol_errors.get(),
            auth_failures: self.auth_failures.get(),
            tenant_rejections: self.tenant_rejections.get(),
            overloaded: self.overloaded.get(),
            drain_events: self.drain_events.get(),
            worker_panics: self.worker_panics.get(),
            match_registered: self.match_registered.get(),
            match_rejected: self.match_rejected.get(),
            open_conns: self.open_conns.get().max(0) as u64,
        }
    }
}

/// Registers every `t4o_net_*` family, zero-valued, in the process-global
/// metrics registry. The CLI's `t4o stats` calls this so the families
/// appear on the exposition page even in a process that never bound a
/// listener; a live [`NetServer`](crate::NetServer) keeps its counters in
/// a private registry and merges them over these zeros at exposition
/// (merge sums duplicates, so the result is exact).
pub fn init_metrics() {
    let g = obs::global();
    for name in FAMILIES {
        let _ = g.counter(name);
    }
    let _ = g.gauge("t4o_net_open_conns");
    let _ = g.histogram("t4o_net_request_nanos");
}

/// A point-in-time copy of the network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections refused at accept because the global connection budget
    /// was full.
    pub conns_rejected: u64,
    /// Connections forcibly closed by deadline enforcement: slow-loris
    /// reads, stalled writes, idle keep-alives, and drain-timeout sheds.
    pub conns_reaped: u64,
    /// Client disconnects noticed while a request was in flight (each one
    /// fired the request's cancel token).
    pub disconnects: u64,
    /// HTTP requests parsed.
    pub requests_http: u64,
    /// Binary-protocol request frames parsed.
    pub requests_bin: u64,
    /// Successful responses written (both protocols).
    pub responses_ok: u64,
    /// Typed wire-protocol failures (torn frames, bad magic, checksum
    /// mismatches, malformed payloads, oversized HTTP heads).
    pub protocol_errors: u64,
    /// Requests denied for a missing or unknown tenant token.
    pub auth_failures: u64,
    /// Requests bounced off a tenant's fair-share quota.
    pub tenant_rejections: u64,
    /// Requests answered 429/`RESP_ERROR(429)` — tenant quota or the
    /// service's admission gate.
    pub overloaded: u64,
    /// Drain transitions (normally 0 or 1 per process).
    pub drain_events: u64,
    /// Panics caught at a connection-handler boundary. Always 0 unless
    /// there is a bug; the storm tests assert on it.
    pub worker_panics: u64,
    /// Grammars accepted (registered or redefined) through `REQ_GRAMMAR`.
    pub match_registered: u64,
    /// Grammar registrations rejected by the LL(1) front end.
    pub match_rejected: u64,
    /// Currently open connections.
    pub open_conns: u64,
}

impl NetSnapshot {
    /// The `(name, value)` pairs in declaration order — the single source
    /// for both renderings below.
    fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("conns_accepted", self.conns_accepted),
            ("conns_rejected", self.conns_rejected),
            ("conns_reaped", self.conns_reaped),
            ("disconnects", self.disconnects),
            ("requests_http", self.requests_http),
            ("requests_bin", self.requests_bin),
            ("responses_ok", self.responses_ok),
            ("protocol_errors", self.protocol_errors),
            ("auth_failures", self.auth_failures),
            ("tenant_rejections", self.tenant_rejections),
            ("overloaded", self.overloaded),
            ("drain_events", self.drain_events),
            ("worker_panics", self.worker_panics),
            ("match_registered", self.match_registered),
            ("match_rejected", self.match_rejected),
            ("open_conns", self.open_conns),
        ]
    }

    /// Renders the snapshot as a JSON object (the `/stats` endpoint).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let fields = self.fields();
        for (i, (name, value)) in fields.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": {value}"));
            out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
        }
        out.push('}');
        out
    }
}

/// The one formatter for the human-readable net-stats line printed by the
/// CLI at drain (`;; net: conns_accepted=… …`) — the companion of the
/// serving layer's `serve_stats_line`, and like it the only sanctioned
/// `format!` for this output.
pub fn net_stats_line(snapshot: &NetSnapshot) -> String {
    format!(";; net: {snapshot}")
}

impl fmt::Display for NetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_line_and_json_share_fields() {
        let registry = obs::MetricsRegistry::new();
        let stats = NetStats::register(&registry);
        stats.conns_accepted.inc();
        stats.conns_reaped.add(2);
        stats.open_conns.set(3);
        let snap = stats.snapshot();
        assert_eq!(snap.conns_accepted, 1);
        assert_eq!(snap.conns_reaped, 2);
        assert_eq!(snap.open_conns, 3);
        let line = net_stats_line(&snap);
        assert!(line.starts_with(";; net: "));
        assert!(line.contains("conns_reaped=2"));
        assert!(snap.to_json().contains("\"conns_reaped\": 2"));
        // Every family is present in the registry from construction.
        let page = registry.snapshot().to_prometheus();
        assert!(page.contains("t4o_net_conns_reaped_total"));
        assert!(page.contains("t4o_net_worker_panics_total"));
        assert!(page.contains("t4o_net_open_conns"));
    }

    #[test]
    fn init_metrics_registers_global_families() {
        init_metrics();
        let page = obs::global().snapshot().to_prometheus();
        assert!(page.contains("t4o_net_conns_accepted_total"));
        assert!(page.contains("t4o_net_drain_events_total"));
        assert!(page.contains("t4o_match_registered_total"));
        assert!(page.contains("t4o_match_rejected_total"));
    }
}
