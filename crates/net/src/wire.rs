//! The length-prefixed binary protocol.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"T4OW"
//! 4       1     version (currently 1)
//! 5       1     frame type
//! 6       2     reserved (must be zero)
//! 8       4     payload length
//! 12      4     CRC-32 of the payload
//! 16      len   payload
//! ```
//!
//! The payload of a successful [`RESP_OBJECT`] / [`RESP_GENEXT`] frame is
//! the raw `.t4o` / `.t4og` object bytes — the server writes them straight
//! from the cached artifact to the socket (no re-encoding, no intermediate
//! frame buffer), so a warm hit streams zero-copy from the cache.
//!
//! Every decoding failure is a typed [`ProtocolError`], never a panic:
//! torn frames, garbage magic, checksum mismatches, and oversized lengths
//! all map to distinct variants, mirroring the `.t4os` snapshot
//! quarantine discipline. After a framing error the byte stream can no
//! longer be trusted (the decoder has lost sync), so the connection loop
//! reports the error and closes; the *accept* loop — and every other
//! connection — keeps serving.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every binary-protocol frame (and
/// how the server tells the binary protocol from HTTP on a new
/// connection).
pub const MAGIC: [u8; 4] = *b"T4OW";

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Specialize a registered program (payload: [`SpecWireRequest`]).
pub const REQ_SPEC: u8 = 0x01;
/// Register (or redefine) a program under a logical name (payload:
/// [`RegisterWireRequest`]).
pub const REQ_REGISTER: u8 = 0x02;
/// Liveness probe; the server answers [`RESP_PONG`].
pub const REQ_PING: u8 = 0x03;
/// Register (or redefine) a *grammar* under a logical name (payload:
/// [`GrammarWireRequest`]). The server compiles the grammar text into a
/// matcher workload — the grammar embedded static, the input word dynamic
/// — so a subsequent [`REQ_SPEC`] for the name (with no statics) answers
/// with the compiled recognizer.
pub const REQ_GRAMMAR: u8 = 0x04;

/// Success: payload is raw `.t4o` object bytes.
pub const RESP_OBJECT: u8 = 0x81;
/// Success: payload is a JSON document describing the outcome.
pub const RESP_META: u8 = 0x82;
/// Success: payload is raw `.t4og` compiled gen-ext bytes.
pub const RESP_GENEXT: u8 = 0x83;
/// Answer to [`REQ_PING`]; empty payload.
pub const RESP_PONG: u8 = 0x84;
/// Failure: payload is code + retry hint + message (see [`WireError`]).
pub const RESP_ERROR: u8 = 0x7f;

/// `want` value: the client asks for JSON metadata ([`RESP_META`]).
pub const WANT_META: u8 = 0;
/// `want` value: the client asks for `.t4o` object bytes ([`RESP_OBJECT`]).
pub const WANT_OBJECT: u8 = 1;
/// `want` value: the client asks for the registered program's compiled
/// generating extension as `.t4og` bytes ([`RESP_GENEXT`]).
pub const WANT_GENEXT: u8 = 2;

/// CRC-32 (IEEE, reflected) — the same polynomial and idiom as the
/// `.t4o`/`.t4os` container formats, so a flipped payload bit is caught
/// here exactly like it would be in a snapshot record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for b in bytes {
        crc ^= u32::from(*b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// A typed wire-protocol failure. The decoding path can produce every
/// variant; none of them can panic the server.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The first four bytes of a frame were not [`MAGIC`] — the peer is
    /// speaking some other protocol or sent garbage.
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame type for this direction.
    UnknownType(u8),
    /// Declared payload length exceeds the configured cap. Checked
    /// *before* allocating, so a hostile length cannot OOM the server.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The configured cap.
        max: u64,
    },
    /// The peer closed (or the stream ended) mid-frame.
    Torn {
        /// Bytes still needed to complete the frame part being read.
        needed: usize,
        /// Bytes actually received for that part.
        got: usize,
    },
    /// Payload CRC-32 mismatch: the frame arrived complete but corrupt.
    BadChecksum {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The frame decoded but its payload is malformed for its type.
    BadPayload(&'static str),
    /// The underlying socket failed (reset, timeout, …).
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap {max}")
            }
            ProtocolError::Torn { needed, got } => {
                write!(f, "torn frame: needed {needed} more bytes, got {got}")
            }
            ProtocolError::BadChecksum { declared, computed } => write!(
                f,
                "payload checksum mismatch (declared {declared:#010x}, computed {computed:#010x})"
            ),
            ProtocolError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// One decoded frame: its type byte and verified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame-type byte (`REQ_*` / `RESP_*`).
    pub ftype: u8,
    /// The payload, already CRC-verified.
    pub payload: Vec<u8>,
}

/// Encodes a complete frame (header + payload) into one buffer. Useful
/// for clients and tests; the server-side response path writes the header
/// and the payload separately to avoid copying large object payloads.
pub fn encode_frame(ftype: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header_bytes(ftype, payload));
    out.extend_from_slice(payload);
    out
}

/// The 16-byte header for a frame of type `ftype` carrying `payload`.
pub fn header_bytes(ftype: u8, payload: &[u8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h[5] = ftype;
    // bytes 6..8 reserved, zero
    h[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Writes a frame: header, then payload, straight to `w` — the payload
/// bytes are never copied into an intermediate frame buffer.
///
/// # Errors
///
/// Any socket write failure.
pub fn write_frame(w: &mut impl Write, ftype: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&header_bytes(ftype, payload))?;
    w.write_all(payload)
}

/// Reads exactly `buf.len()` bytes, reporting a clean end-of-stream
/// (`Ok(n < len)`) instead of an error so the caller can tell a torn
/// frame from a peer that closed between frames.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Reads one frame. Returns `Ok(None)` when the peer closed cleanly at a
/// frame boundary (zero header bytes read) — the normal end of a
/// keep-alive connection.
///
/// # Errors
///
/// Every malformed input maps to a typed [`ProtocolError`]; `max_payload`
/// is enforced before any allocation.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Option<Frame>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(ProtocolError::Torn {
            needed: HEADER_LEN - got,
            got,
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&header[0..4]);
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    if header[6] != 0 || header[7] != 0 {
        return Err(ProtocolError::BadPayload("nonzero reserved header bytes"));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let declared = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    if len > max_payload {
        return Err(ProtocolError::FrameTooLarge {
            len: len as u64,
            max: max_payload as u64,
        });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(ProtocolError::Torn {
            needed: len - got,
            got,
        });
    }
    let computed = crc32(&payload);
    if computed != declared {
        return Err(ProtocolError::BadChecksum { declared, computed });
    }
    Ok(Some(Frame {
        ftype: header[5],
        payload,
    }))
}

// ---- payload encoding helpers ------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(buf: &[u8], at: &mut usize) -> Result<u32, ProtocolError> {
    let end = at
        .checked_add(4)
        .ok_or(ProtocolError::BadPayload("offset overflow"))?;
    let bytes = buf
        .get(*at..end)
        .ok_or(ProtocolError::BadPayload("truncated integer"))?;
    *at = end;
    Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

fn get_u8(buf: &[u8], at: &mut usize) -> Result<u8, ProtocolError> {
    let b = *buf
        .get(*at)
        .ok_or(ProtocolError::BadPayload("truncated byte"))?;
    *at += 1;
    Ok(b)
}

fn get_str(buf: &[u8], at: &mut usize) -> Result<String, ProtocolError> {
    let len = get_u32(buf, at)? as usize;
    let end = at
        .checked_add(len)
        .ok_or(ProtocolError::BadPayload("string length overflow"))?;
    let bytes = buf
        .get(*at..end)
        .ok_or(ProtocolError::BadPayload("truncated string"))?;
    *at = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadPayload("non-UTF-8 string"))
}

// ---- request payloads --------------------------------------------------

/// A [`REQ_SPEC`] payload: specialize the program registered under
/// `name` to the rendered `statics`, answering with what `want` asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecWireRequest {
    /// Tenant auth token (empty in open mode).
    pub token: String,
    /// Logical program name (see [`REQ_REGISTER`]).
    pub name: String,
    /// Static arguments as rendered datums separated by whitespace, e.g.
    /// `"5"` or `"5 (a b)"` — one datum per static slot of the division.
    pub statics: String,
    /// Per-request deadline in milliseconds; `0` means "server default".
    pub deadline_ms: u32,
    /// One of [`WANT_META`], [`WANT_OBJECT`], [`WANT_GENEXT`].
    pub want: u8,
}

impl SpecWireRequest {
    /// Renders the payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.token);
        put_str(&mut out, &self.name);
        put_str(&mut out, &self.statics);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.push(self.want);
        out
    }

    /// Parses a [`REQ_SPEC`] payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] on any malformed field.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut at = 0;
        let token = get_str(payload, &mut at)?;
        let name = get_str(payload, &mut at)?;
        let statics = get_str(payload, &mut at)?;
        let deadline_ms = get_u32(payload, &mut at)?;
        let want = get_u8(payload, &mut at)?;
        if want > WANT_GENEXT {
            return Err(ProtocolError::BadPayload("unknown `want` selector"));
        }
        if at != payload.len() {
            return Err(ProtocolError::BadPayload("trailing bytes after request"));
        }
        Ok(SpecWireRequest {
            token,
            name,
            statics,
            deadline_ms,
            want,
        })
    }
}

/// A [`REQ_REGISTER`] payload: register (or redefine) `source` under the
/// logical `name`, specializing `entry` with the binding-time `division`
/// (a string of `S`/`D` letters, one per parameter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterWireRequest {
    /// Tenant auth token (empty in open mode).
    pub token: String,
    /// Logical name to register under.
    pub name: String,
    /// Program source text.
    pub source: String,
    /// Entry procedure name.
    pub entry: String,
    /// Binding-time division letters, e.g. `"SD"`.
    pub division: String,
}

impl RegisterWireRequest {
    /// Renders the payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.token);
        put_str(&mut out, &self.name);
        put_str(&mut out, &self.source);
        put_str(&mut out, &self.entry);
        put_str(&mut out, &self.division);
        out
    }

    /// Parses a [`REQ_REGISTER`] payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] on any malformed field.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut at = 0;
        let token = get_str(payload, &mut at)?;
        let name = get_str(payload, &mut at)?;
        let source = get_str(payload, &mut at)?;
        let entry = get_str(payload, &mut at)?;
        let division = get_str(payload, &mut at)?;
        if at != payload.len() {
            return Err(ProtocolError::BadPayload("trailing bytes after request"));
        }
        Ok(RegisterWireRequest {
            token,
            name,
            source,
            entry,
            division,
        })
    }
}

/// A [`REQ_GRAMMAR`] payload: register (or redefine) the grammar `text`
/// under the logical `name`. Unlike [`REQ_REGISTER`], the server owns the
/// program construction: it validates the grammar (typed 400 on anything
/// outside the LL(1) subset), splices it into the matcher interpreter,
/// and applies the matcher's unfold/memoize policies — none of which the
/// generic register frame can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarWireRequest {
    /// Tenant auth token (empty in open mode).
    pub token: String,
    /// Logical name to register under.
    pub name: String,
    /// Grammar source text (one rule-list datum).
    pub text: String,
}

impl GrammarWireRequest {
    /// Renders the payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.token);
        put_str(&mut out, &self.name);
        put_str(&mut out, &self.text);
        out
    }

    /// Parses a [`REQ_GRAMMAR`] payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] on any malformed field.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut at = 0;
        let token = get_str(payload, &mut at)?;
        let name = get_str(payload, &mut at)?;
        let text = get_str(payload, &mut at)?;
        if at != payload.len() {
            return Err(ProtocolError::BadPayload("trailing bytes after request"));
        }
        Ok(GrammarWireRequest { token, name, text })
    }
}

// ---- error responses ---------------------------------------------------

/// A decoded [`RESP_ERROR`] payload. `code` reuses HTTP semantics so one
/// table covers both protocols: 400 bad request, 401 bad token, 404
/// unknown program, 408 deadline, 429 overloaded (with `retry_after_ms`),
/// 499 cancelled, 500 specialization failure, 503 draining/breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// HTTP-style status code.
    pub code: u16,
    /// Backoff hint in milliseconds; `0` when not applicable.
    pub retry_after_ms: u64,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Renders the payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.code.to_le_bytes());
        out.extend_from_slice(&self.retry_after_ms.to_le_bytes());
        put_str(&mut out, &self.message);
        out
    }

    /// Parses a [`RESP_ERROR`] payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] on any malformed field.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let code_bytes = payload
            .get(0..2)
            .ok_or(ProtocolError::BadPayload("truncated error code"))?;
        let retry_bytes = payload
            .get(2..10)
            .ok_or(ProtocolError::BadPayload("truncated retry hint"))?;
        let code = u16::from_le_bytes([code_bytes[0], code_bytes[1]]);
        let retry_after_ms = u64::from_le_bytes([
            retry_bytes[0],
            retry_bytes[1],
            retry_bytes[2],
            retry_bytes[3],
            retry_bytes[4],
            retry_bytes[5],
            retry_bytes[6],
            retry_bytes[7],
        ]);
        let mut at = 10;
        let message = get_str(payload, &mut at)?;
        if at != payload.len() {
            return Err(ProtocolError::BadPayload("trailing bytes after error"));
        }
        Ok(WireError {
            code,
            retry_after_ms,
            message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let req = SpecWireRequest {
            token: "tok".into(),
            name: "pow".into(),
            statics: "5".into(),
            deadline_ms: 250,
            want: WANT_OBJECT,
        };
        let bytes = encode_frame(REQ_SPEC, &req.encode());
        let frame = read_frame(&mut Cursor::new(&bytes), 1 << 20)
            .expect("decode")
            .expect("not eof");
        assert_eq!(frame.ftype, REQ_SPEC);
        assert_eq!(
            SpecWireRequest::decode(&frame.payload).expect("payload"),
            req
        );
    }

    #[test]
    fn clean_close_between_frames_is_none() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut Cursor::new(empty), 1024)
            .expect("clean eof")
            .is_none());
    }

    #[test]
    fn torn_header_and_payload_are_typed() {
        let bytes = encode_frame(REQ_PING, &[]);
        let torn = &bytes[..HEADER_LEN - 3];
        assert!(matches!(
            read_frame(&mut Cursor::new(torn), 1024),
            Err(ProtocolError::Torn { needed: 3, .. })
        ));
        let req = WireError {
            code: 400,
            retry_after_ms: 0,
            message: "x".into(),
        };
        let full = encode_frame(RESP_ERROR, &req.encode());
        let torn = &full[..full.len() - 2];
        assert!(matches!(
            read_frame(&mut Cursor::new(torn), 1024),
            Err(ProtocolError::Torn { needed: 2, .. })
        ));
    }

    #[test]
    fn bad_magic_version_checksum_and_length() {
        let mut bytes = encode_frame(REQ_PING, b"abc");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), 1024),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut bytes = encode_frame(REQ_PING, b"abc");
        bytes[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), 1024),
            Err(ProtocolError::BadVersion(9))
        ));
        let mut bytes = encode_frame(REQ_PING, b"abc");
        bytes[HEADER_LEN] ^= 0x40; // flip a payload bit
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), 1024),
            Err(ProtocolError::BadChecksum { .. })
        ));
        let bytes = encode_frame(REQ_PING, &[0u8; 64]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), 16),
            Err(ProtocolError::FrameTooLarge { len: 64, max: 16 })
        ));
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        // A header declaring a 4 GiB payload must fail on the cap check,
        // not attempt the allocation.
        let mut h = header_bytes(REQ_PING, &[]);
        h[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&h[..]), 1 << 20),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn grammar_payload_roundtrip_and_truncations() {
        let req = GrammarWireRequest {
            token: String::new(),
            name: "ident".into(),
            text: "((w (star a) b))".into(),
        };
        assert_eq!(
            GrammarWireRequest::decode(&req.encode()).expect("grammar"),
            req
        );
        assert!(GrammarWireRequest::decode(&[]).is_err());
        let mut p = req.encode();
        p.push(0); // trailing byte
        assert!(matches!(
            GrammarWireRequest::decode(&p),
            Err(ProtocolError::BadPayload("trailing bytes after request"))
        ));
    }

    #[test]
    fn register_and_error_payload_roundtrip() {
        let reg = RegisterWireRequest {
            token: "t".into(),
            name: "pow".into(),
            source: "(define (f x) x)".into(),
            entry: "f".into(),
            division: "SD".into(),
        };
        assert_eq!(
            RegisterWireRequest::decode(&reg.encode()).expect("register"),
            reg
        );
        let err = WireError {
            code: 429,
            retry_after_ms: 70,
            message: "overloaded".into(),
        };
        assert_eq!(WireError::decode(&err.encode()).expect("error"), err);
    }

    #[test]
    fn malformed_payloads_are_typed_not_panics() {
        // Truncations, bogus lengths, and bad UTF-8 all land in
        // BadPayload.
        assert!(SpecWireRequest::decode(&[]).is_err());
        assert!(SpecWireRequest::decode(&[0xff; 3]).is_err());
        let mut p = Vec::new();
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // string "longer than payload"
        assert!(matches!(
            SpecWireRequest::decode(&p),
            Err(ProtocolError::BadPayload(_))
        ));
        let mut p = Vec::new();
        p.extend_from_slice(&2u32.to_le_bytes());
        p.extend_from_slice(&[0xc3, 0x28]); // invalid UTF-8
        assert!(matches!(
            SpecWireRequest::decode(&p),
            Err(ProtocolError::BadPayload("non-UTF-8 string"))
        ));
        assert!(WireError::decode(&[1]).is_err());
        assert!(RegisterWireRequest::decode(&[9, 9]).is_err());
    }
}
