//! Prints the paper's Figures 6–8 as tables with measured numbers next to
//! the published 1997 values (Pentium/90 seconds). Absolute values are not
//! comparable across 30 years of hardware; the *shape* — who wins, by what
//! rough factor — is what reproduces.
//!
//! ```text
//! cargo run --release -p two4one-bench --bin tables
//! ```

use std::time::Duration;
use two4one::{compile_source_text, with_stack, Division};
use two4one_bench::{paper, subjects, time_min, Subject};

const REPS: u32 = 12;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    println!("# two4one — paper table reproduction\n");
    println!("(times in milliseconds, best of {REPS} runs, this machine;");
    println!(" paper times in seconds on a Pentium/90 — compare *ratios*, not values)\n");
    fig6();
    fig7();
    fig8();
    trajectories();
    metrics_snapshot();
}

/// Dumps the process-global metrics page after all the measurements
/// above: every parse/BTA/specialize/compile the tables ran shows up in
/// the phase histograms and specializer counters — the first-class
/// replacement for the hand-rolled phase split this binary used to be
/// the only source of.
fn metrics_snapshot() {
    println!("## Metrics snapshot (process-global registry)\n");
    println!("```text");
    let snap = two4one::obs::global().snapshot();
    for line in snap.to_prometheus().lines() {
        // The full histogram bucket dump is exposition-scraper food;
        // keep the human page to counts, sums, and counters.
        if !line.contains("_bucket{") {
            println!("{line}");
        }
    }
    println!("```");
}

fn measure_source(s: &Subject) -> Duration {
    let g = s.genext();
    let st = vec![s.program.clone()];
    time_min(REPS, move || {
        std::hint::black_box(g.specialize_source(&st).expect("source").size());
    })
}

fn measure_object(s: &Subject) -> Duration {
    let g = s.genext();
    let st = vec![s.program.clone()];
    time_min(REPS, move || {
        std::hint::black_box(g.specialize_object(&st).expect("object").code_size());
    })
}

fn fig6() {
    println!("## Figure 6 — Generation speed\n");
    println!("| subject | source gen (ms) | object gen (ms) | ratio | paper src (s) | paper obj (s) | paper ratio |");
    println!("|---|---|---|---|---|---|---|");
    for (s, (pname, psrc, pobj)) in subjects().iter().zip(paper::FIG6) {
        assert_eq!(s.name, *pname);
        let src = measure_source(s);
        let obj = measure_object(s);
        println!(
            "| {} | {:.3} | {:.3} | {:.2}× | {:.3} | {:.3} | {:.2}× |",
            s.name,
            ms(src),
            ms(obj),
            obj.as_secs_f64() / src.as_secs_f64(),
            psrc,
            pobj,
            pobj / psrc,
        );
    }
    println!("\nPaper's claim: object generation ≤ ~2× source generation.\n");
}

fn fig7() {
    println!("## Figure 7 — Compilation times for the specialization output\n");
    println!("| subject | load residual source (ms) | object-gen marginal cost (ms) | staged total (ms) | fused total (ms) |");
    println!("|---|---|---|---|---|");
    for s in subjects() {
        let text: String = {
            let g = s.genext();
            let st = vec![s.program.clone()];
            with_stack(move || g.specialize_source(&st).expect("src").to_source())
        };
        let entry: &'static str = s.entry;
        let t2 = text.clone();
        let load = time_min(REPS, move || {
            std::hint::black_box(compile_source_text(&t2, entry).expect("load").code_size());
        });
        let src = measure_source(&s);
        let obj = measure_object(&s);
        let marginal = obj.saturating_sub(src);
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            s.name,
            ms(load),
            ms(marginal),
            ms(src + load),
            ms(obj),
        );
    }
    println!("\nPaper's claim: loading residual source back is far more expensive");
    println!("than what direct object generation adds over source generation;");
    println!("the fused total beats source-generation + compile.\n");
}

fn fig8() {
    println!("## Figure 8 — Using RTCG for normal compilation (all inputs dynamic)\n");
    println!("| subject | BTA (ms) | Generate (ms) | Compile stock (ms) | paper BTA (s) | paper Load (s) | paper Gen (s) | paper Compile (s) |");
    println!("|---|---|---|---|---|---|---|---|");
    for (s, (pname, pbta, pload, pgen, pcomp)) in subjects().iter().zip(paper::FIG8) {
        assert_eq!(s.name, *pname);
        let pgg = s.pgg();
        let parsed = s.parsed();
        let entry: &'static str = s.entry;
        let src: &'static str = s.interp_src;

        let (p2, pg2) = (parsed.clone(), pgg.clone());
        let bta = time_min(REPS, move || {
            std::hint::black_box(
                pg2.cogen(&p2, entry, &Division::all_dynamic(2))
                    .expect("cogen")
                    .annotated()
                    .defs
                    .len(),
            );
        });
        let g = s.genext_all_dynamic();
        let generate = time_min(REPS, move || {
            std::hint::black_box(g.specialize_object(&[]).expect("gen").code_size());
        });
        let compile = time_min(REPS, move || {
            std::hint::black_box(compile_source_text(src, entry).expect("stock").code_size());
        });
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |",
            s.name,
            ms(bta),
            ms(generate),
            ms(compile),
            pbta,
            pload,
            pgen,
            pcomp,
        );
    }
    println!("\nPaper's shape: BTA (one-off) dominates; per-program Generate is the");
    println!("same order as stock Compile. The paper's Load column (compiling the");
    println!("object-code generator itself) has no analogue here: our generating");
    println!("extensions are in-memory closures and need no loading — see EXPERIMENTS.md.\n");
}

/// One row of a committed trajectory file.
struct TrajRow {
    id: String,
    median_ns: u64,
    min_ns: u64,
}

/// Parses the flat JSON the bench harness writes (one result object per
/// line) without a JSON dependency. Lines that don't look like a result
/// row are skipped, so a hand-edited file degrades to fewer rows, not a
/// crash.
fn parse_trajectory(text: &str) -> Vec<TrajRow> {
    fn field(line: &str, key: &str) -> Option<u64> {
        let rest = &line[line.find(key)? + key.len()..];
        let digits: String = rest
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    text.lines()
        .filter_map(|line| {
            let rest = &line[line.find("\"id\": \"")? + 7..];
            let id = rest[..rest.find('"')?].to_string();
            Some(TrajRow {
                id,
                median_ns: field(line, "\"median_ns\":")?,
                min_ns: field(line, "\"min_ns\":")?,
            })
        })
        .collect()
}

/// Prints the committed benchmark trajectory files side by side: the
/// cold-path phase split (`BENCH_spec.json`) and the serving throughput
/// (`BENCH_serve.json`). Regenerate them with
/// `cargo bench -p two4one-bench --bench spec` / `--bench serve`.
fn trajectories() {
    println!("## Benchmark trajectories (committed BENCH_*.json)\n");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for (file, title, note) in [
        (
            "BENCH_spec.json",
            "cold-path phase split (MIXWELL)",
            "`specialize` is the phase to watch (see DESIGN.md §10); \
             `cold-genext` is the same request served by the *compiled* \
             generating extension, with `genext-build` its one-time \
             staging cost — the CI floor holds `cold-genext` at ≥ 2x \
             `specialize` (see DESIGN.md §13).",
        ),
        (
            "BENCH_serve.json",
            "serving throughput (24-request batches)",
            "`cold/1-thread` is the cold-path acceptance row; \
             `cold-genext/1-thread` drains the same batch as misses on a \
             *registered* program, served by its compiled gen-ext; \
             `tier0-first-touch` and `post-promotion` bracket the tiered \
             pipeline (see DESIGN.md §15).",
        ),
        (
            "BENCH_match.json",
            "grammar matching (adversarial ~2 KiB inputs)",
            "three rows per grammar: `interp/*` walks (grammar, input) \
             directly, `generic/*` is the generically compiled matcher \
             (tier-0 serving), `spec/*` is the residual recognizer — the \
             CI floor holds `spec` at ≥ 5x faster than `interp` on every \
             adversarial input (see DESIGN.md §16).",
        ),
    ] {
        let path = format!("{root}/{file}");
        let rows = match std::fs::read_to_string(&path) {
            Ok(text) => parse_trajectory(&text),
            Err(e) => {
                println!("### {title}\n\n({file} unreadable: {e} — run the bench to create it)\n");
                continue;
            }
        };
        println!("### {title} — {file}\n");
        println!("| id | median (ms) | min (ms) |");
        println!("|---|---|---|");
        for r in &rows {
            println!(
                "| {} | {:.3} | {:.3} |",
                r.id,
                r.median_ns as f64 / 1e6,
                r.min_ns as f64 / 1e6,
            );
        }
        // The tiered-serving trajectory in per-request terms: what a
        // first touch costs under Tier-0, where background promotion
        // lands steady-state traffic, and the eager-specialized bound
        // (serve batches are 24 requests; see benches/serve.rs).
        if file == "BENCH_serve.json" {
            let per_req = |id: &str| {
                rows.iter()
                    .find(|r| r.id == id)
                    .map(|r| r.median_ns as f64 / 24.0 / 1e3)
            };
            if let (Some(cold), Some(first), Some(post), Some(warm)) = (
                per_req("cold/1-thread"),
                per_req("tier0-first-touch/1-thread"),
                per_req("post-promotion/4-thread"),
                per_req("warm/4-thread"),
            ) {
                println!(
                    "\nTier trajectory (per request): first touch {first:.1} µs \
                     ({:.0}× under blocking cold at {cold:.1} µs) → \
                     post-promotion {post:.1} µs (eager-specialized warm: \
                     {warm:.1} µs).\n",
                    cold / first
                );
            }
        }
        // The recognizer payoff per grammar: interpreted over specialized
        // median, the factor the CI floor guards at 5x.
        if file == "BENCH_match.json" {
            let median = |id: &str| rows.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
            let speedups: Vec<String> = rows
                .iter()
                .filter_map(|r| r.id.strip_prefix("interp/"))
                .filter_map(|g| {
                    let interp = median(&format!("interp/{g}"))?;
                    let spec = median(&format!("spec/{g}"))?;
                    Some(format!("{g} {:.1}×", interp / spec))
                })
                .collect();
            if !speedups.is_empty() {
                println!("\nSpecialized-over-interpreted: {}.\n", speedups.join(", "));
            }
        }
        println!("\n{note}\n");
    }
}
