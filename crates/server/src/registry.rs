//! The versioned program registry: logical names, epochs, and
//! invalidation backedges.
//!
//! A long-lived server must survive a program being *redefined*. The
//! digest-keyed cache alone cannot: stale specializations live forever
//! under their old digest, and nothing connects them to the source they
//! were derived from. The registry makes that derivation link a
//! first-class, revocable artifact:
//!
//! * every program registered under a logical name carries a
//!   monotonically increasing [`Epoch`];
//! * every cache entry published on behalf of a registered program is
//!   recorded here as a *dependent* of its `(name, epoch)` — the
//!   invalidation backedge;
//! * [`Registry::redefine`] atomically bumps the epoch, swaps the
//!   source, and hands back exactly the dependent keys so the service
//!   can drop them — no full-cache flush, unrelated programs untouched;
//! * an in-flight single-flight leader for the old epoch completes (its
//!   waiters legitimately predate the redefinition and share its
//!   result), but its publication goes through
//!   [`Registry::publish_if_live`], which refuses to cache into a dead
//!   generation — the tombstone: finished, served once, never cached,
//!   never served again.
//!
//! Lock order: the registry mutex is always acquired **before** any
//! cache shard mutex (`publish_if_live` runs the shard insert inside
//! the registry critical section). Redefinition takes the registry
//! lock alone and removes dependents afterwards — a racing old-epoch
//! publication is already excluded by the epoch check, so the sweep
//! needs no atomicity with the bump.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use two4one::{obs, CompiledGenExt, Epoch, GenExt};

use crate::cache::{lock, Key};

/// A live `(name, epoch)` pair a request resolved against, carried from
/// resolution to publication.
pub(crate) type Backedge = (Arc<str>, Epoch);

/// What one registration (generation) of a program tracks.
#[derive(Debug)]
struct Registration {
    epoch: Epoch,
    ext: GenExt,
    /// The compiled generating extension of this generation, built
    /// lazily on the first cache miss and reused by every later fill.
    /// It lives *inside* the registration so a redefinition (which swaps
    /// the whole `Registration`) invalidates it exactly like the
    /// residual cache entries — no separate sweep, no stale artifact.
    compiled: Option<Arc<CompiledGenExt>>,
    /// Cache keys published for this generation — the invalidation
    /// backedges. A set, because restore and re-publication after
    /// eviction may record the same key twice.
    dependents: HashSet<Key>,
}

/// The result of [`crate::SpecService::redefine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedefineOutcome {
    /// The new live epoch of the program.
    pub epoch: Epoch,
    /// Cached specializations of the previous generations that were
    /// invalidated (dropped from the cache) by this redefinition.
    pub invalidated: u64,
}

#[derive(Debug)]
pub(crate) struct Registry {
    programs: Mutex<HashMap<Arc<str>, Registration>>,
    /// Number of registered logical programs (`t4o_programs_registered`).
    registered_gauge: obs::Gauge,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(obs::Gauge::new())
    }
}

impl Registry {
    pub(crate) fn new(registered_gauge: obs::Gauge) -> Self {
        Registry {
            programs: Mutex::new(HashMap::new()),
            registered_gauge,
        }
    }

    /// Registers `ext` under `name`. Idempotent when the program is
    /// already live with the same cache identity (same source, entry,
    /// and options): the current epoch is returned and nothing is
    /// invalidated. Different content behaves exactly like
    /// [`Registry::redefine`].
    pub(crate) fn register(&self, name: &str, ext: &GenExt) -> (Epoch, Vec<Key>, bool) {
        let mut map = lock(&self.programs);
        if let Some(reg) = map.get(name) {
            if reg.ext.cache_identity() == ext.cache_identity() && reg.ext.entry() == ext.entry() {
                return (reg.epoch, Vec::new(), false);
            }
        }
        let (epoch, victims) = self.bump(&mut map, name, ext);
        (epoch, victims, true)
    }

    /// Redefines `name`: bumps the epoch unconditionally (even for
    /// byte-identical source — the caller asked for a new generation)
    /// and returns the new epoch plus every dependent key of the old
    /// generations, for the service to drop. A name never seen before
    /// simply starts at [`Epoch::FIRST`].
    pub(crate) fn redefine(&self, name: &str, ext: &GenExt) -> (Epoch, Vec<Key>) {
        let mut map = lock(&self.programs);
        self.bump(&mut map, name, ext)
    }

    fn bump(
        &self,
        map: &mut HashMap<Arc<str>, Registration>,
        name: &str,
        ext: &GenExt,
    ) -> (Epoch, Vec<Key>) {
        match map.get_mut(name) {
            Some(reg) => {
                reg.epoch = reg.epoch.next();
                reg.ext = ext.clone();
                // The compiled gen-ext belongs to the generation that
                // just died; the new one compiles lazily on first use.
                reg.compiled = None;
                let victims = reg.dependents.drain().collect();
                (reg.epoch, victims)
            }
            None => {
                map.insert(
                    Arc::from(name),
                    Registration {
                        epoch: Epoch::FIRST,
                        ext: ext.clone(),
                        compiled: None,
                        dependents: HashSet::new(),
                    },
                );
                self.registered_gauge.add(1);
                (Epoch::FIRST, Vec::new())
            }
        }
    }

    /// The live `(name, epoch, extension)` of `name`, if registered. The
    /// name comes back as the registry's interned `Arc<str>` (the one
    /// the backedge will carry), and the extension is a cheap clone (its
    /// heavy parts are shared behind `Arc`s), so a redefinition racing
    /// this request cannot swap the source out from under the
    /// specializer mid-fill.
    pub(crate) fn resolve(&self, name: &str) -> Option<(Arc<str>, Epoch, GenExt)> {
        let map = lock(&self.programs);
        map.get_key_value(name)
            .map(|(interned, reg)| (interned.clone(), reg.epoch, reg.ext.clone()))
    }

    /// The live epoch of `name`, if registered.
    pub(crate) fn epoch_of(&self, name: &str) -> Option<Epoch> {
        lock(&self.programs).get(name).map(|reg| reg.epoch)
    }

    /// The cached compiled gen-ext of `name` **iff** `epoch` is still
    /// its live generation. A dead epoch never yields an artifact, even
    /// while the map still holds one for the successor.
    pub(crate) fn compiled(&self, name: &str, epoch: Epoch) -> Option<Arc<CompiledGenExt>> {
        let map = lock(&self.programs);
        let reg = map.get(name)?;
        if reg.epoch == epoch {
            reg.compiled.clone()
        } else {
            None
        }
    }

    /// Stores a freshly built compiled gen-ext for `(name, epoch)` —
    /// **iff** that generation is still live. Returns `false` when the
    /// program was redefined while the build ran (the artifact is the
    /// caller's to use for its own fill, but it is never cached), and
    /// `true` when it was stored (or an identical one already was: a
    /// build race keeps the first artifact, both are equivalent).
    pub(crate) fn store_compiled(
        &self,
        name: &str,
        epoch: Epoch,
        compiled: Arc<CompiledGenExt>,
    ) -> bool {
        let mut map = lock(&self.programs);
        match map.get_mut(name) {
            Some(reg) if reg.epoch == epoch => {
                reg.compiled.get_or_insert(compiled);
                true
            }
            _ => false,
        }
    }

    /// Every cached compiled gen-ext, with the registration facts a
    /// snapshot record needs to be judged on restore: the logical name,
    /// the live epoch, and the *source* extension's cache identity and
    /// entry (what [`Registry::epoch_for_identity`] compares). Sorted by
    /// name for deterministic snapshots.
    #[allow(clippy::type_complexity)]
    pub(crate) fn compiled_entries(
        &self,
    ) -> Vec<(Arc<str>, Epoch, String, String, Arc<CompiledGenExt>)> {
        let map = lock(&self.programs);
        let mut out: Vec<_> = map
            .iter()
            .filter_map(|(name, reg)| {
                reg.compiled.as_ref().map(|c| {
                    (
                        name.clone(),
                        reg.epoch,
                        reg.ext.cache_identity().to_string(),
                        reg.ext.entry().as_str().to_string(),
                        c.clone(),
                    )
                })
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The live epoch of `name` **iff** its registered cache identity
    /// and entry match. Snapshot restore uses this: epochs are
    /// per-process counters, so a record from another process is judged
    /// by content identity and rebased onto the live epoch, not compared
    /// by raw epoch number.
    pub(crate) fn epoch_for_identity(
        &self,
        name: &str,
        identity: &str,
        entry: &str,
    ) -> Option<Epoch> {
        let map = lock(&self.programs);
        let reg = map.get(name)?;
        if reg.ext.cache_identity() == identity && reg.ext.entry().as_str() == entry {
            Some(reg.epoch)
        } else {
            None
        }
    }

    /// Every registered program as `(name, epoch)`, sorted by name.
    pub(crate) fn programs(&self) -> Vec<(Arc<str>, Epoch)> {
        let map = lock(&self.programs);
        let mut out: Vec<(Arc<str>, Epoch)> = map
            .iter()
            .map(|(name, reg)| (name.clone(), reg.epoch))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Runs `publish` (a cache-shard insert) iff `backedge` is still the
    /// live generation, recording `key` as a dependent; `None` means the
    /// generation died while the fill ran and nothing was published —
    /// the tombstone path. Anonymous publications (no backedge) always
    /// proceed. The registry lock is held across `publish`, so a
    /// concurrent `redefine` either sees the key in `dependents` or the
    /// epoch check here sees the new epoch — a stale entry can never
    /// slip past both.
    pub(crate) fn publish_if_live<T>(
        &self,
        backedge: Option<&Backedge>,
        key: &Key,
        publish: impl FnOnce() -> T,
    ) -> Option<T> {
        let Some((name, epoch)) = backedge else {
            return Some(publish());
        };
        let mut map = lock(&self.programs);
        match map.get_mut(name.as_ref()) {
            Some(reg) if reg.epoch == *epoch => {
                let out = publish();
                reg.dependents.insert(key.clone());
                Some(out)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one::{Division, Pgg, BT};

    fn ext(body: &str) -> GenExt {
        let pgg = Pgg::new();
        let program = pgg
            .parse(&format!("(define (f s d) {body})"))
            .expect("parse");
        pgg.cogen(&program, "f", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen")
    }

    #[test]
    fn register_is_idempotent_for_identical_content() {
        let r = Registry::default();
        let e = ext("(+ s d)");
        let (first, victims, changed) = r.register("P", &e);
        assert_eq!(first, Epoch::FIRST);
        assert!(victims.is_empty());
        assert!(changed);
        let (again, victims, changed) = r.register("P", &e.clone());
        assert_eq!(again, Epoch::FIRST);
        assert!(victims.is_empty());
        assert!(!changed);
    }

    #[test]
    fn register_with_new_content_bumps_like_redefine() {
        let r = Registry::default();
        r.register("P", &ext("(+ s d)"));
        let (epoch, _, changed) = r.register("P", &ext("(* s d)"));
        assert_eq!(epoch, Epoch::FIRST.next());
        assert!(changed);
    }

    #[test]
    fn redefine_always_bumps_and_drains_dependents() {
        let r = Registry::default();
        let e = ext("(+ s d)");
        let (epoch, _, _) = r.register("P", &e);
        let name: Arc<str> = Arc::from("P");
        let key = Key::versioned(&name, epoch, e.cache_identity(), "f", "(1)");
        let published = r.publish_if_live(Some(&(name.clone(), epoch)), &key, || 7);
        assert_eq!(published, Some(7));
        // Same source again — the caller asked for a new generation.
        let (e2, victims) = r.redefine("P", &e);
        assert_eq!(e2, epoch.next());
        assert_eq!(victims, vec![key]);
        // Dependents were drained: the next redefine has none to return.
        let (_, victims) = r.redefine("P", &e);
        assert!(victims.is_empty());
    }

    #[test]
    fn publish_into_a_dead_epoch_is_tombstoned() {
        let r = Registry::default();
        let e = ext("(+ s d)");
        let (old, _, _) = r.register("P", &e);
        let name: Arc<str> = Arc::from("P");
        r.redefine("P", &ext("(* s d)"));
        let key = Key::versioned(&name, old, e.cache_identity(), "f", "(1)");
        let mut ran = false;
        let out = r.publish_if_live(Some(&(name, old)), &key, || ran = true);
        assert_eq!(out, None);
        assert!(!ran, "tombstoned publication must not touch the cache");
    }

    #[test]
    fn identity_check_rebases_only_matching_content() {
        let r = Registry::default();
        let e = ext("(+ s d)");
        r.register("P", &e);
        let live = r.epoch_for_identity("P", e.cache_identity(), "f");
        assert_eq!(live, Some(Epoch::FIRST));
        assert_eq!(r.epoch_for_identity("P", "something else", "f"), None);
        assert_eq!(r.epoch_for_identity("P", e.cache_identity(), "g"), None);
        assert_eq!(
            r.epoch_for_identity("unknown", e.cache_identity(), "f"),
            None
        );
    }

    #[test]
    fn resolve_names_and_epochs() {
        let r = Registry::default();
        assert!(r.resolve("P").is_none());
        assert!(r.epoch_of("P").is_none());
        r.register("P", &ext("(+ s d)"));
        r.register("Q", &ext("(- s d)"));
        r.redefine("Q", &ext("(* s d)"));
        assert_eq!(r.epoch_of("P"), Some(Epoch::FIRST));
        assert_eq!(r.epoch_of("Q"), Some(Epoch::FIRST.next()));
        let listing = r.programs();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].0.as_ref(), "P");
        assert_eq!(listing[1].0.as_ref(), "Q");
        let (name, epoch, resolved) = r.resolve("Q").expect("registered");
        assert_eq!(name.as_ref(), "Q");
        assert_eq!(epoch, Epoch::FIRST.next());
        assert_eq!(resolved.entry().as_str(), "f");
    }
}
